"""The timing daemon: JSON-over-HTTP serving of warm-analyzer queries.

``repro-crystal serve`` runs this.  Zero dependencies beyond the
standard library: a hand-rolled HTTP/1.1 server on ``asyncio`` sockets
(the subset ``http.client`` and ``curl`` speak — request line, headers,
``Content-Length`` body, ``Connection: close``).

Architecture (DESIGN.md §10):

* every connection handler validates its request and enqueues a
  :class:`_Job` on a bounded pending deque — a full deque is answered
  ``429`` immediately (backpressure, not buffering);
* a **single dispatcher task** owns the analyzer pool.  It pops the
  oldest job and greedily coalesces every other queued job with the
  same pool key into one batch: the batch's vectors are delta-ordered
  (:func:`repro.batch.order_vectors` ``"greedy"``) and run through one
  ``analyze_many(delta=True)`` mini-sweep, so consecutive requests for
  one network pay dirty-cone costs, not full propagations.  Single
  ownership is also what makes coalescing deterministic and keeps the
  pool lock-free;
* the actual analysis runs on a one-thread executor so the event loop
  keeps accepting, rejecting, and answering ``/metrics`` while the
  engine computes;
* each handler awaits its job's future under the per-request timeout —
  ``504`` on expiry (the computation is not cancelled; its result warms
  the caches for the next request);
* ``SIGTERM``/``SIGINT``/``POST /shutdown`` put the daemon in draining
  mode: new work is answered ``503``, queued and in-flight jobs finish,
  then the server closes and — when ``--trace`` is active — the whole
  serving session is written out as one Chrome trace.

Results are **bit-identical** to a cold per-request process: the
engine's delta/batch invariants guarantee the arrivals, and the JSON
layer's shortest-round-trip floats guarantee the wire (see
``protocol.py``).  ``make service-smoke`` and
``benchmarks/bench_service.py`` both assert exact equality.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import json
import signal
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..batch.vectors import order_vectors
from ..errors import ReproError, ServiceError
from ..perf import PerfCounters
from ..trace import spans as trace_spans
from .pool import AnalyzerPool
from .protocol import AnalyzeRequest, encode_result, parse_analyze_request

__all__ = ["ServiceConfig", "TimingService", "run", "serve"]

_MAX_BODY = 32 * 1024 * 1024  # 32 MiB request ceiling
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServiceConfig:
    """Knobs of one serving session (the ``serve`` subcommand's flags)."""

    host: str = "127.0.0.1"
    port: int = 8351
    pool_size: int = 4
    queue_limit: int = 64
    timeout: float = 30.0
    trace: Optional[str] = None
    quiet: bool = False


class _Job:
    """One enqueued analyze request and the future its handler awaits."""

    __slots__ = ("request", "key", "future", "abandoned")

    def __init__(self, request: AnalyzeRequest,
                 future: "asyncio.Future") -> None:
        self.request = request
        self.key = request.pool_key()
        self.future = future
        self.abandoned = False


class TimingService:
    """The daemon's state machine; one instance per serving session."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.pool = AnalyzerPool(config.pool_size)
        self.perf = PerfCounters()
        self.address: Optional[Tuple[str, int]] = None
        self._pending: "collections.deque[_Job]" = collections.deque()
        self._work: Optional[asyncio.Condition] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service")
        self._tracer: Optional[trace_spans.Tracer] = None
        self._draining = False
        self._closed: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the server (resolving port 0) and start the dispatcher."""
        self._work = asyncio.Condition()
        self._closed = asyncio.Event()
        if self.config.trace:
            self._tracer = trace_spans.Tracer()
            trace_spans.install(self._tracer)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._dispatcher = asyncio.ensure_future(self._dispatch())
        if not self.config.quiet:
            print(f"repro-crystal service listening on "
                  f"http://{self.address[0]}:{self.address[1]}", flush=True)
        return self.address

    def request_shutdown(self) -> None:
        """Enter draining mode (idempotent; signal-handler safe)."""
        if self._draining:
            return
        self._draining = True
        self.perf.incr("service_shutdowns")

        async def _nudge() -> None:
            assert self._work is not None
            async with self._work:
                self._work.notify_all()

        asyncio.ensure_future(_nudge())

    async def wait_closed(self) -> None:
        """Block until the drain finished and the server socket closed."""
        assert self._closed is not None
        await self._closed.wait()

    async def _finish(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)
        if self._tracer is not None:
            from ..trace.export import write_chrome_trace

            trace_spans.uninstall()
            import os

            count = write_chrome_trace(self._tracer, self.config.trace,
                                       parent_pid=os.getpid())
            if not self.config.quiet:
                print(f"trace: {count} event(s) written to "
                      f"{self.config.trace}", flush=True)
        assert self._closed is not None
        self._closed.set()

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch(self) -> None:
        """Pop, coalesce, and run batches until drained after shutdown."""
        assert self._work is not None
        loop = asyncio.get_event_loop()
        while True:
            async with self._work:
                while not self._pending and not self._draining:
                    await self._work.wait()
                if not self._pending and self._draining:
                    break
                head = self._pending.popleft()
                batch = [head]
                coalesced = [job for job in self._pending
                             if job.key == head.key]
                for job in coalesced:
                    self._pending.remove(job)
                batch.extend(coalesced)
            if len(batch) > 1:
                self.perf.incr("service_coalesced_requests", len(batch) - 1)
            self.perf.incr("service_batches")
            try:
                outcome = await loop.run_in_executor(
                    self._executor, self._run_batch, batch)
            except BaseException as exc:  # executor infrastructure failure
                for job in batch:
                    if not job.future.done():
                        job.future.set_exception(exc)
                continue
            for job, result in zip(batch, outcome):
                if job.future.done():
                    continue
                if isinstance(result, Exception):
                    job.future.set_exception(result)
                else:
                    job.future.set_result(result)
        await self._finish()

    def _run_batch(self, batch: List[_Job]) -> List[object]:
        """Executor-thread body: one coalesced delta-ordered mini-sweep.

        Returns one entry per job: the response payload dict, or the
        exception to fail that job with.  A job whose vectors do not
        validate against the network fails alone — its coalesced
        neighbours still run.
        """
        with trace_spans.span("service_batch", requests=len(batch),
                              key=batch[0].key[:12]):
            try:
                entry = self.pool.get(batch[0].request)
            except ReproError as exc:
                return [exc for _ in batch]
            analyzer = entry.analyzer

            outcome: List[object] = [None] * len(batch)
            runnable: List[int] = []
            vectors = []
            spans_per_job: List[Tuple[int, int]] = []
            for position, job in enumerate(batch):
                try:
                    for vector in job.request.vectors:
                        analyzer._normalize_inputs(vector.inputs)
                except ReproError as exc:
                    outcome[position] = ServiceError(str(exc), status=400)
                    continue
                start = len(vectors)
                vectors.extend(job.request.vectors)
                spans_per_job.append((position, start))
                runnable.append(position)

            if vectors:
                permutation = order_vectors(list(vectors), "greedy")
                try:
                    with trace_spans.span("service_sweep",
                                          vectors=len(vectors)):
                        ordered = [vectors[i].inputs for i in permutation]
                        results = analyzer.analyze_many(ordered, delta=True)
                except ReproError as exc:
                    for position in runnable:
                        outcome[position] = exc
                    return outcome
                by_position = dict(zip(permutation, results))
                self.perf.incr("service_vectors", len(vectors))
                for (position, start) in spans_per_job:
                    job = batch[position]
                    entry.requests += 1
                    entry.vectors += len(job.request.vectors)
                    outcome[position] = {
                        "results": [
                            encode_result(vector.label,
                                          by_position[start + offset])
                            for offset, vector in
                            enumerate(job.request.vectors)],
                        "coalesced": len(batch) - 1,
                        "pool_key": entry.key[:12],
                    }
            return outcome

    # -- HTTP layer ---------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except Exception as exc:  # never let a handler kill the loop
            status, payload = 500, {"error": f"internal error: {exc}"}
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to salvage

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> Tuple[int, Dict[str, object]]:
        self.perf.incr("service_requests")
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=10.0)
        except asyncio.TimeoutError:
            return 408, {"error": "timed out reading request line"}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]

        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, {"error": "bad Content-Length"}
        if length > _MAX_BODY:
            return 413, {"error": f"request body exceeds {_MAX_BODY} bytes"}
        body = await reader.readexactly(length) if length else b""

        with trace_spans.span("service_request", method=method, path=path):
            return await self._route(method, path, body)

    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            return 200, {"status": "draining" if self._draining else "ok"}
        if path == "/metrics":
            return 200, self.metrics()
        if path == "/shutdown":
            if method != "POST":
                return 405, {"error": "POST /shutdown"}
            self.request_shutdown()
            return 200, {"status": "draining"}
        if path != "/analyze":
            return 404, {"error": f"no such endpoint {path!r}"}
        if method != "POST":
            return 405, {"error": "POST /analyze"}
        return await self._analyze(body)

    async def _analyze(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        if self._draining:
            self.perf.incr("service_rejected_draining")
            return 503, {"error": "service is draining"}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        try:
            request = parse_analyze_request(payload)
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}

        assert self._work is not None
        async with self._work:
            if len(self._pending) >= self.config.queue_limit:
                self.perf.incr("service_rejected_queue_full")
                return 429, {"error": f"request queue is full "
                                      f"({self.config.queue_limit} pending)"}
            job = _Job(request, asyncio.get_event_loop().create_future())
            self._pending.append(job)
            self._work.notify_all()

        try:
            result = await asyncio.wait_for(job.future,
                                            timeout=self.config.timeout)
        except asyncio.TimeoutError:
            job.abandoned = True
            self.perf.incr("service_timeouts")
            return 504, {"error": f"analysis exceeded the "
                                  f"{self.config.timeout:g}s request "
                                  "timeout"}
        except ServiceError as exc:
            self.perf.incr("service_errors")
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            self.perf.incr("service_errors")
            return 400, {"error": str(exc)}
        except Exception as exc:
            self.perf.incr("service_errors")
            return 500, {"error": f"internal error: {exc}"}
        self.perf.incr("service_completed")
        assert isinstance(result, dict)
        return 200, result

    # -- observability ------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` payload: service counters, pool stats, and
        the union of every warm analyzer's ``repro.perf`` counters."""
        return {
            "service": {
                **{name: value
                   for name, value in sorted(self.perf.counters.items())},
                "pending": len(self._pending),
                "draining": self._draining,
                "queue_limit": self.config.queue_limit,
                "timeout": self.config.timeout,
            },
            "pool": self.pool.stats(),
            "perf": self.pool.merged_perf(),
        }


async def run(config: ServiceConfig) -> None:
    """Start a service, serve until SIGTERM/SIGINT/shutdown, drain."""
    service = TimingService(config)
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal handlers
    await service.start()
    await service.wait_closed()
    if not config.quiet:
        print("repro-crystal service drained and stopped", flush=True)


def serve(config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro-crystal serve``."""
    try:
        asyncio.run(run(config))
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.service.daemon`` — minimal standalone launcher."""
    import argparse

    parser = argparse.ArgumentParser(prog="repro-service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8351)
    parser.add_argument("--pool-size", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--trace", metavar="FILE")
    args = parser.parse_args(argv)
    return serve(ServiceConfig(
        host=args.host, port=args.port, pool_size=args.pool_size,
        queue_limit=args.queue_limit, timeout=args.timeout,
        trace=args.trace))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
