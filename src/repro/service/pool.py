"""Bounded LRU pool of warm :class:`TimingAnalyzer` instances.

The whole point of serving timing queries from a daemon instead of a
process-per-request CLI is that the analyzer-lifetime caches — path
enumerations, RC trees, tree templates, the trigger index, the
delay-model memo — are input-independent and therefore *request*-
independent: the first request against a netlist pays the setup cost,
every later request rides the warm caches (DESIGN.md §5b, §10).

Entries are keyed by :meth:`AnalyzeRequest.pool_key` — a content hash
of the netlist text plus every knob that shapes the analyzer — so a
client never has to register a circuit: sending the same ``.sim`` text
twice *is* the registration.  The pool is bounded; the least recently
used analyzer is dropped when a new netlist would exceed capacity.

The pool is **not** thread-safe by itself.  The daemon funnels all
access through its single dispatcher, which is also what makes
cross-request coalescing deterministic.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Optional

from ..core.timing import TimingAnalyzer
from ..netlist import sim_format
from .protocol import MODELS, AnalyzeRequest

__all__ = ["AnalyzerPool", "PoolEntry"]


class PoolEntry:
    """One warm analyzer and the request shape that built it."""

    __slots__ = ("key", "analyzer", "network", "built_at", "requests",
                 "vectors")

    def __init__(self, key: str, analyzer: TimingAnalyzer, network) -> None:
        self.key = key
        self.analyzer = analyzer
        self.network = network
        self.built_at = time.time()
        self.requests = 0
        self.vectors = 0


class AnalyzerPool:
    """LRU map of pool key → :class:`PoolEntry`, bounded at *capacity*."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, request: AnalyzeRequest) -> PoolEntry:
        """The warm entry for *request*, built (and LRU-evicting) on miss.

        Construction errors (a netlist that does not parse, …) propagate
        as :class:`~repro.errors.ReproError` — the daemon maps them to a
        400 response without touching the pool.
        """
        key = request.pool_key()
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        tech = request.technology()
        network = sim_format.loads(request.netlist, tech,
                                   name=f"service:{key[:12]}")
        analyzer = TimingAnalyzer(network,
                                  model=MODELS[request.model](),
                                  slope_quantum=request.slope_quantum,
                                  kernel=request.kernel)
        entry = PoolEntry(key, analyzer, network)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def peek(self, key: str) -> Optional[PoolEntry]:
        """The entry for *key* without touching LRU order (tests only)."""
        return self._entries.get(key)

    @property
    def hit_rate(self) -> Optional[float]:
        total = self.hits + self.misses
        return (self.hits / total) if total else None

    def stats(self) -> Dict[str, object]:
        """JSON-ready pool statistics for the ``/metrics`` endpoint."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": [
                {"key": entry.key[:12], "netlist": entry.network.name,
                 "requests": entry.requests, "vectors": entry.vectors}
                for entry in self._entries.values()
            ],
        }

    def merged_perf(self) -> Dict[str, object]:
        """Union of every pooled analyzer's ``repro.perf`` counters."""
        from ..perf import PerfCounters

        merged = PerfCounters()
        for entry in self._entries.values():
            merged.merge(entry.analyzer.perf)
        return merged.as_dict()
