"""Stdlib client for the timing daemon (``http.client``, no deps).

Used by the service tests, the smoke gate (``make service-smoke``) and
``benchmarks/bench_service.py``; also a reasonable template for real
integrations — the whole protocol is "POST one JSON object, read one
JSON object back" (see ``protocol.py`` for the shapes).

.. code-block:: python

    client = ServiceClient("127.0.0.1", 8351)
    results = client.analyze(netlist_text, [("v0", {"a": spec, …})])
    results[0].arrivals[("y", "rise")]   # (time, slope) — bit-exact

Errors follow the daemon's status mapping: a non-200 response raises
:class:`~repro.errors.ServiceError` carrying the status code, so a
caller can tell backpressure (429) from a bad netlist (400) from a
timeout (504).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..batch.vectors import Vector
from ..core.timing.analyzer import InputSpec
from ..errors import ServiceError
from .protocol import decode_arrivals, encode_inputs

__all__ = ["AnalyzedVector", "ServiceClient", "wait_until_ready"]

_VectorLike = Union[Vector, Tuple[str, Mapping[str, InputSpec]]]


@dataclass
class AnalyzedVector:
    """One vector's decoded response: exact arrivals by (node, edge)."""

    label: str
    arrivals: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict)


class ServiceClient:
    """Thin blocking client; one HTTP connection per call."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None
                 ) -> Tuple[int, Dict[str, object]]:
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}",
                status=0) from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"service returned non-JSON body (status {status}): {exc}",
                status=status) from exc
        if not isinstance(decoded, dict):
            raise ServiceError(
                f"service response is not a JSON object (status {status})",
                status=status)
        return status, decoded

    def _checked(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Dict[str, object]:
        status, decoded = self._request(method, path, payload)
        if status != 200:
            message = decoded.get("error", f"HTTP {status}")
            raise ServiceError(f"{path}: {message}", status=status)
        return decoded

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._checked("GET", "/metrics")

    def shutdown(self) -> Dict[str, object]:
        return self._checked("POST", "/shutdown", {})

    def analyze(self, netlist: str, vectors: Sequence[_VectorLike],
                tech: str = "cmos3", model: str = "slope",
                kernel: str = "numpy", slope_quantum: float = 0.0,
                characterize: bool = True) -> List[AnalyzedVector]:
        """Analyze *vectors* against *netlist* (``.sim`` text).

        Vectors are :class:`~repro.batch.Vector` objects or
        ``(label, {input: InputSpec})`` pairs; specs are encoded as
        exact-repr timing tokens, arrivals decode bit-identical to the
        daemon's engine output.
        """
        encoded = []
        for position, vector in enumerate(vectors):
            if isinstance(vector, Vector):
                label, inputs = vector.label, vector.inputs
            else:
                label, inputs = vector
            encoded.append({"label": label or f"v{position}",
                            "inputs": encode_inputs(inputs)})
        payload = {
            "netlist": netlist, "tech": tech, "model": model,
            "kernel": kernel, "slope_quantum": slope_quantum,
            "characterize": characterize, "vectors": encoded,
        }
        decoded = self._checked("POST", "/analyze", payload)
        results = decoded.get("results")
        if not isinstance(results, list) or len(results) != len(encoded):
            raise ServiceError(
                f"service returned {0 if not isinstance(results, list) else len(results)} "
                f"result(s) for {len(encoded)} vector(s)")
        analyzed = []
        for entry in results:
            if not isinstance(entry, dict):
                raise ServiceError("service result entry is not an object")
            analyzed.append(AnalyzedVector(
                label=str(entry.get("label", "")),
                arrivals=decode_arrivals(entry)))
        return analyzed


def wait_until_ready(host: str, port: int, timeout: float = 15.0,
                     interval: float = 0.05) -> None:
    """Poll ``/healthz`` until the daemon answers (or raise after
    *timeout* seconds) — used right after spawning a daemon process."""
    deadline = time.monotonic() + timeout
    client = ServiceClient(host, port, timeout=max(interval * 4, 1.0))
    last: Optional[ServiceError] = None
    while time.monotonic() < deadline:
        try:
            client.healthz()
            return
        except ServiceError as exc:
            last = exc
            time.sleep(interval)
        except socket.timeout:  # pragma: no cover - slow accept path
            time.sleep(interval)
    raise ServiceError(
        f"service at {host}:{port} not ready after {timeout:g}s "
        f"(last error: {last})", status=0)
