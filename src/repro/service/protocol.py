"""Wire protocol of the timing service: request/response JSON shapes.

One request analyzes a batch of input vectors against one netlist:

.. code-block:: json

    {"netlist": "| adder\\ni a b\\n…",
     "tech": "cmos3", "model": "slope", "kernel": "numpy",
     "slope_quantum": 0.0, "characterize": true,
     "vectors": [{"label": "v0",
                  "inputs": {"a": "0.0", "b": "1e-09~2e-09/5e-10"}}]}

Input values use the stock two-edge timing-token grammar (everything
after the ``=`` of ``NODE=RISE~FALL[/SLOPE]`` — see
:func:`repro.batch.parse_timing_token`), so a request is exactly a
``.vec`` file in JSON clothes.  The response carries one entry per
vector, arrivals sorted by (node, edge):

.. code-block:: json

    {"results": [{"label": "v0", "arrivals": [
        {"node": "y", "edge": "rise",
         "time": 1.93e-10, "slope": 9.1e-11}, …]}]}

Exactness: times and slopes travel as JSON numbers serialized with
``repr``-style shortest round-trip formatting (Python's ``json`` module
default), so the client decodes the daemon's arrivals **bit-identical**
to what the engine computed — the service smoke test and
``benchmarks/bench_service.py`` both assert equality, not approx.

The pool key (:meth:`AnalyzeRequest.pool_key`) hashes everything that
shapes the analyzer — netlist text, technology, model, kernel, slope
quantum, characterization — but *not* the vectors: two requests that
differ only in vectors share a warm analyzer and its caches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..batch.vectors import Vector, format_timing_token, parse_timing_token
from ..core.models import (
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    characterize_technology,
)
from ..core.timing.analyzer import InputSpec, TimingResult
from ..errors import ReproError, ServiceError
from ..tech import CMOS3, NMOS4, Technology, Transition

__all__ = [
    "AnalyzeRequest",
    "MODELS",
    "TECHNOLOGIES",
    "decode_arrivals",
    "encode_inputs",
    "encode_result",
    "parse_analyze_request",
]

TECHNOLOGIES: Dict[str, Technology] = {"nmos4": NMOS4, "cmos3": CMOS3}

MODELS = {
    "lumped-rc": LumpedRCModel,
    "rc-tree": RCTreeModel,
    "slope": SlopeModel,
}

KERNELS = ("numpy", "python")

_EDGES = {Transition.RISE: "rise", Transition.FALL: "fall"}


@dataclass(frozen=True)
class AnalyzeRequest:
    """A validated ``POST /analyze`` body."""

    netlist: str
    tech: str = "cmos3"
    model: str = "slope"
    kernel: str = "numpy"
    slope_quantum: float = 0.0
    characterize: bool = True
    vectors: Tuple[Vector, ...] = field(default_factory=tuple)

    def pool_key(self) -> str:
        """Content hash of everything that shapes the warm analyzer."""
        blob = json.dumps({
            "netlist": self.netlist,
            "tech": self.tech,
            "model": self.model,
            "kernel": self.kernel,
            "slope_quantum": self.slope_quantum,
            "characterize": self.characterize,
        }, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def technology(self) -> Technology:
        base = TECHNOLOGIES[self.tech]
        return characterize_technology(base) if self.characterize else base


def _need(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def parse_analyze_request(payload: object) -> AnalyzeRequest:
    """Validate a decoded request body; raises :class:`ServiceError`
    (mapped to a 400 response) naming the offending field."""
    _need(isinstance(payload, dict), "request body must be a JSON object")
    assert isinstance(payload, dict)
    unknown = set(payload) - {"netlist", "tech", "model", "kernel",
                              "slope_quantum", "characterize", "vectors"}
    _need(not unknown,
          f"unknown request field(s): {', '.join(sorted(unknown))}")

    netlist = payload.get("netlist")
    _need(isinstance(netlist, str) and netlist.strip() != "",
          "request needs a non-empty 'netlist' string (.sim text)")

    tech = payload.get("tech", "cmos3")
    _need(tech in TECHNOLOGIES,
          f"unknown tech {tech!r}; choose from "
          f"{', '.join(sorted(TECHNOLOGIES))}")
    model = payload.get("model", "slope")
    _need(model in MODELS,
          f"unknown model {model!r}; choose from {', '.join(sorted(MODELS))}")
    kernel = payload.get("kernel", "numpy")
    _need(kernel in KERNELS,
          f"unknown kernel {kernel!r}; choose from {', '.join(KERNELS)}")
    quantum = payload.get("slope_quantum", 0.0)
    _need(isinstance(quantum, (int, float)) and not isinstance(quantum, bool)
          and quantum >= 0.0, "'slope_quantum' must be a number >= 0")
    characterize = payload.get("characterize", True)
    _need(isinstance(characterize, bool), "'characterize' must be a boolean")

    raw_vectors = payload.get("vectors")
    _need(isinstance(raw_vectors, list) and raw_vectors,
          "request needs a non-empty 'vectors' list")
    assert isinstance(raw_vectors, list)
    vectors: List[Vector] = []
    for position, entry in enumerate(raw_vectors):
        _need(isinstance(entry, dict),
              f"vectors[{position}] must be an object")
        label = entry.get("label", f"v{position}")
        _need(isinstance(label, str) and label,
              f"vectors[{position}].label must be a non-empty string")
        raw_inputs = entry.get("inputs")
        _need(isinstance(raw_inputs, dict) and raw_inputs,
              f"vectors[{position}] needs a non-empty 'inputs' object")
        inputs: Dict[str, InputSpec] = {}
        for name, value in raw_inputs.items():
            _need(isinstance(value, str),
                  f"vectors[{position}].inputs[{name!r}] must be a "
                  "timing-token string")
            try:
                parsed_name, spec = parse_timing_token(f"{name}={value}")
            except ReproError as exc:
                raise ServiceError(
                    f"vectors[{position}].inputs[{name!r}]: {exc}") from exc
            inputs[parsed_name] = spec
        vectors.append(Vector(label=label, inputs=inputs))

    return AnalyzeRequest(
        netlist=netlist, tech=tech, model=model, kernel=kernel,
        slope_quantum=float(quantum), characterize=characterize,
        vectors=tuple(vectors))


def encode_inputs(inputs: Mapping[str, InputSpec]) -> Dict[str, str]:
    """Client-side inverse of the request's ``inputs`` object: each spec
    as the value part of its exact-repr timing token."""
    encoded: Dict[str, str] = {}
    for name, spec in inputs.items():
        token = format_timing_token(name, spec)
        encoded[name] = token.split("=", 1)[1]
    return encoded


def encode_result(label: str, result: TimingResult) -> Dict[str, object]:
    """One vector's response entry; arrivals sorted by (node, edge)."""
    arrivals = []
    for event in sorted(result.arrivals,
                        key=lambda e: (e.node, _EDGES[e.transition])):
        arrival = result.arrivals[event]
        arrivals.append({
            "node": event.node,
            "edge": _EDGES[event.transition],
            "time": arrival.time,
            "slope": arrival.slope,
        })
    return {"label": label, "arrivals": arrivals}


def decode_arrivals(entry: Mapping[str, object]
                    ) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """One response entry as ``{(node, edge): (time, slope)}``."""
    arrivals = entry.get("arrivals")
    if not isinstance(arrivals, list):
        raise ServiceError("response entry has no arrivals list")
    decoded: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for record in arrivals:
        if not isinstance(record, dict):
            raise ServiceError("response arrival is not an object")
        try:
            key = (str(record["node"]), str(record["edge"]))
            decoded[key] = (float(record["time"]), float(record["slope"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed response arrival: {exc}") from exc
    return decoded
