"""The timing service: a daemon that keeps analyzers warm across
requests (DESIGN.md §10).

``repro-crystal serve`` starts a zero-dependency JSON-over-HTTP daemon
(:mod:`repro.service.daemon`) holding a bounded LRU pool of warm
:class:`~repro.core.timing.TimingAnalyzer` instances keyed by netlist
content hash (:mod:`repro.service.pool`).  Repeated queries against one
network hit the analyzer-lifetime caches, and queued same-network
requests are coalesced into one delta-ordered mini-sweep.  The wire
shapes live in :mod:`repro.service.protocol`, the stdlib client in
:mod:`repro.service.client`, and the end-to-end gate in
:mod:`repro.service.smoke` (``make service-smoke``).
"""

from .client import AnalyzedVector, ServiceClient, wait_until_ready
from .daemon import ServiceConfig, TimingService, serve
from .pool import AnalyzerPool, PoolEntry
from .protocol import (
    AnalyzeRequest,
    decode_arrivals,
    encode_inputs,
    encode_result,
    parse_analyze_request,
)

__all__ = [
    "AnalyzedVector",
    "AnalyzerPool",
    "AnalyzeRequest",
    "PoolEntry",
    "ServiceClient",
    "ServiceConfig",
    "TimingService",
    "decode_arrivals",
    "encode_inputs",
    "encode_result",
    "parse_analyze_request",
    "serve",
    "wait_until_ready",
]
