"""End-to-end service smoke gate: ``python -m repro.service.smoke``.

Spawns a real daemon process (``repro-crystal serve --port 0``), then
checks the full serving envelope from outside:

1. concurrent clients (default 4) each stream a batch of vectors for
   the same circuit and every arrival is **bit-identical** to a local
   reference analyzer in this process (exact ``==``, not approx);
2. ``/metrics`` is live and shows the expected traffic: every request
   counted, a warm pool with at most one miss;
3. the daemon was started with ``--trace``; after shutdown the trace
   file validates against the Chrome trace_event schema and contains
   the service request spans;
4. ``SIGTERM`` drains cleanly: the process exits 0 by itself.

Everything runs under one hard wall-clock watchdog — a hung daemon
fails the gate instead of hanging CI (``make service-smoke``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..batch.vectors import Vector
from ..circuits import adder_input_names, ripple_carry_adder
from ..core.timing import TimingAnalyzer
from ..core.timing.analyzer import InputSpec
from ..errors import ServiceError
from ..netlist import sim_format
from ..tech import CMOS3, Transition
from .client import ServiceClient, wait_until_ready

BITS = 8  # rca8: big enough that warm caches matter, small enough for CI


def _netlist_text() -> str:
    """The smoke circuit as ``.sim`` text — both the daemon and the local
    reference parse this same text, so geometry is identical."""
    return sim_format.dumps(ripple_carry_adder(CMOS3, BITS))


def _vectors(count: int, client_index: int) -> List[Vector]:
    """Deterministic per-client vectors over the adder inputs; neighbours
    differ in few inputs so delta coalescing has something to chew on."""
    names = adder_input_names(BITS)
    vectors = []
    for position in range(count):
        inputs: Dict[str, InputSpec] = {}
        for offset, name in enumerate(names):
            late = (position + client_index + offset) % 5 == 0
            arrival = 0.4e-9 if late else 0.0
            inputs[name] = InputSpec(arrival_rise=arrival,
                                     arrival_fall=arrival, slope=0.2e-9)
        vectors.append(Vector(label=f"c{client_index}.v{position}",
                              inputs=inputs))
    return vectors


def _reference(netlist: str,
               vectors: List[Vector]) -> List[Dict[Tuple[str, str],
                                                   Tuple[float, float]]]:
    """Cold-process-equivalent arrivals, computed locally and exactly."""
    network = sim_format.loads(netlist, CMOS3, name="smoke-reference")
    analyzer = TimingAnalyzer(network)
    reference = []
    for vector in vectors:
        result = analyzer.analyze(vector.inputs)
        arrivals = {}
        for event, arrival in result.arrivals.items():
            edge = "rise" if event.transition is Transition.RISE else "fall"
            arrivals[(event.node, edge)] = (arrival.time, arrival.slope)
        reference.append(arrivals)
    return reference


class _Watchdog:
    """Kill *process* and abort if the smoke run exceeds its budget."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.fired = False
        self._process: Optional[subprocess.Popen] = None
        self._timer = threading.Timer(seconds, self._fire)

    def arm(self, process: subprocess.Popen) -> None:
        self._process = process
        self._timer.daemon = True
        self._timer.start()

    def _fire(self) -> None:
        self.fired = True
        if self._process is not None and self._process.poll() is None:
            self._process.kill()

    def disarm(self) -> None:
        self._timer.cancel()


def run_smoke(clients: int = 4, vectors_per_client: int = 6,
              watchdog_seconds: float = 300.0,
              keep_trace: Optional[str] = None) -> int:
    """The gate; returns 0 on success, 1 with a diagnostic otherwise."""
    netlist = _netlist_text()
    tmp = tempfile.mkdtemp(prefix="repro-service-smoke-")
    trace_path = keep_trace or str(pathlib.Path(tmp) / "service-trace.json")

    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--pool-size", "2", "--queue-limit", "128",
         "--trace", trace_path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    watchdog = _Watchdog(watchdog_seconds)
    watchdog.arm(process)
    try:
        assert process.stdout is not None
        banner = process.stdout.readline().strip()
        prefix = "repro-crystal service listening on http://"
        if not banner.startswith(prefix):
            raise ServiceError(f"unexpected daemon banner: {banner!r}")
        host, _, port_text = banner[len(prefix):].rpartition(":")
        port = int(port_text)
        wait_until_ready(host, port, timeout=30.0)

        # -- concurrent clients, bit-identity -------------------------------
        per_client = [_vectors(vectors_per_client, index)
                      for index in range(clients)]
        results: List[Optional[List]] = [None] * clients
        errors: List[Optional[BaseException]] = [None] * clients

        def worker(index: int) -> None:
            client = ServiceClient(host, port, timeout=120.0)
            try:
                results[index] = client.analyze(
                    netlist, per_client[index], characterize=False)
            except BaseException as exc:
                errors[index] = exc

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        for index, error in enumerate(errors):
            if error is not None:
                raise ServiceError(f"client {index} failed: {error}")

        checked = 0
        for index in range(clients):
            reference = _reference(netlist, per_client[index])
            analyzed = results[index]
            assert analyzed is not None
            for vector, served, expected in zip(per_client[index], analyzed,
                                                reference):
                if served.label != vector.label:
                    raise ServiceError(
                        f"label mismatch: {served.label} != {vector.label}")
                if served.arrivals != expected:
                    raise ServiceError(
                        f"arrivals for {vector.label} are not "
                        "bit-identical to the local reference")
                checked += len(served.arrivals)
        print(f"smoke: {clients} client(s) x {vectors_per_client} "
              f"vector(s), {checked} arrival(s) bit-identical "
              f"({elapsed:.2f}s)")

        # -- metrics --------------------------------------------------------
        metrics = ServiceClient(host, port).metrics()
        service = metrics["service"]
        pool = metrics["pool"]
        total = clients  # one /analyze per client
        if service.get("service_completed", 0) < total:
            raise ServiceError(
                f"/metrics shows {service.get('service_completed')} "
                f"completed request(s), expected >= {total}")
        if pool["misses"] != 1 or pool["hits"] < 0:
            raise ServiceError(
                f"pool should have exactly one miss for one netlist, "
                f"got {pool['misses']}")
        if not metrics["perf"].get("counters"):
            raise ServiceError("/metrics perf counters are empty")
        print(f"smoke: /metrics live — "
              f"{service.get('service_completed')} completed, "
              f"pool {pool['hits']}h/{pool['misses']}m, "
              f"{service.get('service_coalesced_requests', 0)} coalesced")

        # -- graceful drain on SIGTERM --------------------------------------
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60.0)
        if returncode != 0:
            stderr = process.stderr.read() if process.stderr else ""
            raise ServiceError(
                f"daemon exited {returncode} on SIGTERM: {stderr[-2000:]}")
        print("smoke: SIGTERM drained cleanly (exit 0)")

        # -- trace validity -------------------------------------------------
        from ..trace.export import validate_trace_file

        count = validate_trace_file(trace_path)
        with open(trace_path) as handle:
            names = {event.get("name")
                     for event in json.load(handle)["traceEvents"]}
        for required in ("service_request", "service_batch",
                         "service_sweep", "analyze"):
            if required not in names:
                raise ServiceError(
                    f"trace has no {required!r} span "
                    f"(got: {', '.join(sorted(n for n in names if n))})")
        print(f"smoke: trace valid ({count} events, request→batch→engine "
              "spans present)")
        return 0
    except Exception as exc:
        if watchdog.fired:
            print(f"smoke: FAILED — watchdog killed the daemon after "
                  f"{watchdog.seconds:g}s", file=sys.stderr)
        else:
            print(f"smoke: FAILED — {exc}", file=sys.stderr)
        return 1
    finally:
        watchdog.disarm()
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke",
        description="end-to-end smoke gate for the timing daemon")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--vectors", type=int, default=6)
    parser.add_argument("--watchdog", type=float, default=300.0,
                        metavar="SECONDS")
    parser.add_argument("--keep-trace", metavar="FILE",
                        help="write the session trace here instead of a "
                             "temp dir")
    args = parser.parse_args(argv)
    return run_smoke(clients=args.clients, vectors_per_client=args.vectors,
                     watchdog_seconds=args.watchdog,
                     keep_trace=args.keep_trace)


if __name__ == "__main__":
    sys.exit(main())
