"""Cold per-request reference: one process, one request, then exit.

``python -m repro.service.coldref`` reads a single ``/analyze`` request
body on stdin and writes the response body to stdout — exactly the
daemon's wire shapes (``protocol.py``), but through a freshly started
process with stone-cold caches.  This is the baseline the service is
benchmarked against (``benchmarks/bench_service.py``): same grammar,
same exact-float encoding, so "bit-identical arrivals" is checked on
the wire, not via some separate code path.

The response carries one extra field the daemon does not send:
``"perf"`` — this process's engine counters — so the bench can compare
model evaluations per request without instrumenting the subprocess.
"""

from __future__ import annotations

import json
import sys

from ..core.timing import TimingAnalyzer
from ..errors import ReproError
from ..netlist import sim_format
from .protocol import MODELS, encode_result, parse_analyze_request


def main() -> int:
    try:
        payload = json.load(sys.stdin)
        request = parse_analyze_request(payload)
        tech = request.technology()
        network = sim_format.loads(request.netlist, tech, name="coldref")
        analyzer = TimingAnalyzer(network,
                                  model=MODELS[request.model](),
                                  slope_quantum=request.slope_quantum,
                                  kernel=request.kernel)
        results = [encode_result(vector.label, analyzer.analyze(vector.inputs))
                   for vector in request.vectors]
    except (ReproError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    json.dump({"results": results, "perf": analyzer.perf.as_dict()},
              sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
