"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
subsystems: netlist construction and parsing, analog simulation, switch-level
simulation, and timing analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class NetlistError(ReproError):
    """Invalid netlist construction (unknown node, bad device, …)."""


class ParseError(NetlistError):
    """A netlist file could not be parsed.

    Carries the file name and line number when available.
    """

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        self.filename = filename
        self.line = line
        if line:
            message = f"{filename}:{line}: {message}"
        super().__init__(message)


class ValidationError(NetlistError):
    """A structurally complete netlist violates a sanity rule."""


class TechnologyError(ReproError):
    """Missing or inconsistent technology data (device kind, table, …)."""


class AnalysisError(ReproError):
    """Base class for failures of the analysis engines."""


class ConvergenceError(AnalysisError):
    """The analog simulator's Newton iteration failed to converge."""

    def __init__(self, message: str, time: float | None = None):
        self.time = time
        if time is not None:
            message = f"{message} (at t={time:.4g}s)"
        super().__init__(message)


class SimulationError(AnalysisError):
    """Generic analog/switch-level simulation failure."""


class TimingError(AnalysisError):
    """Static timing analysis failed (no paths, inconsistent states, …)."""


class SweepError(AnalysisError):
    """A batch scenario sweep could not be set up or run.

    Carries the vector file name and line number when the failure is a
    malformed vector file.
    """

    def __init__(self, message: str, filename: str | None = None,
                 line: int = 0):
        self.filename = filename
        self.line = line
        if filename is not None and line:
            message = f"{filename}:{line}: {message}"
        super().__init__(message)


class MeasurementError(AnalysisError):
    """A waveform measurement could not be taken (no crossing, …)."""


class TraceError(ReproError):
    """A trace file or bench-trend artifact is malformed or unreadable."""


class ServiceError(ReproError):
    """A timing-service request or response is invalid.

    Raised by the daemon for malformed request envelopes and by the
    client for transport failures and error responses; carries the
    HTTP-ish status the daemon maps it to (400 unless stated).
    """

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)
