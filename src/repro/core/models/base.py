"""Common vocabulary of the delay models.

Every model in this package answers the same question the paper poses:

    *Given one stage — a resistive path from a source (rail or driven
    input) through transistor channels to a target node, with capacitance
    hanging off it — and the transition time ("slope") of the input event
    that fires it, when does the target cross the logic threshold, and how
    fast is its edge?*

The question is packaged as a :class:`StageRequest` (built by the timing
machinery in :mod:`repro.core.timing.paths`), and answered as a
:class:`StageDelay`.  Models differ only in how they use the request:

* :class:`~repro.core.models.lumped_rc.LumpedRCModel` — total R times
  total C;
* :class:`~repro.core.models.rc_tree_model.RCTreeModel` — Elmore delay
  with RPH bounds on the request's RC tree;
* :class:`~repro.core.models.slope.SlopeModel` — slope-ratio-dependent
  effective resistance with slope propagation (the paper's contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ...errors import TimingError
from ...rctree import RCTree, TimeConstants, TreeTemplate
from ...rctree import time_constants as _scalar_time_constants
from ...tech import DeviceKind, Technology, Transition


@dataclass(frozen=True)
class StageRequest:
    """One stage-delay question.

    Attributes
    ----------
    tree:
        RC tree of the switching path: rooted at the source (the rail or
        the driven input), edges carry *static* effective resistances for
        the requested transition, nodes carry the capacitance they must
        (dis)charge.  Side branches reachable through conducting devices
        are included — their capacitance loads the path.  ``None`` when
        the request carries a compiled ``template`` instead (the
        vectorized-kernel path builds no dict trees at all).
    template:
        Optional compiled :class:`~repro.rctree.TreeTemplate` of the same
        structure.  When present, the accessor methods below
        (:meth:`stage_constants`, :meth:`path_resistance`,
        :meth:`total_capacitance`) answer from the template's memoized
        vectorized-kernel results; models written against those
        accessors are kernel-agnostic.
    target:
        The output node whose crossing is asked about.
    transition:
        Direction of the output transition.
    trigger_kind:
        Device kind whose switching fires the stage (selects the slope
        table).  For pass-through propagation it is the first pass
        device's kind.
    input_slope:
        Full-swing-equivalent transition time of the firing input signal
        (seconds).  Zero means an ideal step.
    tech:
        The technology (supplies static resistances and slope tables).
    """

    tree: Optional[RCTree]
    target: str
    transition: Transition
    trigger_kind: DeviceKind
    input_slope: float
    tech: Technology
    template: Optional[TreeTemplate] = None

    def __post_init__(self) -> None:
        if self.input_slope < 0:
            raise TimingError(f"negative input slope {self.input_slope!r}")
        if self.tree is None and self.template is None:
            raise TimingError(
                "stage request needs an RC tree or a compiled template"
            )
        holder = self.tree if self.tree is not None else self.template
        if not holder.contains(self.target):
            raise TimingError(
                f"target {self.target!r} is not in the request's RC tree"
            )

    # -- kernel-agnostic accessors --------------------------------------
    #
    # Models that only need the classic RC quantities should go through
    # these: with a template they are memoized vectorized-kernel lookups,
    # with a dict tree they fall back to the scalar reference.

    def stage_tree(self) -> RCTree:
        """The dict-based tree (materialized from the template if the
        request carries none — for consumers needing the full API)."""
        if self.tree is not None:
            return self.tree
        return self.template.to_rctree()

    def stage_constants(self) -> TimeConstants:
        """RPH time constants of the target node."""
        if self.template is not None:
            return self.template.constants_for(self.target)
        return _scalar_time_constants(self.tree, self.target)

    def path_resistance(self) -> float:
        """``R_ii`` from the source down to the target."""
        if self.template is not None:
            return self.template.path_resistance(self.target)
        return self.tree.path_resistance(self.target)

    def total_capacitance(self) -> float:
        """All capacitance hanging off the stage's tree."""
        if self.template is not None:
            return self.template.total_cap()
        return self.tree.total_cap()


@dataclass(frozen=True)
class StageDelay:
    """One stage-delay answer.

    ``delay`` is the model's point estimate of the 50%-to-50% stage delay;
    ``output_slope`` is the full-swing-equivalent transition time of the
    output edge (what the next stage receives as its input slope).
    ``lower``/``upper`` are bounds when the model provides them (the
    RC-tree model reports the RPH bracket; point models repeat the
    estimate).
    """

    delay: float
    output_slope: float
    lower: float
    upper: float
    model: str
    details: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.output_slope < 0:
            raise TimingError("negative output slope")
        if not (self.lower <= self.upper + 1e-18):
            raise TimingError(
                f"inverted bounds: [{self.lower}, {self.upper}]"
            )


class DelayModel:
    """Interface implemented by the three models."""

    #: short identifier used in tables and reports
    name: str = "abstract"

    def evaluate(self, request: StageRequest) -> StageDelay:
        raise NotImplementedError

    def evaluate_many(self, requests: "List[StageRequest]"
                      ) -> "List[StageDelay]":
        """Answer a batch of stage questions (one result per request,
        in order).

        The analyzer's candidate loop hands every memo miss of a stage
        visit over in one call, so a model can amortize shared work
        across the batch; template-carrying requests already share the
        per-stage vectorized-kernel results, so the default sequential
        loop is the right implementation for all built-in models.
        """
        return [self.evaluate(request) for request in requests]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def default_step_slope_factor() -> float:
    """Output transition time of a single-pole RC stage driven by a step,
    as a multiple of its time constant: the 10-90% interval is ``ln 9`` of
    a tau, i.e. ``ln 9 / 0.8`` full-swing-equivalent."""
    import math

    return math.log(9.0) / 0.8
