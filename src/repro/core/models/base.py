"""Common vocabulary of the delay models.

Every model in this package answers the same question the paper poses:

    *Given one stage — a resistive path from a source (rail or driven
    input) through transistor channels to a target node, with capacitance
    hanging off it — and the transition time ("slope") of the input event
    that fires it, when does the target cross the logic threshold, and how
    fast is its edge?*

The question is packaged as a :class:`StageRequest` (built by the timing
machinery in :mod:`repro.core.timing.paths`), and answered as a
:class:`StageDelay`.  Models differ only in how they use the request:

* :class:`~repro.core.models.lumped_rc.LumpedRCModel` — total R times
  total C;
* :class:`~repro.core.models.rc_tree_model.RCTreeModel` — Elmore delay
  with RPH bounds on the request's RC tree;
* :class:`~repro.core.models.slope.SlopeModel` — slope-ratio-dependent
  effective resistance with slope propagation (the paper's contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ...errors import TimingError
from ...rctree import RCTree
from ...tech import DeviceKind, Technology, Transition


@dataclass(frozen=True)
class StageRequest:
    """One stage-delay question.

    Attributes
    ----------
    tree:
        RC tree of the switching path: rooted at the source (the rail or
        the driven input), edges carry *static* effective resistances for
        the requested transition, nodes carry the capacitance they must
        (dis)charge.  Side branches reachable through conducting devices
        are included — their capacitance loads the path.
    target:
        The output node whose crossing is asked about.
    transition:
        Direction of the output transition.
    trigger_kind:
        Device kind whose switching fires the stage (selects the slope
        table).  For pass-through propagation it is the first pass
        device's kind.
    input_slope:
        Full-swing-equivalent transition time of the firing input signal
        (seconds).  Zero means an ideal step.
    tech:
        The technology (supplies static resistances and slope tables).
    """

    tree: RCTree
    target: str
    transition: Transition
    trigger_kind: DeviceKind
    input_slope: float
    tech: Technology

    def __post_init__(self) -> None:
        if self.input_slope < 0:
            raise TimingError(f"negative input slope {self.input_slope!r}")
        if not self.tree.contains(self.target):
            raise TimingError(
                f"target {self.target!r} is not in the request's RC tree"
            )


@dataclass(frozen=True)
class StageDelay:
    """One stage-delay answer.

    ``delay`` is the model's point estimate of the 50%-to-50% stage delay;
    ``output_slope`` is the full-swing-equivalent transition time of the
    output edge (what the next stage receives as its input slope).
    ``lower``/``upper`` are bounds when the model provides them (the
    RC-tree model reports the RPH bracket; point models repeat the
    estimate).
    """

    delay: float
    output_slope: float
    lower: float
    upper: float
    model: str
    details: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.output_slope < 0:
            raise TimingError("negative output slope")
        if not (self.lower <= self.upper + 1e-18):
            raise TimingError(
                f"inverted bounds: [{self.lower}, {self.upper}]"
            )


class DelayModel:
    """Interface implemented by the three models."""

    #: short identifier used in tables and reports
    name: str = "abstract"

    def evaluate(self, request: StageRequest) -> StageDelay:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def default_step_slope_factor() -> float:
    """Output transition time of a single-pole RC stage driven by a step,
    as a multiple of its time constant: the 10-90% interval is ``ln 9`` of
    a tau, i.e. ``ln 9 / 0.8`` full-swing-equivalent."""
    import math

    return math.log(9.0) / 0.8
