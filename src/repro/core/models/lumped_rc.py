"""The lumped RC model (the paper's simplest).

Every stage collapses to a single resistance — the sum of the static
effective resistances along the switching path — and a single capacitance —
*all* the capacitance in the stage's tree, as if it all sat at the far end.
The stage delay is simply ``R_total * C_total``.

This is fast and usually pessimistic (a factor approaching 2 on long pass
chains, where the distributed structure means most capacitance does *not*
see the whole path resistance), and it knows nothing about input slope, so
slowly driven stages are *under*-estimated.  Reproducing both failure modes
is the point of experiments F2 and F3.
"""

from __future__ import annotations

from .base import DelayModel, StageDelay, StageRequest, default_step_slope_factor


class LumpedRCModel(DelayModel):
    """``delay = (sum of path R) * (sum of all C)``."""

    name = "lumped-rc"

    def evaluate(self, request: StageRequest) -> StageDelay:
        resistance = request.path_resistance()
        capacitance = request.total_capacitance()
        delay = resistance * capacitance
        slope = default_step_slope_factor() * delay
        return StageDelay(
            delay=delay,
            output_slope=slope,
            lower=delay,
            upper=delay,
            model=self.name,
            details=(
                ("path_resistance", resistance),
                ("total_capacitance", capacitance),
            ),
        )
