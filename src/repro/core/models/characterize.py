"""Characterization: fit static resistances and slope tables to the
reference simulator.

This reproduces the paper's methodology: the slope model's tables are not
derived analytically but *fitted*, once per technology, by simulating small
reference fixtures with a circuit simulator and sweeping the input
transition time over decades of slope ratio.

Fixtures (per table key):

=====================  ===========================================
``(NMOS_ENH, FALL)``   inverter, rising input, falling output
``(PMOS, RISE)``       CMOS inverter, falling input, rising output
``(NMOS_DEP, RISE)``   nMOS inverter, falling input, rising output
                       (the depletion load pulls the node up)
``(NMOS_ENH, RISE)``   nMOS pass device (gate at Vdd) passing a
                       rising edge — threshold-degraded level
``(PMOS, FALL)``       pMOS pass device (gate at GND) passing a
                       falling edge
=====================  ===========================================

The static resistance for each key is fitted so ``delay = R * C`` is exact
for a step input on the fixture; the slope table's ``delay_factor`` is then
1.0 at ratio → 0 by construction (up to measurement noise).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ...analog import delay_between, simulate, sources
from ...errors import TechnologyError
from ...netlist import Network
from ...tech import (
    DeviceKind,
    SlopeTable,
    SlopeTableSet,
    StaticResistance,
    Technology,
    Transition,
    logarithmic_ratio_grid,
)
from ...tech import cmos3 as _cmos
from ...tech import nmos4 as _nmos

#: Characterization results are deterministic per technology; cache them.
_CACHE: Dict[Tuple[str, Tuple[float, ...]], Technology] = {}


@dataclass(frozen=True)
class Fixture:
    """One characterization circuit.

    ``build`` returns ``(network, load_cap_farads)``; the circuit's ports
    are always ``in`` → ``out``.  ``reference_shape`` is the W/L of the
    device whose resistance is being fitted (to convert the fitted ohms to
    a square-device resistance).
    """

    kind: DeviceKind
    transition: Transition  # of the OUTPUT
    input_edge: Transition
    build: Callable[[Technology], Tuple[Network, float]]
    reference_shape: float  # W / L


@dataclass(frozen=True)
class CharacterizationPoint:
    """One measured sweep point (kept for inspection/benchmarks)."""

    ratio: float
    input_transition: float
    delay: float
    output_slope: float


@dataclass
class CharacterizationResult:
    """Everything measured for one table key."""

    fixture: Fixture
    static_resistance: float  # ohms, for the fixture's reference device
    tau: float
    total_cap: float
    points: List[CharacterizationPoint]

    def table(self) -> SlopeTable:
        return SlopeTable.from_samples(
            (p.ratio, p.delay / self.tau, p.output_slope / self.tau)
            for p in self.points
        )


# ---------------------------------------------------------------------------
# Fixture builders
# ---------------------------------------------------------------------------

def _cmos_inverter(tech: Technology) -> Tuple[Network, float]:
    net = Network(tech, name="char-cmos-inv")
    net.add_transistor(DeviceKind.NMOS_ENH, "in", "gnd", "out",
                       width=_cmos.NMOS_W, length=_cmos.NMOS_L)
    net.add_transistor(DeviceKind.PMOS, "in", "vdd", "out",
                       width=_cmos.PMOS_W, length=_cmos.PMOS_L)
    load = 100e-15
    net.add_capacitor("out", "gnd", load)
    net.mark_input("in")
    return net, load


def _nmos_inverter(tech: Technology) -> Tuple[Network, float]:
    net = Network(tech, name="char-nmos-inv")
    net.add_transistor(DeviceKind.NMOS_ENH, "in", "gnd", "out",
                       width=_nmos.PULLDOWN_W, length=_nmos.PULLDOWN_L)
    net.add_transistor(DeviceKind.NMOS_DEP, "out", "out", "vdd",
                       width=_nmos.LOAD_W, length=_nmos.LOAD_L)
    load = 100e-15
    net.add_capacitor("out", "gnd", load)
    net.mark_input("in")
    return net, load


class _pass_fixture:
    """Pass-gate fixture builder for *kind*.

    A class (not a closure) so characterization results — and with them
    characterized :class:`Technology` objects — stay picklable; the
    parallel subsystem ships them to worker processes.
    """

    def __init__(self, kind: DeviceKind):
        self.kind = kind

    def __call__(self, tech: Technology) -> Tuple[Network, float]:
        kind = self.kind
        net = Network(tech, name=f"char-pass-{kind.value}")
        if tech.has_kind(DeviceKind.PMOS):
            w, l = _cmos.PASS_W, _cmos.PASS_L
        else:
            w, l = _nmos.PASS_W, _nmos.PASS_L
        gate = "vdd" if kind is not DeviceKind.PMOS else "gnd"
        net.add_transistor(kind, gate, "in", "out", width=w, length=l)
        load = 100e-15
        net.add_capacitor("out", "gnd", load)
        net.mark_input("in")
        return net, load


def fixtures_for(tech: Technology) -> List[Fixture]:
    """The characterization set appropriate to a technology."""
    out: List[Fixture] = []
    if tech.has_kind(DeviceKind.PMOS):
        out.append(Fixture(DeviceKind.NMOS_ENH, Transition.FALL,
                           Transition.RISE, _cmos_inverter,
                           _cmos.NMOS_W / _cmos.NMOS_L))
        out.append(Fixture(DeviceKind.PMOS, Transition.RISE,
                           Transition.FALL, _cmos_inverter,
                           _cmos.PMOS_W / _cmos.PMOS_L))
        out.append(Fixture(DeviceKind.NMOS_ENH, Transition.RISE,
                           Transition.RISE,
                           _pass_fixture(DeviceKind.NMOS_ENH),
                           _cmos.PASS_W / _cmos.PASS_L))
        out.append(Fixture(DeviceKind.PMOS, Transition.FALL,
                           Transition.FALL, _pass_fixture(DeviceKind.PMOS),
                           2.0 * _cmos.PASS_W / _cmos.PASS_L))
    elif tech.has_kind(DeviceKind.NMOS_DEP):
        out.append(Fixture(DeviceKind.NMOS_ENH, Transition.FALL,
                           Transition.RISE, _nmos_inverter,
                           _nmos.PULLDOWN_W / _nmos.PULLDOWN_L))
        out.append(Fixture(DeviceKind.NMOS_DEP, Transition.RISE,
                           Transition.FALL, _nmos_inverter,
                           _nmos.LOAD_W / _nmos.LOAD_L))
        out.append(Fixture(DeviceKind.NMOS_ENH, Transition.RISE,
                           Transition.RISE,
                           _pass_fixture(DeviceKind.NMOS_ENH),
                           _nmos.PASS_W / _nmos.PASS_L))
    else:
        raise TechnologyError(
            f"technology {tech.name!r} has no characterizable pullup"
        )
    return out


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _analytic_tau_guess(tech: Technology, fixture: Fixture,
                        total_cap: float) -> float:
    resistance = tech.resistance(fixture.kind, fixture.transition, 1e-6,
                                 1e-6 / fixture.reference_shape)
    return resistance * total_cap


def _measure(tech: Technology, fixture: Fixture, input_transition: float,
             tau_hint: float) -> Tuple[float, float]:
    """Simulate one edge; return (delay, output transition time)."""
    network, _ = fixture.build(tech)
    vdd = tech.vdd
    t_start = max(2.0 * tau_hint, 0.5 * input_transition)
    t_stop = t_start + input_transition + 12.0 * tau_hint
    drive = sources.edge(vdd, rising=fixture.input_edge is Transition.RISE,
                         at=t_start, transition_time=input_transition)
    result = simulate(network, {"in": drive}, t_stop=t_stop, steps=1600)
    w_in = result.waveform("in")
    w_out = result.waveform("out")
    delay = delay_between(w_in, w_out, vdd, fixture.input_edge,
                          fixture.transition)
    v0 = w_out.initial_value()
    v1 = w_out.final_value()
    low, high = min(v0, v1), max(v0, v1)
    slope = w_out.transition_time(low, high, fixture.transition, after=0.0)
    return delay, slope


def characterize_fixture(tech: Technology, fixture: Fixture,
                         ratios: Optional[List[float]] = None
                         ) -> CharacterizationResult:
    """Fit one fixture: static resistance from a step, then the ratio sweep."""
    network, _ = fixture.build(tech)
    total_cap = network.node_capacitance("out")
    tau_guess = _analytic_tau_guess(tech, fixture, total_cap)

    # Step-input fit of the static resistance (a "step" is an edge much
    # faster than the stage: ratio 1/50).
    step_delay, _ = _measure(tech, fixture, tau_guess / 50.0, tau_guess)
    if step_delay <= 0:
        raise TechnologyError(
            f"fixture {fixture.kind.name}/{fixture.transition.value}: "
            f"non-positive step delay {step_delay:g}"
        )
    resistance = step_delay / total_cap
    tau = resistance * total_cap  # == step_delay, by construction

    points: List[CharacterizationPoint] = []
    for ratio in (ratios or logarithmic_ratio_grid()):
        t_in = ratio * tau
        delay, slope = _measure(tech, fixture, t_in, tau)
        points.append(CharacterizationPoint(
            ratio=ratio, input_transition=t_in, delay=delay,
            output_slope=slope))
    return CharacterizationResult(
        fixture=fixture, static_resistance=resistance, tau=tau,
        total_cap=total_cap, points=points)


def characterize_technology(tech: Technology,
                            ratios: Optional[List[float]] = None,
                            use_cache: bool = True) -> Technology:
    """Return a copy of *tech* with fitted static resistances and slope
    tables.  Results are cached per (technology name, ratio grid)."""
    grid = tuple(ratios or logarithmic_ratio_grid())
    key = (tech.name, grid)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    static = dict(tech.static_resistance)
    table_set = SlopeTableSet(source=f"characterized:{tech.name}")
    results: Dict[Tuple[DeviceKind, Transition], CharacterizationResult] = {}
    for fixture in fixtures_for(tech):
        result = characterize_fixture(tech, fixture, list(grid))
        results[(fixture.kind, fixture.transition)] = result
        r_square = result.static_resistance * fixture.reference_shape
        static[(fixture.kind, fixture.transition)] = StaticResistance(r_square)
        table_set.add(fixture.kind, fixture.transition, result.table())

    # Keys not characterized (e.g. (NMOS_DEP, FALL)) inherit the analytic
    # defaults already present in `static`.
    fitted = dataclasses.replace(tech, static_resistance=static,
                                 slope_tables=table_set)
    fitted.characterization = results  # attached for inspection
    if use_cache:
        _CACHE[key] = fitted
    return fitted


def clear_cache() -> None:
    """Drop memoized characterizations (tests use this)."""
    _CACHE.clear()


def table_summary(tech: Technology) -> str:
    """Human-readable dump of a technology's slope tables."""
    tables = tech.slope_tables
    if tables is None:
        return f"technology {tech.name}: no slope tables"
    lines = [f"technology {tech.name}: slope tables ({tables.source})"]
    for kind, transition in tables.keys():
        table = tables.get(kind, transition)
        lines.append(f"  {kind.name}/{transition.value}:")
        lines.append("    ratio     delay_f   slope_f")
        for r, d, s in zip(table.ratios, table.delay_factors,
                           table.slope_factors):
            lines.append(f"    {r:8.3f}  {d:8.3f}  {s:8.3f}")
    return "\n".join(lines)
