"""The slope model — the paper's main contribution.

The constant-resistance models assume every stage is driven by an ideal
step.  Real stages are driven by the finite edges of the previous stage,
and a transistor that is still half-way through turning on presents a much
larger effective resistance.  The slope model captures this with one
number per stage, the **slope ratio**

    ``r = input_transition_time / tau``

where ``tau`` is the stage's intrinsic time constant (here: the Elmore
delay of its RC tree, which reduces to ``R*C`` for a single lumped node).
Characterized tables (per device kind and output direction, fitted against
the reference simulator — see :mod:`repro.core.models.characterize`) then
give

    ``delay        = delay_factor(r)  * tau``
    ``output_slope = slope_factor(r)  * tau``

and the output slope feeds the next stage, so slow edges propagate through
chains exactly the way they do in circuit simulation.  Ablation A1 removes
the propagation (every stage pretends ``r = 0``) and shows the accuracy
collapse.
"""

from __future__ import annotations

from ...errors import TechnologyError, TimingError
from ...tech import SlopeTableSet
from .base import DelayModel, StageDelay, StageRequest


class SlopeModel(DelayModel):
    """Slope-ratio-dependent effective resistance with slope propagation."""

    name = "slope"

    def __init__(self, tables: SlopeTableSet = None,
                 propagate_slopes: bool = True):
        """*tables* overrides the technology's own slope tables (used by
        the characterization tests); *propagate_slopes* = False is the A1
        ablation switch."""
        self._tables = tables
        self.propagate_slopes = propagate_slopes
        # Value-level memo: the answer is a pure function of (table, tau,
        # effective input slope), and large circuits ask the same numeric
        # question from many structurally-identical stages.  Keyed on the
        # table *object* (frozen dataclass), so swapping in new
        # characterization tables naturally misses.
        self._memo = {}

    def _table_set(self, request: StageRequest) -> SlopeTableSet:
        if self._tables is not None:
            return self._tables
        tables = request.tech.slope_tables
        if tables is None:
            raise TechnologyError(
                f"technology {request.tech.name!r} has no slope tables; "
                "run characterize_technology() or use the analytic defaults"
            )
        return tables

    def evaluate(self, request: StageRequest) -> StageDelay:
        constants = request.stage_constants()
        tau = constants.t_d
        if tau <= 0:
            raise TimingError(
                f"stage tree for {request.target!r} has zero time constant"
            )
        table = self._table_set(request).get(request.trigger_kind,
                                             request.transition)
        effective_slope = request.input_slope if self.propagate_slopes else 0.0
        key = (table, tau, effective_slope)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        ratio = effective_slope / tau
        delay_factor = table.delay_factor(ratio)
        slope_factor = table.slope_factor(ratio)
        delay = delay_factor * tau
        slope = slope_factor * tau
        result = self._memo[key] = StageDelay(
            delay=delay,
            output_slope=slope,
            lower=delay,
            upper=delay,
            model=self.name,
            details=(
                ("tau", tau),
                ("slope_ratio", ratio),
                ("delay_factor", delay_factor),
                ("slope_factor", slope_factor),
            ),
        )
        return result
