"""The RC-tree model: Elmore delay plus Penfield-Rubinstein-Horowitz bounds.

The stage keeps its distributed structure: each device contributes its
static resistance as a tree edge, each node its capacitance.  The point
estimate is the Elmore delay ``T_D``; the reported ``lower``/``upper``
pair is the rigorous RPH bracket from :mod:`repro.rctree.bounds`.

Calibration note: the characterized static resistances are fitted so that
``R*C`` equals the measured 50% step delay of the reference stage, which
makes Elmore (not the 50%-threshold bracket midpoint) the consistent point
estimate — on a single-node stage it reproduces the reference exactly.
The RPH bracket is reported against the linear-RC idealization and is the
honest uncertainty band on distributed structures (pass chains), where the
model earns its keep over the lumped one.  ``point_estimate="midpoint"``
switches to the bracket midpoint for studies of the raw bounds.
"""

from __future__ import annotations

from typing import Optional

from ...rctree import delay_bounds_from_constants
from .base import DelayModel, StageDelay, StageRequest, default_step_slope_factor

#: Injected-bug hook for the conformance subsystem's self-test
#: (``tests/test_verify_conformance.py``): when set, delays computed on
#: the compiled-template path (the numpy kernel) are scaled by this
#: factor, so the two kernels disagree and ``repro verify`` must catch
#: and shrink the divergence.  Production code never sets it.
_TEMPLATE_DELAY_SCALE: Optional[float] = None


def set_template_delay_scale(scale: Optional[float]) -> None:
    """Install (``float``) or clear (``None``) the injected-bug hook."""
    global _TEMPLATE_DELAY_SCALE
    _TEMPLATE_DELAY_SCALE = None if scale is None else float(scale)


class RCTreeModel(DelayModel):
    """Elmore + RPH bounds on the stage's RC tree."""

    name = "rc-tree"

    def __init__(self, threshold: float = 0.5,
                 point_estimate: str = "elmore"):
        if point_estimate not in ("midpoint", "elmore"):
            raise ValueError("point_estimate must be 'midpoint' or 'elmore'")
        self.threshold = threshold
        self.point_estimate = point_estimate

    def evaluate(self, request: StageRequest) -> StageDelay:
        constants = request.stage_constants()
        bounds = delay_bounds_from_constants(constants, self.threshold)
        if self.point_estimate == "midpoint":
            delay = bounds.midpoint()
        else:
            delay = constants.t_d
        if _TEMPLATE_DELAY_SCALE is not None and request.template is not None:
            delay *= _TEMPLATE_DELAY_SCALE
        slope = default_step_slope_factor() * max(constants.t_d, 1e-30)
        return StageDelay(
            delay=delay,
            output_slope=slope,
            lower=bounds.lower,
            upper=bounds.upper,
            model=self.name,
            details=(
                ("elmore", constants.t_d),
                ("t_p", constants.t_p),
                ("t_r", constants.t_r),
            ),
        )
