"""The paper's delay models: lumped RC, RC tree (Elmore + RPH), slope."""

from .base import DelayModel, StageDelay, StageRequest, default_step_slope_factor
from .lumped_rc import LumpedRCModel
from .rc_tree_model import RCTreeModel
from .slope import SlopeModel
from .characterize import (
    CharacterizationPoint,
    CharacterizationResult,
    Fixture,
    characterize_fixture,
    characterize_technology,
    clear_cache,
    fixtures_for,
    table_summary,
)

ALL_MODELS = (LumpedRCModel, RCTreeModel, SlopeModel)


def standard_models():
    """Fresh instances of the three models, in the paper's order."""
    return [LumpedRCModel(), RCTreeModel(), SlopeModel()]


__all__ = [
    "DelayModel",
    "StageDelay",
    "StageRequest",
    "default_step_slope_factor",
    "LumpedRCModel",
    "RCTreeModel",
    "SlopeModel",
    "CharacterizationPoint",
    "CharacterizationResult",
    "Fixture",
    "characterize_fixture",
    "characterize_technology",
    "clear_cache",
    "fixtures_for",
    "table_summary",
    "ALL_MODELS",
    "standard_models",
]
