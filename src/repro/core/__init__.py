"""The paper's contribution: delay models and the static timing analyzer."""

from . import models, timing
from .models import (
    DelayModel,
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    StageDelay,
    StageRequest,
    characterize_technology,
    standard_models,
)
from .timing import InputSpec, TimingAnalyzer, TimingResult, analyze

__all__ = [
    "models",
    "timing",
    "DelayModel",
    "LumpedRCModel",
    "RCTreeModel",
    "SlopeModel",
    "StageDelay",
    "StageRequest",
    "characterize_technology",
    "standard_models",
    "InputSpec",
    "TimingAnalyzer",
    "TimingResult",
    "analyze",
]
