"""Clocked-circuit timing: phase schedules and setup checks.

Crystal's day job was verifying clocked nMOS/CMOS chips: two-phase dynamic
logic where data races the clock through pass transistors.  This module
reproduces that workflow on top of the core analyzer:

* a :class:`ClockSchedule` gives each clock phase its rising and falling
  instants within one cycle;
* :func:`analyze_clocked` turns the schedule plus data-input timing into
  ordinary analyzer input specs and runs the analysis;
* :func:`setup_checks` then walks every clock-gated pass device and
  verifies that the data arriving at the storage node behind it settles
  before the phase closes — reporting the slack of each check, Crystal's
  core output for clocked designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from ...errors import TimingError
from ...netlist import Network
from ...netlist.stages import StageMap
from ...tech import DeviceKind, Transition
from ..models import DelayModel
from .analyzer import InputSpec, TimingAnalyzer, TimingResult
from .paths import StateMap


@dataclass(frozen=True)
class ClockPhase:
    """One clock phase within the cycle: rises at *rise*, falls at *fall*."""

    name: str
    rise: float
    fall: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rise < self.fall:
            raise TimingError(
                f"phase {self.name!r}: need 0 <= rise < fall, got "
                f"[{self.rise:g}, {self.fall:g}]"
            )

    @property
    def width(self) -> float:
        return self.fall - self.rise


@dataclass
class ClockSchedule:
    """A cycle period and its (non-overlapping, by convention) phases."""

    period: float
    phases: Dict[str, ClockPhase] = field(default_factory=dict)
    clock_slope: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise TimingError("clock period must be positive")
        for phase in self.phases.values():
            if phase.fall > self.period:
                raise TimingError(
                    f"phase {phase.name!r} extends past the period"
                )

    @classmethod
    def two_phase(cls, period: float, separation: float = 0.0,
                  clock_slope: float = 0.0) -> "ClockSchedule":
        """The classic non-overlapping two-phase scheme: phi1 occupies the
        first half-cycle, phi2 the second, separated by *separation*."""
        half = period / 2.0
        if separation < 0 or separation >= half:
            raise TimingError("separation must be in [0, period/2)")
        return cls(
            period=period,
            phases={
                "phi1": ClockPhase("phi1", 0.0, half - separation),
                "phi2": ClockPhase("phi2", half, period - separation),
            },
            clock_slope=clock_slope,
        )

    def phase(self, name: str) -> ClockPhase:
        try:
            return self.phases[name]
        except KeyError:
            raise TimingError(f"unknown clock phase {name!r}") from None


@dataclass(frozen=True)
class SetupCheck:
    """One data-versus-phase-close race.

    ``slack = required - arrival``: negative slack is a setup violation —
    the storage node behind the clocked pass device is still moving when
    the phase shuts.
    """

    storage_node: str
    clock_node: str
    phase: str
    device: str
    arrival: float
    required: float

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def ok(self) -> bool:
        return self.slack >= 0.0

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "VIOLATION"
        return (f"{self.storage_node}: data {self.arrival * 1e9:.3f}ns vs "
                f"{self.phase} close {self.required * 1e9:.3f}ns -> "
                f"slack {self.slack * 1e9:+.3f}ns [{verdict}] "
                f"(through {self.device}, clocked by {self.clock_node})")


@dataclass
class ClockedTimingResult:
    """Analysis result plus the schedule it was run against."""

    result: TimingResult
    schedule: ClockSchedule
    clocks: Dict[str, str]  # clock node -> phase name
    checks: List[SetupCheck] = field(default_factory=list)

    @property
    def violations(self) -> List[SetupCheck]:
        return [c for c in self.checks if not c.ok]

    def worst_slack(self) -> Optional[float]:
        if not self.checks:
            return None
        return min(c.slack for c in self.checks)


def clock_input_spec(phase: ClockPhase, slope: float) -> InputSpec:
    """The analyzer spec of a clock node for one cycle of its phase."""
    return InputSpec(arrival_rise=phase.rise, arrival_fall=phase.fall,
                     slope=slope)


def analyze_clocked(network: Network,
                    data_inputs: Mapping[str, Union[InputSpec, float]],
                    clocks: Mapping[str, str],
                    schedule: ClockSchedule,
                    model: Optional[DelayModel] = None,
                    states: Optional[StateMap] = None) -> ClockedTimingResult:
    """Run a clocked analysis and its setup checks.

    *clocks* maps clock input nodes to phase names of *schedule*; every
    remaining primary input needs an entry in *data_inputs* (data launched
    by a phase is typically given the phase's rise time as its arrival).
    """
    inputs: Dict[str, Union[InputSpec, float]] = dict(data_inputs)
    phase_of_clock: Dict[str, str] = {}
    for node, phase_name in clocks.items():
        phase = schedule.phase(phase_name)
        name = network.node(node).name
        inputs[name] = clock_input_spec(phase, schedule.clock_slope)
        phase_of_clock[name] = phase_name

    analyzer = TimingAnalyzer(network, model=model, states=states)
    result = analyzer.analyze(inputs)
    checks = setup_checks(network, result, phase_of_clock, schedule)
    return ClockedTimingResult(result=result, schedule=schedule,
                               clocks=phase_of_clock, checks=checks)


def setup_checks(network: Network, result: TimingResult,
                 clocks: Mapping[str, str],
                 schedule: ClockSchedule) -> List[SetupCheck]:
    """One check per (clock-gated pass device, storage terminal).

    The storage node behind an n-channel device clocked by phase P must be
    settled before P falls (for a p-channel clocked device, before P
    rises).  The data arrival used is the *latest* computed transition of
    the storage node; nodes with no computed arrival (never exercised by
    the analyzed vectors) are skipped.
    """
    stage_map = StageMap.build(network)
    checks: List[SetupCheck] = []
    for clock_node, phase_name in clocks.items():
        phase = schedule.phase(phase_name)
        for device in network.transistors_gated_by(clock_node):
            close_time = (phase.fall
                          if device.kind is not DeviceKind.PMOS
                          else phase.rise)
            for terminal in device.channel:
                if stage_map.maybe(terminal) is None:
                    continue  # driven node, not storage
                arrivals = [
                    result.arrival(terminal, transition).time
                    for transition in Transition
                    if result.has_arrival(terminal, transition)
                ]
                if not arrivals:
                    continue
                checks.append(SetupCheck(
                    storage_node=terminal,
                    clock_node=clock_node,
                    phase=phase_name,
                    device=device.name,
                    arrival=max(arrivals),
                    required=close_time,
                ))
    checks.sort(key=lambda c: c.slack)
    return checks


def format_setup_report(clocked: ClockedTimingResult) -> str:
    """Crystal-style setup summary, worst slack first."""
    lines = [
        f"setup checks (period {clocked.schedule.period * 1e9:.2f}ns, "
        f"model {clocked.result.model_name})"
    ]
    if not clocked.checks:
        lines.append("  (no clocked storage found)")
        return "\n".join(lines)
    for check in clocked.checks:
        lines.append("  " + str(check))
    worst = clocked.worst_slack()
    lines.append(f"worst slack: {worst * 1e9:+.3f}ns; "
                 f"{len(clocked.violations)} violation(s)")
    return "\n".join(lines)


def minimum_period(network: Network,
                   data_inputs: Mapping[str, Union[InputSpec, float]],
                   clocks: Mapping[str, str],
                   template: ClockSchedule,
                   model: Optional[DelayModel] = None,
                   states: Optional[StateMap] = None,
                   tolerance: float = 0.02,
                   max_iterations: int = 40) -> float:
    """Binary-search the smallest period (scaling *template*) with no
    setup violations — 'how fast can this chip clock', the question
    Crystal was built to answer."""
    def passes(period: float) -> bool:
        scale = period / template.period
        schedule = ClockSchedule(
            period=period,
            phases={
                name: ClockPhase(name, p.rise * scale, p.fall * scale)
                for name, p in template.phases.items()
            },
            clock_slope=template.clock_slope,
        )
        clocked = analyze_clocked(network, data_inputs, clocks, schedule,
                                  model=model, states=states)
        worst = clocked.worst_slack()
        return worst is None or worst >= 0.0

    low = template.period
    high = template.period
    # Find a passing upper bound.
    for _ in range(max_iterations):
        if passes(high):
            break
        high *= 2.0
    else:
        raise TimingError("no passing period found (combinational loop?)")
    # Find a failing lower bound (or accept the template's own period).
    for _ in range(max_iterations):
        candidate = low / 2.0
        if passes(candidate):
            low = candidate
        else:
            break
        if low < 1e-15:
            return low
    lo_fail, hi_pass = low / 2.0, high
    if passes(low):
        hi_pass = low
    while (hi_pass - lo_fail) > tolerance * hi_pass:
        mid = 0.5 * (lo_fail + hi_pass)
        if passes(mid):
            hi_pass = mid
        else:
            lo_fail = mid
    return hi_pass
