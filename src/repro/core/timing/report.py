"""Crystal-style text reports.

Crystal printed its findings as ranked critical paths with per-stage
breakdowns; these helpers render a :class:`~repro.core.timing.analyzer.TimingResult`
the same way (see experiment F4).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...tech import Transition
from ...units import format_value
from .analyzer import Arrival, Event, TimingResult


def format_critical_path(result: TimingResult, node: str,
                         transition: Transition) -> str:
    """Stage-by-stage rendering of the critical path to one event."""
    chain = result.critical_path(node, transition)
    lines = [
        f"critical path to {Event(result.network.node(node).name, transition)}"
        f"  (model: {result.model_name})",
        f"{'event':>18s} {'arrival':>12s} {'stage delay':>12s} "
        f"{'slope':>10s}  via",
    ]
    for event, arrival in chain:
        if arrival.is_primary:
            via = "primary input"
            stage_delay = "-"
        else:
            mechanism = arrival.trigger.mechanism if arrival.trigger else "?"
            source = arrival.path.source if arrival.path else "?"
            via = f"{mechanism}-trigger, path from {source}"
            stage_delay = format_value(arrival.stage_delay.delay, "s")
        lines.append(
            f"{str(event):>18s} {format_value(arrival.time, 's'):>12s} "
            f"{stage_delay:>12s} {format_value(arrival.slope, 's'):>10s}  {via}"
        )
    total = chain[-1][1].time - chain[0][1].time
    lines.append(f"path delay: {format_value(total, 's')}")
    return "\n".join(lines)


def worst_events(result: TimingResult,
                 nodes: Optional[List[str]] = None,
                 count: Optional[int] = None
                 ) -> List[Tuple[Event, Arrival]]:
    """Computed events ranked latest-first, optionally node-filtered.

    The ranking behind :func:`format_worst_paths` and the batch sweep
    reports (:mod:`repro.batch.report`).
    """
    items: List[Tuple[Event, Arrival]] = list(result.arrivals.items())
    if nodes is not None:
        wanted = {result.network.node(n).name for n in nodes}
        items = [(e, a) for e, a in items if e.node in wanted]
    items.sort(key=lambda item: item[1].time, reverse=True)
    return items if count is None else items[:count]


def format_worst_paths(result: TimingResult,
                       nodes: Optional[List[str]] = None,
                       count: int = 5) -> str:
    """The *count* latest events with their arrival times (ranked list)."""
    lines = [f"worst arrivals (model: {result.model_name})"]
    for event, arrival in worst_events(result, nodes, count):
        origin = "input" if arrival.is_primary else str(arrival.cause)
        lines.append(
            f"  {str(event):>14s}  {format_value(arrival.time, 's'):>12s}"
            f"  slope {format_value(arrival.slope, 's'):>10s}  from {origin}"
        )
    return "\n".join(lines)


def arrival_table(result: TimingResult,
                  nodes: Optional[List[str]] = None) -> str:
    """All computed arrivals as an aligned table (rise and fall columns)."""
    names = sorted({event.node for event in result.arrivals})
    if nodes is not None:
        wanted = {result.network.node(n).name for n in nodes}
        names = [n for n in names if n in wanted]
    lines = [f"{'node':>16s} {'rise':>12s} {'fall':>12s}"]
    for name in names:
        cells = []
        for transition in (Transition.RISE, Transition.FALL):
            if result.has_arrival(name, transition):
                cells.append(format_value(
                    result.arrival(name, transition).time, "s"))
            else:
                cells.append("-")
        lines.append(f"{name:>16s} {cells[0]:>12s} {cells[1]:>12s}")
    return "\n".join(lines)
