"""Stage-level connectivity: which stages a node event can affect.

Stages communicate exclusively through gates (two distinct
channel-connected regions can only share a supply or a driven node), so
the stage graph has an edge S → T whenever an internal node of S gates a
transistor of T.  Driven inputs additionally fan out to every stage they
either gate or touch as a channel boundary (pass chains).

The graph also exposes a topological *levelization*: ``level(stage)`` is
the length of the longest predecessor chain feeding the stage.  The
analyzer's priority worklist pops stages in level order, which on
feed-forward logic means every stage is visited after all of its inputs
have settled — the classic levelized discipline that makes worst-case
(longest-path) propagation converge in one pass.  Stages on feedback
cycles cannot be levelized; they are assigned a level after every acyclic
stage and the analyzer's fixpoint iteration handles them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from ...netlist import Network
from ...netlist.stages import Stage, StageMap


@dataclass
class StageGraph:
    """Sensitivity, successor, and level maps over a network's stages."""

    stage_map: StageMap
    #: node name -> stages that must be re-evaluated when the node changes
    sensitivity: Dict[str, List[Stage]] = field(default_factory=dict)
    #: stage index -> successor stages, built once (stages are static)
    _successors: Dict[int, List[Stage]] = field(default_factory=dict)
    _levels: Optional[Dict[int, int]] = None
    #: node name -> forward closure of stage indices (dirty-cone memo)
    _cones: Dict[str, FrozenSet[int]] = field(default_factory=dict)

    @classmethod
    def build(cls, network: Network) -> "StageGraph":
        stage_map = StageMap.build(network)
        sensitivity: Dict[str, List[Stage]] = {}
        for stage in stage_map.stages:
            for node in stage.gate_inputs | stage.boundary_nodes:
                sensitivity.setdefault(node, []).append(stage)
        return cls(stage_map=stage_map, sensitivity=sensitivity)

    @property
    def stages(self) -> List[Stage]:
        return self.stage_map.stages

    def affected_stages(self, node: str) -> List[Stage]:
        return list(self.sensitivity.get(node, ()))

    def successors(self, stage: Stage) -> List[Stage]:
        """Stages fed by this stage's internal nodes (cached)."""
        cached = self._successors.get(stage.index)
        if cached is None:
            seen = set()
            cached = []
            for node in stage.internal_nodes:
                for successor in self.sensitivity.get(node, ()):
                    if successor.index not in seen:
                        seen.add(successor.index)
                        cached.append(successor)
            self._successors[stage.index] = cached
        return list(cached)

    # -- dirty cones ---------------------------------------------------

    def node_cone(self, node: str) -> FrozenSet[int]:
        """Forward closure of stages an event on *node* can reach.

        BFS from the node's sensitivity list through :meth:`successors`
        (internal nodes feed successor stages), memoized per node — a
        delta sweep asks for the same few changed-input cones over and
        over, so after the first vector every cone is a dict lookup.
        """
        cached = self._cones.get(node)
        if cached is None:
            seen = {stage.index for stage in self.sensitivity.get(node, ())}
            queue = deque(sorted(seen))
            while queue:
                index = queue.popleft()
                for successor in self.successors(self.stages[index]):
                    if successor.index not in seen:
                        seen.add(successor.index)
                        queue.append(successor.index)
            cached = self._cones[node] = frozenset(seen)
        return cached

    def dirty_cone(self, nodes: Iterable[str]) -> FrozenSet[int]:
        """Stages whose evaluation can depend on any of *nodes* — the set
        a delta re-analysis must re-evaluate; everything else provably
        keeps its committed arrivals (no trigger of a stage outside the
        cone can have changed)."""
        cone: FrozenSet[int] = frozenset()
        for node in nodes:
            cone |= self.node_cone(node)
        return cone

    # -- levelization --------------------------------------------------

    def levels(self) -> Dict[int, int]:
        """Longest-predecessor-chain level per stage index.

        Kahn's algorithm over the stage graph (self-edges ignored); any
        stage left over sits on a feedback cycle and is assigned one level
        past the deepest acyclic stage, preserving a deterministic order.
        """
        if self._levels is not None:
            return self._levels
        indegree: Dict[int, int] = {s.index: 0 for s in self.stages}
        for stage in self.stages:
            for successor in self.successors(stage):
                if successor.index != stage.index:
                    indegree[successor.index] += 1
        tentative: Dict[int, int] = {s.index: 0 for s in self.stages}
        level: Dict[int, int] = {}
        ready = deque(sorted(i for i, d in indegree.items() if d == 0))
        for index in ready:
            level[index] = 0
        while ready:
            index = ready.popleft()
            for successor in self.successors(self.stages[index]):
                succ = successor.index
                if succ == index or succ in level:
                    continue
                tentative[succ] = max(tentative[succ], level[index] + 1)
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    level[succ] = tentative[succ]
                    ready.append(succ)
        if len(level) < len(indegree):
            # Feedback cycles (and everything downstream of them): one
            # level past the deepest acyclic stage, fixpoint handles them.
            overflow = 1 + max(level.values(), default=0)
            for index in sorted(indegree):
                level.setdefault(index, overflow)
        self._levels = level
        return level

    def level(self, stage: Stage) -> int:
        return self.levels()[stage.index]

    def has_feedback(self) -> bool:
        """True when the stage graph contains a cycle (latches, flip-flops,
        oscillators) — the analyzer then needs its iteration cap.

        Iterative three-color DFS (an explicit stack; deep feed-forward
        chains must not hit the Python recursion limit)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        for start in self.stages:
            if color.get(start.index, WHITE) != WHITE:
                continue
            stack = [(start, iter(self.successors(start)))]
            color[start.index] = GRAY
            while stack:
                stage, children = stack[-1]
                descended = False
                for successor in children:
                    state = color.get(successor.index, WHITE)
                    if state == GRAY:
                        return True
                    if state == WHITE:
                        color[successor.index] = GRAY
                        stack.append(
                            (successor, iter(self.successors(successor))))
                        descended = True
                        break
                if not descended:
                    color[stage.index] = BLACK
                    stack.pop()
        return False
