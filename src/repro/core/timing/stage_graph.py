"""Stage-level connectivity: which stages a node event can affect.

Stages communicate exclusively through gates (two distinct
channel-connected regions can only share a supply or a driven node), so
the stage graph has an edge S → T whenever an internal node of S gates a
transistor of T.  Driven inputs additionally fan out to every stage they
either gate or touch as a channel boundary (pass chains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ...netlist import Network
from ...netlist.stages import Stage, StageMap


@dataclass
class StageGraph:
    """Sensitivity and successor maps over a network's stages."""

    stage_map: StageMap
    #: node name -> stages that must be re-evaluated when the node changes
    sensitivity: Dict[str, List[Stage]] = field(default_factory=dict)

    @classmethod
    def build(cls, network: Network) -> "StageGraph":
        stage_map = StageMap.build(network)
        sensitivity: Dict[str, List[Stage]] = {}
        for stage in stage_map.stages:
            for node in stage.gate_inputs | stage.boundary_nodes:
                sensitivity.setdefault(node, []).append(stage)
        return cls(stage_map=stage_map, sensitivity=sensitivity)

    @property
    def stages(self) -> List[Stage]:
        return self.stage_map.stages

    def affected_stages(self, node: str) -> List[Stage]:
        return list(self.sensitivity.get(node, ()))

    def successors(self, stage: Stage) -> List[Stage]:
        """Stages fed by this stage's internal nodes."""
        seen: Set[int] = set()
        out: List[Stage] = []
        for node in stage.internal_nodes:
            for successor in self.sensitivity.get(node, ()):
                if successor.index not in seen:
                    seen.add(successor.index)
                    out.append(successor)
        return out

    def has_feedback(self) -> bool:
        """True when the stage graph contains a cycle (latches, flip-flops,
        oscillators) — the analyzer then needs its iteration cap."""
        color: Dict[int, int] = {}

        def visit(stage: Stage) -> bool:
            color[stage.index] = 1
            for successor in self.successors(stage):
                state = color.get(successor.index, 0)
                if state == 1:
                    return True
                if state == 0 and visit(successor):
                    return True
            color[stage.index] = 2
            return False

        return any(
            visit(stage) for stage in self.stages
            if color.get(stage.index, 0) == 0
        )
