"""Structural sharing of per-stage timing derivations.

A gate-level circuit is built from a handful of cell shapes repeated
hundreds of times: every full adder of a 32-bit ripple-carry adder has
the same transistors in the same topology with the same geometry, only
the node names differ.  The timing engine's expensive first-visit work —
path enumeration, trigger derivation, RC-tree template compilation — is
a pure function of that *structure* (plus the sensitization states and
node capacitances), so doing it once per **distinct** structure and
instantiating the results for every further stage by name substitution
is exact, not an approximation.

:func:`stage_signature` computes a canonical, hashable fingerprint of
one stage: devices are scanned in netlist insertion order (which the
path enumerator's DFS order also follows), nodes are renamed to small
integers at first appearance, and every numeric fact the enumeration or
tree construction reads is folded in — device kind/geometry, resistor
values, rail identity, internal/boundary membership, external driven-
ness, the per-node sensitization state, and the effective capacitance of
internal nodes.  Two stages with equal signatures are therefore
indistinguishable to :mod:`repro.core.timing.paths` up to the node
renaming, and their derived resistance/capacitance values are bit-equal
(same technology lookups on same geometry).

The analyzer keeps one *representative* stage per signature; every other
stage maps its results through :func:`translate_paths` (and
:meth:`~repro.rctree.TreeTemplate.translated` for compiled templates),
which only constructs objects — no graph walks, no kernel runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ...netlist import GND, VDD, Network
from ...netlist.stages import Stage
from ...switchlevel import Logic
from ...tech import DeviceKind
from .paths import (
    Element,
    PathElement,
    SensitizedPath,
    StateMap,
    Trigger,
    _state,
    effective_node_cap,
)

#: Sentinel canonical ids for the rails (never clash with enumerated ids).
_VDD_ID = -2
_GND_ID = -3

_KIND_CODES: Dict[DeviceKind, int] = {k: i for i, k in enumerate(DeviceKind)}
_LOGIC_CODES: Dict[Logic, int] = {s: i for i, s in enumerate(Logic)}

#: A stage's canonical fingerprint (opaque, hashable).
Signature = Tuple


def stage_signature(network: Network, stage: Stage,
                    states: Optional[StateMap] = None,
                    cap_cache: Optional[Dict[str, float]] = None
                    ) -> Tuple[Signature, Tuple[str, ...]]:
    """Canonical fingerprint of one stage, plus its node names in
    canonical-id order (the substitution alphabet for translation).

    Equal signatures guarantee the stages are isomorphic under the
    returned name correspondence *and* numerically identical in every
    quantity the timing derivations read.
    """
    ids: Dict[str, int] = {}

    def nid(node: str) -> int:
        if node == VDD:
            return _VDD_ID
        if node == GND:
            return _GND_ID
        got = ids.get(node)
        if got is None:
            got = ids[node] = len(ids)
        return got

    devices = tuple(
        (_KIND_CODES[d.kind], d.width, d.length,
         nid(d.gate), nid(d.source), nid(d.drain))
        for d in stage.transistors
    )
    resistors = tuple(
        (r.resistance, nid(r.node_a), nid(r.node_b))
        for r in stage.resistors
    )

    internal = stage.internal_nodes
    facts: List[Tuple[bool, bool, int, float]] = []
    for node in ids:  # dict preserves insertion order == id order
        is_internal = node in internal
        if not is_internal:
            cap = 0.0
        elif cap_cache is None:
            cap = effective_node_cap(network, node)
        else:
            cap = cap_cache.get(node)
            if cap is None:
                cap = cap_cache[node] = effective_node_cap(network, node)
        facts.append((
            is_internal,
            network.node(node).is_driven_externally,
            _LOGIC_CODES[_state(states, node)],
            cap,
        ))

    return (devices, resistors, tuple(facts)), tuple(ids)


def build_maps(rep_names: Tuple[str, ...], names: Tuple[str, ...]
               ) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Forward (representative -> stage) and inverse name substitutions."""
    return dict(zip(rep_names, names)), dict(zip(names, rep_names))


def element_map(rep_stage: Stage, stage: Stage) -> Dict[str, Element]:
    """Representative element name -> this stage's corresponding element
    (devices correspond by netlist insertion position)."""
    emap: Dict[str, Element] = {}
    for a, b in zip(rep_stage.transistors, stage.transistors):
        emap[a.name] = b
    for a, b in zip(rep_stage.resistors, stage.resistors):
        emap[a.name] = b
    return emap


def translate_paths(paths: List[SensitizedPath],
                    name_map: Mapping[str, str],
                    elements: Mapping[str, Element],
                    stage_index: int) -> List[SensitizedPath]:
    """Instantiate a representative stage's enumerated paths for an
    isomorphic stage: node names substituted, elements replaced by the
    stage's own devices, enumeration order preserved (it carries the
    deterministic tie-break rank)."""
    out: List[SensitizedPath] = []
    for path in paths:
        hops = tuple(
            PathElement(
                element=elements[hop.element.name],
                from_node=name_map.get(hop.from_node, hop.from_node),
                to_node=name_map.get(hop.to_node, hop.to_node),
            )
            for hop in path.elements
        )
        triggers = tuple(
            Trigger(
                input_node=name_map.get(t.input_node, t.input_node),
                input_transition=t.input_transition,
                mechanism=t.mechanism,
                device_kind=t.device_kind,
            )
            for t in path.triggers
        )
        out.append(SensitizedPath(
            stage_index=stage_index,
            source=name_map.get(path.source, path.source),
            target=name_map.get(path.target, path.target),
            transition=path.transition,
            elements=hops,
            triggers=triggers,
        ))
    return out
