"""Stage path enumeration and sensitization.

For one stage and one desired output transition, this module finds every
*resistive path* that can produce the transition — a walk from a qualified
source (the appropriate rail, or a driven input node) through
possibly-conducting channels to the target — and every *trigger* that can
fire each path:

* **on-trigger** — the gate of a path device switches the device on
  (a rising gate for n-channel, falling for p-channel);
* **off-trigger** — the gate of an *opposing* device (one that was holding
  the node at the old level) switches it off, releasing the node to the
  path (this is how an nMOS output ever rises: the pulldown shuts off and
  the always-on depletion load wins);
* **through-trigger** — the path's source is a driven input whose own
  transition propagates through already-conducting devices (pass chains).

Sensitization consults a node-state map (usually from the switch-level
simulator); unknown (X) states are treated permissively, which reproduces
Crystal's pessimistic default.

The module also converts a (path, trigger) pair into the
:class:`~repro.core.models.base.StageRequest` the delay models consume,
building the RC tree of the path plus its conducting side branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ...errors import TimingError
from ...netlist import GND, VDD, Network
from ...netlist.stages import Stage
from ...netlist.transistor import Resistor, Transistor
from ...rctree import RCTree, TreeTemplate
from ...switchlevel import Logic
from ...tech import DeviceKind, Technology, Transition
from ..models.base import StageRequest

#: Safety valve against combinatorial path blowup inside one stage.
MAX_PATHS_PER_NODE = 512

Element = Union[Transistor, Resistor]
StateMap = Mapping[str, Logic]

#: Small-integer codes for the enums that land in hot memo keys.  Python
#: enums hash through a Python-level ``__hash__``, so key tuples carrying
#: them pay an interpreter call per dict operation; the analyzer's
#: delay-memo keys use these C-hashable ints instead (precomputed once at
#: construction, see :class:`Trigger` / :class:`SensitizedPath`).
_TRANSITION_CODES: Dict[Transition, int] = {
    t: i for i, t in enumerate(Transition)
}
_KIND_CODES: Dict[DeviceKind, int] = {k: i for i, k in enumerate(DeviceKind)}


@dataclass(frozen=True)
class PathElement:
    """One channel/resistor hop, oriented from source toward target."""

    element: Element
    from_node: str
    to_node: str

    @property
    def is_transistor(self) -> bool:
        return isinstance(self.element, Transistor)


@dataclass(frozen=True)
class Trigger:
    """An input event that can fire a path."""

    input_node: str
    input_transition: Transition
    mechanism: str  # "on" | "off" | "through"
    device_kind: DeviceKind  # selects the slope table

    def __post_init__(self) -> None:
        # Precomputed C-hashable stand-in for ``device_kind`` in memo keys.
        object.__setattr__(self, "kind_code", _KIND_CODES[self.device_kind])


@dataclass(frozen=True)
class SensitizedPath:
    """A resistive path with the triggers that can fire it."""

    stage_index: int
    source: str
    target: str
    transition: Transition
    elements: Tuple[PathElement, ...]
    triggers: Tuple[Trigger, ...]

    def __post_init__(self) -> None:
        # Precomputed C-hashable stand-in for ``transition`` in memo keys.
        object.__setattr__(self, "transition_code",
                           _TRANSITION_CODES[self.transition])

    @property
    def nodes(self) -> Tuple[str, ...]:
        names = [self.source]
        names.extend(e.to_node for e in self.elements)
        return tuple(names)

    def describe(self) -> str:
        hops = " - ".join(
            f"{e.element.name}" for e in self.elements
        )
        return (f"{self.source} -[{hops}]-> {self.target} "
                f"({self.transition.value})")


def _state(states: Optional[StateMap], node: str) -> Logic:
    if node == VDD:
        return Logic.ONE
    if node == GND:
        return Logic.ZERO
    if states is None:
        return Logic.X
    return states.get(node, Logic.X)


def _may_conduct(device: Transistor, states: Optional[StateMap]) -> bool:
    """Can the device conduct in the analyzed (post-transition) state?

    *states*, when provided, is the settled state **after** the analyzed
    input event — so a device whose gate is held at the blocking level in
    that state can never be part of a sensitizable path (this is the value
    pruning Crystal performed with user- or simulator-supplied node
    values).  Unknown gates stay permissive.
    """
    if device.kind is DeviceKind.NMOS_DEP:
        return True
    gate = _state(states, device.gate)
    if device.kind is DeviceKind.NMOS_ENH:
        return gate is not Logic.ZERO
    return gate is not Logic.ONE


def _statically_on(device: Transistor, states: Optional[StateMap]) -> bool:
    """Conducts without any further input event."""
    if device.kind is DeviceKind.NMOS_DEP:
        return True
    gate = _state(states, device.gate)
    if device.kind is DeviceKind.NMOS_ENH:
        return gate is not Logic.ZERO  # 1 definitely, X possibly
    return gate is not Logic.ONE


def _turn_on_transition(kind: DeviceKind) -> Transition:
    return Transition.RISE if kind is not DeviceKind.PMOS else Transition.FALL


def _turn_off_transition(kind: DeviceKind) -> Transition:
    return Transition.FALL if kind is not DeviceKind.PMOS else Transition.RISE


def source_qualifies(network: Network, node: str,
                     transition: Transition) -> bool:
    """Can *node* source the given output transition?"""
    if transition is Transition.RISE:
        if node == VDD:
            return True
    else:
        if node == GND:
            return True
    if node in (VDD, GND):
        return False
    return network.node(node).is_driven_externally


class StageCaches:
    """Memoized per-(stage, states) derived structures.

    Everything here is a pure function of the stage's device list and the
    sensitization states, so one instance can be shared by every path
    enumeration and tree/template build of the stage — the analyzer keeps
    one per stage for its lifetime.  One-shot callers simply omit it and
    each call builds what it needs privately.
    """

    __slots__ = ("_pair_index", "_conducting", "_branch", "reach",
                 "edge_resistance", "driven", "bridges", "edge_groups")

    def __init__(self) -> None:
        self._pair_index = None
        self._conducting = None
        self._branch = None
        #: (excluded device name, start node) -> reachable node set
        self.reach: Dict[Tuple[str, str], Set[str]] = {}
        #: (element name, transition) -> parallel-merged resistance
        self.edge_resistance: Dict[Tuple[str, Transition], float] = {}
        #: node name -> is it driven externally (rails excluded)
        self.driven: Dict[str, bool] = {}
        #: (device name, target, transition) -> does turning the device
        #: off release the target (see ``_bridges_opposition``)
        self.bridges: Dict[Tuple[str, str, Transition], bool] = {}
        #: element name -> its parallel-merge element group (the merge
        #: set is fixed per stage, each element spans one node pair)
        self.edge_groups: Dict[str, Tuple[Element, ...]] = {}

    def pair_index(self, stage: Stage, states: Optional[StateMap]
                   ) -> Dict[FrozenSet[str], List[Element]]:
        if self._pair_index is None:
            self._pair_index = _static_pair_index(stage, states)
        return self._pair_index

    def conducting_adjacency(self, stage: Stage, states: Optional[StateMap]
                             ) -> Dict[str, List[Tuple[Element, str]]]:
        if self._conducting is None:
            self._conducting = _conducting_adjacency(stage, states)
        return self._conducting

    def branch_adjacency(self, stage: Stage, states: Optional[StateMap]
                         ) -> Dict[str, List[Tuple[Element, str]]]:
        if self._branch is None:
            self._branch = _branch_adjacency(stage, states)
        return self._branch


def enumerate_paths(network: Network, stage: Stage, target: str,
                    transition: Transition,
                    states: Optional[StateMap] = None,
                    caches: Optional[StageCaches] = None
                    ) -> List[SensitizedPath]:
    """All sensitizable (path, triggers) records for one output transition."""
    if target not in stage.internal_nodes:
        raise TimingError(
            f"node {target!r} is not internal to stage {stage.index}"
        )

    if caches is None:
        caches = StageCaches()
    adjacency = caches.conducting_adjacency(stage, states)
    driven_cache = caches.driven

    def qualifies(node: str) -> bool:
        # source_qualifies with the externally-driven lookup memoized
        # (it is transition-independent for non-rail nodes).
        if node == VDD:
            return transition is Transition.RISE
        if node == GND:
            return transition is not Transition.RISE
        hit = driven_cache.get(node)
        if hit is None:
            hit = driven_cache[node] = \
                network.node(node).is_driven_externally
        return hit

    raw_paths: List[Tuple[str, Tuple[PathElement, ...]]] = []

    def dfs(node: str, visited: Set[str],
            trail: List[PathElement]) -> None:
        if len(raw_paths) >= MAX_PATHS_PER_NODE:
            return
        for element, neighbor in adjacency.get(node, ()):  # walk backwards
            if neighbor in visited:
                continue
            hop = PathElement(element=element, from_node=neighbor,
                              to_node=node)
            if qualifies(neighbor):
                # Reached a source: trail runs target->source, so reverse
                # it to list hops from the source toward the target.
                path = tuple(reversed(trail + [hop]))
                raw_paths.append((neighbor, path))
                continue
            if neighbor not in stage.internal_nodes:
                continue  # a boundary node of the wrong polarity
            dfs(neighbor, visited | {neighbor}, trail + [hop])

    dfs(target, {target}, [])

    results: List[SensitizedPath] = []
    for source, elements in raw_paths:
        # Reorder hops from source to target (dfs built them backwards).
        triggers = _triggers_for(network, stage, source, elements,
                                 transition, states, adjacency, caches)
        if not triggers:
            continue
        results.append(SensitizedPath(
            stage_index=stage.index,
            source=source,
            target=target,
            transition=transition,
            elements=elements,
            triggers=tuple(triggers),
        ))
    return results


def _conducting_adjacency(stage: Stage, states: Optional[StateMap]
                          ) -> Dict[str, List[Tuple[Element, str]]]:
    """Node -> [(element, neighbor)] over possibly-conducting elements,
    built once per (stage, states) traversal instead of rescanning the
    stage's device list for every visited node."""
    adjacency: Dict[str, List[Tuple[Element, str]]] = {}

    def connect(element: Element, a: str, b: str) -> None:
        adjacency.setdefault(a, []).append((element, b))
        adjacency.setdefault(b, []).append((element, a))

    for device in stage.transistors:
        if _may_conduct(device, states):
            connect(device, device.source, device.drain)
    for res in stage.resistors:
        connect(res, res.node_a, res.node_b)
    return adjacency


def _triggers_for(network: Network, stage: Stage, source: str,
                  elements: Sequence[PathElement], transition: Transition,
                  states: Optional[StateMap],
                  adjacency: Dict[str, List[Tuple[Element, str]]],
                  caches: StageCaches) -> List[Trigger]:
    triggers: Dict[Tuple[str, Transition], Trigger] = {}

    path_devices = [e.element for e in elements if e.is_transistor]
    first_kind = (path_devices[0].kind if path_devices
                  else DeviceKind.NMOS_ENH)

    # on-triggers: a path device's gate turning it on.
    for hop in elements:
        if not hop.is_transistor:
            continue
        device = hop.element
        if device.kind is DeviceKind.NMOS_DEP:
            continue  # effectively always on
        gate = device.gate
        if gate in (VDD, GND):
            continue
        event = (gate, _turn_on_transition(device.kind))
        triggers.setdefault(event, Trigger(
            input_node=gate,
            input_transition=event[1],
            mechanism="on",
            device_kind=device.kind,
        ))

    path_statically_on = all(
        (not hop.is_transistor) or _statically_on(hop.element, states)
        for hop in elements
    )

    # through-trigger: the source itself switching, propagated through an
    # already-on chain.
    if source not in (VDD, GND) and path_statically_on:
        event = (source, transition)
        triggers.setdefault(event, Trigger(
            input_node=source,
            input_transition=transition,
            mechanism="through",
            device_kind=first_kind,
        ))

    # off-triggers: an opposing device releasing the node.  Only relevant
    # when the path itself conducts without further events.
    if path_statically_on:
        path_element_names = {e.element.name for e in elements}
        bridges_cache = caches.bridges
        target = elements[-1].to_node if elements else source
        for device in stage.transistors:
            if device.name in path_element_names:
                continue
            if device.kind is DeviceKind.NMOS_DEP:
                continue
            gate = device.gate
            if gate in (VDD, GND):
                continue
            # With known states, the opposing device must actually end up
            # OFF after the event; a gate settled at the conducting level
            # never released the node.
            gate_state = _state(states, gate)
            conducting_level = (Logic.ONE if device.kind is DeviceKind.NMOS_ENH
                                else Logic.ZERO)
            if gate_state is conducting_level:
                continue
            # A genuine opposing device bridges the target to a source of
            # the *opposite* level: one channel terminal must reach the
            # target and the other an opposing source, both without going
            # through the device itself.  (A pass device into a dead-end
            # storage node fails this and is correctly ignored.)  The
            # answer depends only on (device, target, transition), so it
            # is shared by every path of the stage ending at the target.
            bridge_key = (device.name, target, transition)
            bridges = bridges_cache.get(bridge_key)
            if bridges is None:
                bridges = bridges_cache[bridge_key] = _bridges_opposition(
                    network, stage, device, target, transition, adjacency,
                    caches)
            if not bridges:
                continue
            event = (gate, _turn_off_transition(device.kind))
            triggers.setdefault(event, Trigger(
                input_node=gate,
                input_transition=event[1],
                mechanism="off",
                device_kind=first_kind,
            ))
    return list(triggers.values())


def _reachable_without(stage: Stage, start: str, excluded: Transistor,
                       adjacency: Dict[str, List[Tuple[Element, str]]],
                       reach_cache: Dict[Tuple[str, str], Set[str]]
                       ) -> Set[str]:
    """Stage nodes (plus touched boundaries) reachable from *start*
    through possibly-conducting elements, never crossing *excluded*."""
    key = (excluded.name, start)
    cached = reach_cache.get(key)
    if cached is not None:
        return cached
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for element, other in adjacency.get(node, ()):
            if element.name == excluded.name:
                continue
            if other not in seen:
                seen.add(other)
                if other in stage.internal_nodes:
                    frontier.append(other)
    reach_cache[key] = seen
    return seen


def _bridges_opposition(network: Network, stage: Stage, device: Transistor,
                        target: str, transition: Transition,
                        adjacency: Dict[str, List[Tuple[Element, str]]],
                        caches: StageCaches) -> bool:
    """Does turning *device* off release *target* from the opposite level?

    True when one channel terminal reaches the target and the other
    reaches a source of the opposite polarity — each without crossing the
    device itself."""
    opposite = transition.opposite
    want_vdd = opposite is Transition.RISE
    reach_cache = caches.reach
    driven_cache = caches.driven
    for near, far in (device.channel, device.channel[::-1]):
        near_reach = _reachable_without(stage, near, device, adjacency,
                                        reach_cache)
        if target not in near_reach:
            continue
        far_reach = _reachable_without(stage, far, device, adjacency,
                                       reach_cache)
        for node in far_reach:
            if node == VDD:
                if want_vdd:
                    return True
                continue
            if node == GND:
                if not want_vdd:
                    return True
                continue
            hit = driven_cache.get(node)
            if hit is None:
                hit = driven_cache[node] = \
                    network.node(node).is_driven_externally
            if hit:
                return True
    return False


# ---------------------------------------------------------------------------
# RC-tree construction
# ---------------------------------------------------------------------------

def effective_node_cap(network: Network, node: str) -> float:
    """Grounded + floating capacitance lumped onto a node for delay
    modelling (floating caps are approximated as grounded — exact handling
    is the analog simulator's job)."""
    total = network.node_capacitance(node)
    for cap in network.capacitors_touching(node):
        total += cap.capacitance
    return total


def _element_resistance(tech: Technology, element: Element,
                        transition: Transition) -> float:
    if isinstance(element, Resistor):
        return element.resistance
    return tech.resistance(element.kind, transition, element.width,
                           element.length)


def _static_pair_index(stage: Stage, states: Optional[StateMap]
                       ) -> Dict[FrozenSet[str], List[Element]]:
    """Channel-node pair -> statically-conducting elements across it
    (transistors that conduct without further events, plus resistors)."""
    index: Dict[FrozenSet[str], List[Element]] = {}
    for device in stage.transistors:
        if _statically_on(device, states):
            index.setdefault(frozenset(device.channel), []).append(device)
    for res in stage.resistors:
        index.setdefault(frozenset((res.node_a, res.node_b)),
                         []).append(res)
    return index


def _merged_edge_resistance(network: Network, element: Element,
                            a: str, b: str, transition: Transition,
                            pair_index: Dict[FrozenSet[str], List[Element]],
                            cache: Optional[Dict[Tuple[str, Transition],
                                                 float]] = None) -> float:
    """Resistance of the hop *element* between nodes a and b, merged in
    parallel with every *other* element across the same node pair that
    conducts in the analyzed state (a CMOS transmission gate is two such
    devices; Crystal merges them the same way).  *cache* memoizes by
    (element name, transition) — each element spans one node pair, so the
    merge set (and therefore the value) is fixed per stage."""
    name = getattr(element, "name", None)
    if cache is not None:
        key = (name, transition)
        hit = cache.get(key)
        if hit is not None:
            return hit
    tech = network.tech
    conductance = 1.0 / _element_resistance(tech, element, transition)
    for other in pair_index.get(frozenset((a, b)), ()):
        if other.name == name:
            continue
        conductance += 1.0 / _element_resistance(tech, other, transition)
    resistance = 1.0 / conductance
    if cache is not None:
        cache[key] = resistance
    return resistance


@dataclass
class TreeStructure:
    """The flattened output of one tree traversal, consumed by both the
    dict-tree builder and the template compiler.

    Arrays are node-parallel, root first in insertion order (parents
    precede children).  ``elements[i]`` is the parallel-merged element
    group producing ``r[i]`` — the template's re-stamping source.
    """

    names: List[str]
    parent: List[int]
    r: List[float]
    c: List[float]
    cap_mask: List[bool]
    elements: List[Tuple[Element, ...]]


def _edge_group(element: Element, a: str, b: str,
                pair_index: Dict[FrozenSet[str], List[Element]]
                ) -> Tuple[Element, ...]:
    """The element plus every other conductor across the same node pair,
    in :func:`_merged_edge_resistance`'s merge order."""
    name = getattr(element, "name", None)
    others = tuple(other for other in pair_index.get(frozenset((a, b)), ())
                   if other.name != name)
    return (element,) + others


def _branch_adjacency(stage: Stage, states: Optional[StateMap]
                      ) -> Dict[str, List[Tuple[Element, str]]]:
    """Node -> [(element, neighbor)] over *statically* conducting elements
    — what the side-branch BFS of a tree build walks."""
    adjacency: Dict[str, List[Tuple[Element, str]]] = {}

    def connect(element: Element, a: str, b: str) -> None:
        adjacency.setdefault(a, []).append((element, b))
        adjacency.setdefault(b, []).append((element, a))

    for device in stage.transistors:
        if _statically_on(device, states):
            connect(device, device.source, device.drain)
    for res in stage.resistors:
        connect(res, res.node_a, res.node_b)
    return adjacency


def tree_structure(network: Network, stage: Stage, path: SensitizedPath,
                   states: Optional[StateMap] = None,
                   include_branches: bool = True,
                   caches: Optional[StageCaches] = None,
                   cap_cache: Optional[Dict[str, float]] = None
                   ) -> TreeStructure:
    """One traversal of the path's RC tree: trunk plus conducting side
    branches, flattened to parallel arrays.  *caches* (a
    :class:`StageCaches`) amortizes the per-stage element scans across
    the stage's trees; *cap_cache* memoizes node capacitance lookups
    network-wide."""
    if caches is None:
        caches = StageCaches()
    pair_index = caches.pair_index(stage, states)
    resistance_cache = caches.edge_resistance
    structure = TreeStructure(names=[path.source], parent=[-1], r=[0.0],
                              c=[0.0], cap_mask=[False], elements=[()])
    index = {path.source: 0}

    def node_cap(node: str) -> float:
        if cap_cache is None:
            return effective_node_cap(network, node)
        cap = cap_cache.get(node)
        if cap is None:
            cap = cap_cache[node] = effective_node_cap(network, node)
        return cap

    group_cache = caches.edge_groups

    def add(parent_name: str, node: str, element: Element) -> None:
        structure.names.append(node)
        structure.parent.append(index[parent_name])
        index[node] = len(structure.names) - 1
        structure.r.append(_merged_edge_resistance(
            network, element, parent_name, node, path.transition,
            pair_index, resistance_cache))
        group = group_cache.get(element.name)
        if group is None:
            group = group_cache[element.name] = _edge_group(
                element, parent_name, node, pair_index)
        structure.elements.append(group)
        internal = node in stage.internal_nodes
        structure.cap_mask.append(internal)
        structure.c.append(node_cap(node) if internal else 0.0)

    for hop in path.elements:
        add(hop.from_node, hop.to_node, hop.element)

    if not include_branches:
        return structure

    # Side branches: breadth-first from every path node through devices
    # that conduct (statically), stopping at driven nodes and at nodes
    # already in the tree (re-convergent structures are approximated by
    # first-found attachment).
    static_adjacency = caches.branch_adjacency(stage, states)

    frontier = [n for n in path.nodes if n in stage.internal_nodes]
    seen = set(structure.names)
    while frontier:
        node = frontier.pop()
        for element, neighbor in static_adjacency.get(node, ()):
            if neighbor in seen:
                continue
            if neighbor not in stage.internal_nodes:
                continue  # a rail or driven node terminates the branch
            add(node, neighbor, element)
            seen.add(neighbor)
            frontier.append(neighbor)
    return structure


def build_tree(network: Network, stage: Stage, path: SensitizedPath,
               states: Optional[StateMap] = None,
               include_branches: bool = True,
               caches: Optional[StageCaches] = None,
               cap_cache: Optional[Dict[str, float]] = None) -> RCTree:
    """The RC tree for a path: root at the source, the path as the trunk,
    and conducting side branches (their capacitance loads the path)."""
    structure = tree_structure(network, stage, path, states=states,
                               include_branches=include_branches,
                               caches=caches, cap_cache=cap_cache)
    tree = RCTree(structure.names[0])
    for i in range(1, len(structure.names)):
        tree.add_edge(structure.names[structure.parent[i]],
                      structure.names[i], structure.r[i])
        if structure.cap_mask[i]:
            tree.add_cap(structure.names[i], structure.c[i])
    return tree


def compile_template(network: Network, stage: Stage, path: SensitizedPath,
                     states: Optional[StateMap] = None,
                     include_branches: bool = True,
                     caches: Optional[StageCaches] = None,
                     cap_cache: Optional[Dict[str, float]] = None
                     ) -> TreeTemplate:
    """Compile the path's RC tree straight into a reusable
    :class:`~repro.rctree.TreeTemplate` — same traversal as
    :func:`build_tree`, no intermediate dict tree.  The template keeps
    its element groups, so :func:`restamp_template` can refresh values
    after geometry/technology edits without recompiling."""
    structure = tree_structure(network, stage, path, states=states,
                               include_branches=include_branches,
                               caches=caches, cap_cache=cap_cache)
    return TreeTemplate(structure.names, structure.parent, structure.r,
                        structure.c, transition=path.transition,
                        edge_elements=tuple(structure.elements),
                        cap_mask=structure.cap_mask)


def restamp_template(network: Network, template: TreeTemplate) -> None:
    """Refresh a compiled template's R/C values from the network's
    current geometry and technology tables (preallocated arrays are
    reused; structure is untouched)."""
    tech = network.tech
    transition = template.transition

    def resistance_of(element: Element) -> float:
        return _element_resistance(tech, element, transition)

    def cap_of(node: str) -> float:
        return effective_node_cap(network, node)

    template.restamp(resistance_of, cap_of)


def build_request(network: Network, stage: Stage, path: SensitizedPath,
                  trigger: Trigger, input_slope: float,
                  states: Optional[StateMap] = None) -> StageRequest:
    """Assemble the delay-model question for one (path, trigger) pair."""
    tree = build_tree(network, stage, path, states=states)
    return StageRequest(
        tree=tree,
        target=path.target,
        transition=path.transition,
        trigger_kind=trigger.device_kind,
        input_slope=input_slope,
        tech=network.tech,
    )
