"""Charge-sharing hazard analysis.

Dynamic MOS circuits store state as charge; when a pass device opens
between a storage node and a larger, oppositely-charged capacitance with
no rail on the far side, the stored level is corrupted before anything
can restore it.  Crystal's companion checks flagged exactly this; the
analyzer here reproduces them structurally:

for every gated transistor in a stage, split the stage at that device and
compare the capacitance (and driven-ness) of the two sides.  A side that
is pure storage and faces a bigger undriven opposite-side capacitance is
reported as a :class:`ChargeSharingHazard` with the post-sharing voltage
estimate ``C_node / (C_node + C_other) * Vdd``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ...netlist import Network
from ...netlist.stages import Stage, StageMap
from ...netlist.transistor import Transistor
from ...switchlevel import Logic
from ...tech import DeviceKind
from .paths import StateMap, effective_node_cap


@dataclass(frozen=True)
class ChargeSharingHazard:
    """A storage node whose level is vulnerable when *device* turns on.

    ``surviving_fraction`` estimates the normalized level left on the
    storage side after sharing (1.0 = untouched); ``severity`` is the
    complementary fraction lost.
    """

    storage_node: str
    device: str
    storage_cap: float
    exposed_cap: float
    surviving_fraction: float

    @property
    def severity(self) -> float:
        return 1.0 - self.surviving_fraction

    def __str__(self) -> str:
        return (f"{self.storage_node}: opening {self.device} exposes "
                f"{self.exposed_cap * 1e15:.1f}fF against "
                f"{self.storage_cap * 1e15:.1f}fF stored -> level drops to "
                f"{self.surviving_fraction:.0%}")


def _side_of(network: Network, stage: Stage, start: str,
             blocked: Transistor,
             states: Optional[StateMap]) -> Tuple[Set[str], bool]:
    """Nodes reachable from *start* without crossing *blocked*, through
    devices that are on (or may be on) in *states*; returns (nodes,
    reaches_a_driven_node)."""
    from .paths import _statically_on  # shared conduction semantics

    seen = {start}
    frontier = [start]
    driven = False
    while frontier:
        node = frontier.pop()
        for device in stage.transistors:
            if device.name == blocked.name:
                continue
            if node not in device.channel:
                continue
            if not _statically_on(device, states):
                continue
            other = device.other_channel_terminal(node)
            if other not in stage.internal_nodes:
                driven = True
                continue
            if other not in seen:
                seen.add(other)
                frontier.append(other)
        for res in stage.resistors:
            if node not in (res.node_a, res.node_b):
                continue
            other = res.other_terminal(node)
            if other not in stage.internal_nodes:
                driven = True
            elif other not in seen:
                seen.add(other)
                frontier.append(other)
    return seen, driven


def find_charge_sharing_hazards(
        network: Network,
        states: Optional[Mapping[str, Logic]] = None,
        threshold: float = 0.25) -> List[ChargeSharingHazard]:
    """Scan every stage for charge-sharing exposures.

    *states* (typically a settled switch-level snapshot) determines which
    devices count as conducting on each side; *threshold* is the minimum
    fraction of stored level lost before a hazard is reported.
    """
    stage_map = StageMap.build(network)
    hazards: List[ChargeSharingHazard] = []
    for stage in stage_map.stages:
        for device in stage.transistors:
            if device.kind is DeviceKind.NMOS_DEP:
                continue  # always on: no "opening" event
            a, b = device.channel
            if (a not in stage.internal_nodes
                    or b not in stage.internal_nodes):
                continue  # one side is driven: restoring, not sharing
            side_a, driven_a = _side_of(network, stage, a, device, states)
            side_b, driven_b = _side_of(network, stage, b, device, states)
            if side_a & side_b:
                continue  # a parallel route exists; not an isolation event
            for storage, storage_side, storage_driven, other_side, \
                    other_driven in (
                        (a, side_a, driven_a, side_b, driven_b),
                        (b, side_b, driven_b, side_a, driven_a)):
                if storage_driven or other_driven:
                    continue  # a rail restores the level after sharing
                storage_cap = sum(effective_node_cap(network, n)
                                  for n in storage_side)
                exposed_cap = sum(effective_node_cap(network, n)
                                  for n in other_side)
                total = storage_cap + exposed_cap
                if total <= 0:
                    continue
                surviving = storage_cap / total
                if (1.0 - surviving) < threshold:
                    continue
                hazards.append(ChargeSharingHazard(
                    storage_node=storage,
                    device=device.name,
                    storage_cap=storage_cap,
                    exposed_cap=exposed_cap,
                    surviving_fraction=surviving,
                ))
    # Worst (most charge lost) first; deterministic tie-break.
    hazards.sort(key=lambda h: (-h.severity, h.storage_node, h.device))
    return _deduplicate(hazards)


def _deduplicate(hazards: List[ChargeSharingHazard]
                 ) -> List[ChargeSharingHazard]:
    seen: Dict[Tuple[str, str], ChargeSharingHazard] = {}
    for hazard in hazards:
        key = (hazard.storage_node, hazard.device)
        if key not in seen:
            seen[key] = hazard
    return list(seen.values())


def format_hazard_report(hazards: List[ChargeSharingHazard]) -> str:
    if not hazards:
        return "charge-sharing: no hazards found"
    lines = [f"charge-sharing: {len(hazards)} hazard(s)"]
    lines.extend("  " + str(h) for h in hazards)
    return "\n".join(lines)
