"""The static timing analyzer (the Crystal of the reproduction).

Event-driven worst-case arrival propagation over the stage graph:

1. every primary input contributes an initial event (rise and/or fall at a
   user-given time and slope);
2. whenever a node's arrival for some transition improves (gets *later*),
   every stage the node gates or feeds is re-evaluated;
3. a stage evaluation enumerates the sensitizable paths to each of its
   internal nodes (see :mod:`repro.core.timing.paths`), asks the configured
   delay model for each (path, trigger) whose trigger already has an
   arrival, and keeps the worst;
4. the process reaches a fixpoint because arrivals only ever increase; an
   iteration cap catches genuine timing loops.

The result records, for every (node, transition), the arrival time, the
propagated slope, and the causal link used — enough to reconstruct the
critical path stage by stage (:mod:`repro.core.timing.report`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ...errors import TimingError
from ...netlist import Network
from ...netlist.stages import Stage
from ...rctree import RCTree
from ...switchlevel import Logic
from ...tech import Transition
from ..models import DelayModel, SlopeModel, StageDelay
from .paths import SensitizedPath, StateMap, Trigger, build_tree, enumerate_paths
from ..models.base import StageRequest
from .stage_graph import StageGraph

#: Arrivals closer than this (relative to the largest magnitude seen) are
#: considered equal — stops slope jitter from causing endless revisits.
_RELATIVE_EPSILON = 1e-9


@dataclass(frozen=True)
class Event:
    """A (node, transition) pair — the unit timing is attached to."""

    node: str
    transition: Transition

    def __str__(self) -> str:
        arrow = "↑" if self.transition is Transition.RISE else "↓"
        return f"{self.node}{arrow}"


@dataclass(frozen=True)
class InputSpec:
    """Timing of a primary input.

    ``None`` for an arrival disables that edge (e.g. a clock held low).
    ``slope`` is the full-swing transition time of the input's edges.
    """

    arrival_rise: Optional[float] = 0.0
    arrival_fall: Optional[float] = 0.0
    slope: float = 0.0

    def arrival(self, transition: Transition) -> Optional[float]:
        return (self.arrival_rise if transition is Transition.RISE
                else self.arrival_fall)


@dataclass
class Arrival:
    """Worst-case arrival of one event, with its causal link."""

    time: float
    slope: float
    cause: Optional[Event] = None
    stage_delay: Optional[StageDelay] = None
    path: Optional[SensitizedPath] = None
    trigger: Optional[Trigger] = None

    @property
    def is_primary(self) -> bool:
        return self.cause is None


@dataclass
class TimingResult:
    """Complete analysis output."""

    network: Network
    model_name: str
    arrivals: Dict[Event, Arrival]

    def arrival(self, node: str, transition: Transition) -> Arrival:
        from ...errors import NetlistError
        try:
            name = self.network.node(node).name
        except NetlistError as exc:
            raise TimingError(str(exc)) from exc
        event = Event(name, transition)
        try:
            return self.arrivals[event]
        except KeyError:
            raise TimingError(
                f"no arrival computed for {event} (unreachable from the "
                "driven inputs?)"
            ) from None

    def has_arrival(self, node: str, transition: Transition) -> bool:
        return Event(self.network.node(node).name, transition) in self.arrivals

    def worst(self, nodes: Optional[List[str]] = None) -> Tuple[Event, Arrival]:
        """The latest event over *nodes* (default: every computed event)."""
        candidates = self.arrivals.items()
        if nodes is not None:
            wanted = {self.network.node(n).name for n in nodes}
            candidates = [(e, a) for e, a in candidates if e.node in wanted]
            if not candidates:
                raise TimingError("no arrivals for the requested nodes")
        if not self.arrivals:
            raise TimingError("analysis produced no arrivals")
        return max(candidates, key=lambda item: item[1].time)

    def critical_path(self, node: str,
                      transition: Transition) -> List[Tuple[Event, Arrival]]:
        """The causal chain ending at (node, transition), input first."""
        chain: List[Tuple[Event, Arrival]] = []
        event = Event(self.network.node(node).name, transition)
        guard = 0
        while True:
            arrival = self.arrivals.get(event)
            if arrival is None:
                raise TimingError(f"no arrival for {event}")
            chain.append((event, arrival))
            if arrival.cause is None:
                break
            event = arrival.cause
            guard += 1
            if guard > len(self.arrivals) + 1:
                raise TimingError("cycle in critical-path back-pointers")
        chain.reverse()
        return chain


class TimingAnalyzer:
    """Configure once, analyze many input scenarios.

    Parameters
    ----------
    network:
        The circuit.
    model:
        Delay model (default: the slope model, the paper's recommendation).
    states:
        Optional node → :class:`~repro.switchlevel.Logic` map of the
        settled state *after* the analyzed input event, used for path
        sensitization and event pruning (usually from a
        :class:`~repro.switchlevel.SwitchSimulator`).  ``None`` analyzes
        pessimistically, treating every unknown as possible.
    initial_states:
        Optional map of the state *before* the event.  When both maps are
        given, nodes whose value provably does not change produce no
        events — the single-vector transition pruning Crystal performed
        with simulator-supplied node values.
    """

    #: Re-evaluations of one stage before declaring a timing loop.  Deep
    #: reconvergent circuits legitimately revisit stages as upstream
    #: arrivals improve, so this is generous; genuine loops grow without
    #: bound and still trip it.
    MAX_STAGE_VISITS = 400

    def __init__(self, network: Network, model: Optional[DelayModel] = None,
                 states: Optional[StateMap] = None,
                 initial_states: Optional[StateMap] = None):
        self.network = network
        self.model = model if model is not None else SlopeModel()
        self.states = states
        self.initial_states = initial_states
        self.graph = StageGraph.build(network)
        # Per-(stage, node, transition) path cache and per-path tree cache.
        self._paths: Dict[Tuple[int, str, Transition],
                          List[SensitizedPath]] = {}
        self._trees: Dict[Tuple[int, str, Transition, int], RCTree] = {}

    # ------------------------------------------------------------------

    def analyze(self, inputs: Mapping[str, Union[InputSpec, float]]
                ) -> TimingResult:
        """Propagate arrivals from the given primary-input timing.

        *inputs* maps input node names to :class:`InputSpec` (or a bare
        number, shorthand for "both edges at that time, step slope").
        Every primary input of the network must be covered.
        """
        arrivals: Dict[Event, Arrival] = {}
        normalized = self._normalize_inputs(inputs)
        dirty: List[Stage] = []
        seen_dirty = set()

        def mark(node: str) -> None:
            for stage in self.graph.affected_stages(node):
                if stage.index not in seen_dirty:
                    seen_dirty.add(stage.index)
                    dirty.append(stage)

        for name, spec in normalized.items():
            for transition in Transition:
                time = spec.arrival(transition)
                if time is None:
                    continue
                arrivals[Event(name, transition)] = Arrival(
                    time=time, slope=spec.slope)
            mark(name)

        visits: Dict[int, int] = {}
        while dirty:
            stage = dirty.pop(0)
            seen_dirty.discard(stage.index)
            visits[stage.index] = visits.get(stage.index, 0) + 1
            if visits[stage.index] > self.MAX_STAGE_VISITS:
                nodes = ", ".join(sorted(stage.internal_nodes))
                raise TimingError(f"timing loop through stage [{nodes}]")
            for changed_node in self._evaluate_stage(stage, arrivals):
                mark(changed_node)

        return TimingResult(network=self.network,
                            model_name=self.model.name, arrivals=arrivals)

    # ------------------------------------------------------------------

    def _normalize_inputs(self, inputs: Mapping[str, Union[InputSpec, float]]
                          ) -> Dict[str, InputSpec]:
        normalized: Dict[str, InputSpec] = {}
        for name, spec in inputs.items():
            node = self.network.node(name)
            if node.is_supply:
                raise TimingError(f"cannot time a supply rail {name!r}")
            if not isinstance(spec, InputSpec):
                spec = InputSpec(arrival_rise=float(spec),
                                 arrival_fall=float(spec))
            normalized[node.name] = spec
        missing = [n.name for n in self.network.inputs()
                   if n.name not in normalized]
        if missing:
            raise TimingError(
                "primary inputs without timing: " + ", ".join(sorted(missing))
            )
        return normalized

    def _stage_paths(self, stage: Stage, node: str,
                     transition: Transition) -> List[SensitizedPath]:
        key = (stage.index, node, transition)
        if key not in self._paths:
            self._paths[key] = enumerate_paths(
                self.network, stage, node, transition, self.states)
        return self._paths[key]

    def _tree_for(self, stage: Stage, path: SensitizedPath,
                  order: int) -> RCTree:
        key = (stage.index, path.target, path.transition, order)
        if key not in self._trees:
            self._trees[key] = build_tree(self.network, stage, path,
                                          states=self.states)
        return self._trees[key]

    def _evaluate_stage(self, stage: Stage,
                        arrivals: Dict[Event, Arrival]) -> List[str]:
        """Recompute every internal-node arrival; return changed nodes."""
        changed: List[str] = []
        for node in sorted(stage.internal_nodes):
            for transition in Transition:
                if not self._event_allowed(node, transition):
                    continue
                best = self._best_arrival(stage, node, transition, arrivals)
                if best is None:
                    continue
                event = Event(node, transition)
                current = arrivals.get(event)
                if current is not None and not self._is_later(best, current):
                    continue
                arrivals[event] = best
                if node not in changed:
                    changed.append(node)
        return changed

    def _event_allowed(self, node: str, transition: Transition) -> bool:
        """Can (node, transition) occur at all under the supplied states?

        An event ending at level ``v`` requires the post-transition state
        to be ``v`` (or unknown); with both state maps, a node whose known
        value is unchanged produces no event in a single-vector analysis.
        """
        if self.states is None:
            return True
        post = self.states.get(node, Logic.X)
        final = Logic.ONE if transition is Transition.RISE else Logic.ZERO
        if post is not Logic.X and post is not final:
            return False
        if self.initial_states is not None:
            pre = self.initial_states.get(node, Logic.X)
            if pre is not Logic.X and pre is post:
                return False
        return True

    @staticmethod
    def _is_later(candidate: Arrival, current: Arrival) -> bool:
        scale = max(abs(candidate.time), abs(current.time), 1e-30)
        return candidate.time > current.time + _RELATIVE_EPSILON * scale

    def _best_arrival(self, stage: Stage, node: str, transition: Transition,
                      arrivals: Dict[Event, Arrival]) -> Optional[Arrival]:
        best: Optional[Arrival] = None
        for order, path in enumerate(self._stage_paths(stage, node,
                                                       transition)):
            for trigger in path.triggers:
                event = Event(trigger.input_node, trigger.input_transition)
                upstream = arrivals.get(event)
                if upstream is None:
                    continue
                tree = self._tree_for(stage, path, order)
                request = StageRequest(
                    tree=tree,
                    target=node,
                    transition=transition,
                    trigger_kind=trigger.device_kind,
                    input_slope=max(upstream.slope, 0.0),
                    tech=self.network.tech,
                )
                result = self.model.evaluate(request)
                candidate = Arrival(
                    time=upstream.time + result.delay,
                    slope=result.output_slope,
                    cause=event,
                    stage_delay=result,
                    path=path,
                    trigger=trigger,
                )
                if best is None or candidate.time > best.time:
                    best = candidate
        return best


def analyze(network: Network, inputs: Mapping[str, Union[InputSpec, float]],
            model: Optional[DelayModel] = None,
            states: Optional[StateMap] = None,
            initial_states: Optional[StateMap] = None) -> TimingResult:
    """One-shot convenience wrapper around :class:`TimingAnalyzer`."""
    analyzer = TimingAnalyzer(network, model=model, states=states,
                              initial_states=initial_states)
    return analyzer.analyze(inputs)
