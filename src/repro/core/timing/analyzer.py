"""The static timing analyzer (the Crystal of the reproduction).

Incremental event-driven worst-case arrival propagation over the stage
graph:

1. every primary input contributes an initial event (rise and/or fall at a
   user-given time and slope);
2. whenever a node's arrival for some transition improves (gets *later*),
   the changed event is queued against every stage it triggers, on a
   priority worklist keyed by the arrival time — stages are therefore
   visited roughly in topological/temporal order, which makes most visits
   final on feed-forward logic;
3. a stage visit is **demand-driven**: a per-stage index maps each trigger
   event to the exact (target node, transition, path, trigger) delay
   candidates it can affect, so only the candidates whose upstream event
   actually changed are re-evaluated (the first visit evaluates the stage
   exhaustively to seed the index);
4. delay-model answers are memoized on
   ``(stage, target, transition, path, trigger kind, quantized slope)`` —
   an upstream arrival whose *time* improved but whose *slope* did not
   re-uses the cached stage delay outright;
5. the process reaches a fixpoint because arrivals only ever increase; an
   iteration cap catches genuine timing loops.

The result records, for every (node, transition), the arrival time, the
propagated slope, and the causal link used — enough to reconstruct the
critical path stage by stage (:mod:`repro.core.timing.report`) — plus the
run's :class:`~repro.perf.PerfCounters` (stage visits, model evaluations,
cache hits, worklist traffic).

Ties are broken deterministically: when two candidates arrive within the
relative epsilon of each other, the one with the smaller canonical rank
(path enumeration order, then trigger order) wins, regardless of the order
in which the engine happened to discover them.  This makes the incremental
engine's output bit-identical to a brute-force full re-evaluation
(``incremental=False``), which the regression tests assert.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from ...errors import TimingError
from ...netlist import Network
from ...netlist.stages import Stage
from ...perf import PerfCounters, StageCostModel
from ...rctree import RCTree, TreeTemplate, kernel_available
from ...switchlevel import Logic
from ...tech import Transition
from ...trace.spans import (
    NULL_SCOPE,
    current as _trace_current,
    instant as _trace_instant,
    span as _trace_span,
)
from ..models import DelayModel, SlopeModel, StageDelay
from .paths import (
    SensitizedPath,
    StageCaches,
    StateMap,
    Trigger,
    build_tree,
    compile_template,
    enumerate_paths,
)
from ..models.base import StageRequest
from .stage_graph import StageGraph
from .stage_iso import (
    build_maps,
    element_map,
    stage_signature,
    translate_paths,
)

#: Arrivals closer than this (relative to the largest magnitude seen) are
#: considered equal — stops slope jitter from causing endless revisits.
_RELATIVE_EPSILON = 1e-9

#: Deterministic iteration order of transitions (enum declaration order).
_TRANSITIONS: Tuple[Transition, ...] = tuple(Transition)
_TRANSITION_ORDER: Dict[Transition, int] = {
    t: i for i, t in enumerate(_TRANSITIONS)
}

#: Canonical rank of a primary-input arrival: beats any computed candidate
#: of equal time (a stage never displaces the user's own input timing).
_PRIMARY_RANK: Tuple[int, int] = (-1, -1)


@dataclass(frozen=True)
class Event:
    """A (node, transition) pair — the unit timing is attached to."""

    node: str
    transition: Transition

    def __post_init__(self) -> None:
        # Events key the arrival dicts on every hot engine operation;
        # computing the hash once here avoids re-running the enum's
        # Python-level __hash__ on every lookup.
        object.__setattr__(self, "_hash",
                           hash((self.node, self.transition)))

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # String hashes are salted per process: drop the cached hash so
        # an Event unpickled in a worker recomputes it locally.
        return (self.node, self.transition)

    def __setstate__(self, state) -> None:
        object.__setattr__(self, "node", state[0])
        object.__setattr__(self, "transition", state[1])
        object.__setattr__(self, "_hash", hash((state[0], state[1])))

    def __str__(self) -> str:
        arrow = "↑" if self.transition is Transition.RISE else "↓"
        return f"{self.node}{arrow}"


@dataclass(frozen=True)
class InputSpec:
    """Timing of a primary input.

    ``None`` for an arrival disables that edge (e.g. a clock held low).
    ``slope`` is the full-swing transition time of the input's edges.
    """

    arrival_rise: Optional[float] = 0.0
    arrival_fall: Optional[float] = 0.0
    slope: float = 0.0

    def arrival(self, transition: Transition) -> Optional[float]:
        return (self.arrival_rise if transition is Transition.RISE
                else self.arrival_fall)


@dataclass
class Arrival:
    """Worst-case arrival of one event, with its causal link."""

    time: float
    slope: float
    cause: Optional[Event] = None
    stage_delay: Optional[StageDelay] = None
    path: Optional[SensitizedPath] = None
    trigger: Optional[Trigger] = None

    @property
    def is_primary(self) -> bool:
        return self.cause is None


@dataclass
class TimingResult:
    """Complete analysis output."""

    network: Network
    model_name: str
    arrivals: Dict[Event, Arrival]
    #: per-run observability: stage visits, model evals, cache hits, …
    perf: Optional[PerfCounters] = None

    def arrival(self, node: str, transition: Transition) -> Arrival:
        from ...errors import NetlistError
        try:
            name = self.network.node(node).name
        except NetlistError as exc:
            raise TimingError(str(exc)) from exc
        event = Event(name, transition)
        try:
            return self.arrivals[event]
        except KeyError:
            raise TimingError(
                f"no arrival computed for {event} (unreachable from the "
                "driven inputs?)"
            ) from None

    def has_arrival(self, node: str, transition: Transition) -> bool:
        return Event(self.network.node(node).name, transition) in self.arrivals

    def worst(self, nodes: Optional[List[str]] = None) -> Tuple[Event, Arrival]:
        """The latest event over *nodes* (default: every computed event)."""
        candidates = self.arrivals.items()
        if nodes is not None:
            wanted = {self.network.node(n).name for n in nodes}
            candidates = [(e, a) for e, a in candidates if e.node in wanted]
            if not candidates:
                raise TimingError("no arrivals for the requested nodes")
        if not self.arrivals:
            raise TimingError("analysis produced no arrivals")
        return max(candidates, key=lambda item: item[1].time)

    def critical_path(self, node: str,
                      transition: Transition) -> List[Tuple[Event, Arrival]]:
        """The causal chain ending at (node, transition), input first."""
        chain: List[Tuple[Event, Arrival]] = []
        event = Event(self.network.node(node).name, transition)
        guard = 0
        while True:
            arrival = self.arrivals.get(event)
            if arrival is None:
                raise TimingError(f"no arrival for {event}")
            chain.append((event, arrival))
            if arrival.cause is None:
                break
            event = arrival.cause
            guard += 1
            if guard > len(self.arrivals) + 1:
                raise TimingError("cycle in critical-path back-pointers")
        chain.reverse()
        return chain


class _IndexEntry:
    """One delay candidate a trigger event can affect, in a fixed stage.

    ``order`` is the path's position in the stage's path enumeration and
    ``trigger_pos`` the trigger's position within the path — together the
    candidate's canonical tie-break rank.
    """

    __slots__ = ("node", "transition", "order", "trigger_pos", "path",
                 "trigger")

    def __init__(self, node: str, transition: Transition, order: int,
                 trigger_pos: int, path: SensitizedPath, trigger: Trigger):
        self.node = node
        self.transition = transition
        self.order = order
        self.trigger_pos = trigger_pos
        self.path = path
        self.trigger = trigger


class TimingAnalyzer:
    """Configure once, analyze many input scenarios.

    Parameters
    ----------
    network:
        The circuit.
    model:
        Delay model (default: the slope model, the paper's recommendation).
    states:
        Optional node → :class:`~repro.switchlevel.Logic` map of the
        settled state *after* the analyzed input event, used for path
        sensitization and event pruning (usually from a
        :class:`~repro.switchlevel.SwitchSimulator`).  ``None`` analyzes
        pessimistically, treating every unknown as possible.
    initial_states:
        Optional map of the state *before* the event.  When both maps are
        given, nodes whose value provably does not change produce no
        events — the single-vector transition pruning Crystal performed
        with simulator-supplied node values.
    incremental:
        ``True`` (default) enables demand-driven stage re-evaluation:
        after a stage's first exhaustive visit, only the delay candidates
        whose upstream trigger actually changed are recomputed.  ``False``
        re-evaluates every internal node × transition of a stage on every
        visit — the brute-force reference the regression tests compare
        against.  Both modes share the worklist, the memo cache, and the
        deterministic tie-break, so their outputs are identical.
    slope_quantum:
        Relative quantization applied to input slopes before they key the
        delay-model memo cache (``0.05`` = snap to a 5 % geometric grid).
        The *quantized* slope is also what the model is evaluated with, so
        results stay deterministic regardless of evaluation order.  The
        default ``0.0`` disables quantization — every distinct slope gets
        its own cache line and results are exact.
    kernel:
        ``"numpy"`` (default) compiles each distinct (stage, path, order)
        tree into a reusable :class:`~repro.rctree.TreeTemplate` and
        answers delay-model questions through the vectorized RPH kernel —
        all of a stage's time constants come out of one array pass, and
        repeat candidates are template cache hits instead of dict-tree
        rebuilds.  ``"python"`` keeps the original per-node scalar
        recurrences on dict-based :class:`~repro.rctree.RCTree` objects —
        the differential reference.  Both kernels agree to 1e-9 relative
        (``tests/test_kernel_differential.py``); if numpy is not
        importable the analyzer silently falls back to ``"python"``.

    Caching and invalidation
    ------------------------
    Path enumerations, RC trees, compiled tree templates, the per-stage
    trigger index, and the delay-model memo are all keyed on state that is
    fixed at construction time (network topology, ``states``, the model,
    the technology), so they live for the analyzer's lifetime and are
    shared across ``analyze()`` calls — a second run of the same scenario
    is almost entirely cache hits.  If the network, technology tables, or
    model are mutated in place, call :meth:`invalidate_caches`.
    """

    #: Re-evaluations of one stage before declaring a timing loop.  Deep
    #: reconvergent circuits legitimately revisit stages as upstream
    #: arrivals improve, so this is generous; genuine loops grow without
    #: bound and still trip it.
    MAX_STAGE_VISITS = 400

    def __init__(self, network: Network, model: Optional[DelayModel] = None,
                 states: Optional[StateMap] = None,
                 initial_states: Optional[StateMap] = None,
                 incremental: bool = True,
                 slope_quantum: float = 0.0,
                 kernel: str = "numpy"):
        self.network = network
        self.model = model if model is not None else SlopeModel()
        self.states = states
        self.initial_states = initial_states
        self.incremental = incremental
        if slope_quantum < 0:
            raise TimingError(f"negative slope quantum {slope_quantum!r}")
        self.slope_quantum = float(slope_quantum)
        if kernel not in ("numpy", "python"):
            raise TimingError(
                f"unknown kernel {kernel!r} (expected 'numpy' or 'python')")
        if kernel == "numpy" and not kernel_available():
            kernel = "python"
        self.kernel = kernel
        #: cumulative counters over every ``analyze()`` of this instance
        self.perf = PerfCounters()
        self._run_perf: Optional[PerfCounters] = None
        with self.perf.timer("stage_graph_build"):
            self.graph = StageGraph.build(network)
        # Per-(stage, node, transition) path cache and per-path tree cache.
        self._paths: Dict[Tuple[int, str, Transition],
                          List[SensitizedPath]] = {}
        self._trees: Dict[Tuple[int, str, Transition, int], RCTree] = {}
        # Compiled tree templates, same key as the dict-tree cache; which
        # one a kernel fills is an either/or (``self.kernel``).
        self._templates: Dict[Tuple[int, str, Transition, int],
                              TreeTemplate] = {}
        # Per-stage derived-structure caches (adjacencies, pair index,
        # reachability, merged edge resistances) shared by every path
        # enumeration and tree/template build of the stage.
        self._stage_caches: Dict[int, StageCaches] = {}
        # Structural sharing (repro.core.timing.stage_iso): one
        # representative stage per canonical signature does the real
        # enumeration/compilation; isomorphic stages instantiate its
        # results through a name substitution.  _stage_iso maps
        # stage.index -> (representative stage, name_map, inverse map,
        # element map); the maps are None on the representative itself.
        self._stage_iso: Dict[int, Tuple[Stage, Optional[Dict[str, str]],
                                         Optional[Dict[str, str]],
                                         Optional[Dict]]] = {}
        self._sig_reps: Dict[Tuple, Tuple[Stage, Tuple[str, ...]]] = {}
        # Network-wide node capacitance memo shared across stages.
        self._node_caps: Dict[str, float] = {}
        # Delay-model memo: (stage, node, transition, path order,
        # trigger kind, quantized slope) -> StageDelay.
        self._delay_cache: Dict[Tuple, StageDelay] = {}
        # Per-stage reverse index: trigger event -> candidates it affects.
        self._trigger_index: Dict[int, Dict[Event, List[_IndexEntry]]] = {}
        #: observed delay candidates per stage — the cost model the
        #: parallel chunker balances level fronts with (repro.parallel)
        self.stage_costs = StageCostModel()
        # Delta carryover: the last completed run's (normalized inputs,
        # arrivals, ranks).  analyze_delta() re-uses every arrival whose
        # stage lies outside the changed inputs' dirty cone.  The stored
        # dicts alias the returned TimingResult's — treat results as
        # immutable (mutating result.arrivals corrupts the next delta).
        self._carryover: Optional[Tuple[Dict[str, InputSpec],
                                        Dict[Event, Arrival],
                                        Dict[Event, Tuple[int, int]]]] = None

    # ------------------------------------------------------------------

    def invalidate_caches(self) -> None:
        """Drop every derived cache (paths, RC trees, trigger indexes,
        memoized stage delays) and rebuild the stage graph.  Call after
        mutating the network (device geometry, added loads, added
        devices), the technology tables, or the model in place — a stale
        analyzer silently reuses delays computed for the old circuit."""
        self._paths.clear()
        self._trees.clear()
        self._templates.clear()
        self._stage_caches.clear()
        self._stage_iso.clear()
        self._sig_reps.clear()
        self._node_caps.clear()
        self._delay_cache.clear()
        self._trigger_index.clear()
        self.stage_costs.clear()
        self._carryover = None
        with self.perf.timer("stage_graph_build"):
            self.graph = StageGraph.build(self.network)

    def clear_carryover(self) -> None:
        """Forget the last run's arrivals: the next :meth:`analyze_delta`
        cold-starts.  Cheaper than :meth:`invalidate_caches` — the path/
        template/memo caches survive (they are input-independent)."""
        self._carryover = None

    def reset_run_state(self) -> None:
        """Clear per-run state without touching analyzer-lifetime caches.

        ``analyze()`` resets its own run state on every exit (including
        exceptions), so this is only needed to recover an instance whose
        run state was corrupted externally; it never drops the path/RC/
        memo caches that make warm re-analysis cheap.
        """
        self._run_perf = None

    def _count(self, name: str, amount: int = 1) -> None:
        perf = self._run_perf if self._run_perf is not None else self.perf
        perf.incr(name, amount)

    # ------------------------------------------------------------------

    def analyze(self, inputs: Mapping[str, Union[InputSpec, float]]
                ) -> TimingResult:
        """Propagate arrivals from the given primary-input timing.

        *inputs* maps input node names to :class:`InputSpec` (or a bare
        number, shorthand for "both edges at that time, step slope").
        Every primary input of the network must be covered.
        """
        if self._run_perf is not None:
            raise TimingError(
                "analyze() re-entered: a TimingAnalyzer runs one scenario "
                "at a time (use reset_run_state() to recover an instance "
                "whose previous run was corrupted)"
            )
        perf = PerfCounters()
        self._run_perf = perf
        try:
            # The span shares the run's lifecycle with the perf counters:
            # opened with them, closed (balanced) in this same scope even
            # when the propagation raises.
            with perf.timer("analyze"), \
                    _trace_span("analyze", inputs=len(inputs)) as scope:
                arrivals, ranks, normalized = self._propagate(inputs, perf)
                scope.set(stage_visits=perf.get("stage_visits"),
                          model_evals=perf.get("model_evals"))
        except BaseException:
            # A raised propagation must not leave carryover pointing at a
            # run the caller never saw complete: drop it so the next
            # analyze_delta() provably cold-starts instead of deltaing
            # against state whose provenance is now ambiguous
            # (tests/test_carryover_failure.py locks this down).
            self._carryover = None
            raise
        finally:
            self._run_perf = None
            self.perf.merge(perf)
        self._carryover = (normalized, arrivals, ranks)
        return TimingResult(network=self.network,
                            model_name=self.model.name, arrivals=arrivals,
                            perf=perf)

    def analyze_delta(self, inputs: Mapping[str, Union[InputSpec, float]]
                      ) -> TimingResult:
        """Analyze *inputs* by re-using the previous run's arrivals.

        The input Hamming delta against the last analyzed vector picks
        out the changed primary inputs; every stage outside their dirty
        cone (:meth:`StageGraph.dirty_cone`) provably sees identical
        triggers, so its committed arrivals are carried over verbatim.
        Cone stages have their arrivals dropped and are re-evaluated
        exhaustively in level order — within the cone this *is* a cold
        run, so the result is bit-identical to :meth:`analyze` (the
        delta differential tests lock that equivalence).

        Falls back to a full :meth:`analyze` when there is no carryover
        (first run, after :meth:`clear_carryover` /
        :meth:`invalidate_caches`, or after a run that raised — a failed
        propagation invalidates carryover so the next delta run is
        bit-identical to a cold analysis).  Counters: ``delta_scenarios``,
        ``input_delta``, ``cone_stages``, ``stages_skipped``,
        ``arrivals_reused``.
        """
        if self._carryover is None:
            return self.analyze(inputs)
        if self._run_perf is not None:
            raise TimingError(
                "analyze_delta() re-entered: a TimingAnalyzer runs one "
                "scenario at a time (use reset_run_state() to recover an "
                "instance whose previous run was corrupted)"
            )
        perf = PerfCounters()
        self._run_perf = perf
        try:
            with perf.timer("analyze"), \
                    _trace_span("analyze_delta",
                                inputs=len(inputs)) as scope:
                arrivals, ranks, normalized = self._propagate_delta(inputs,
                                                                    perf)
                scope.set(changed_inputs=perf.get("input_delta"),
                          cone_stages=perf.get("cone_stages"),
                          stages_skipped=perf.get("stages_skipped"))
        except BaseException:
            # Same failure contract as analyze(): _propagate_delta mutates
            # only private copies of the carried-over dicts, so the stale
            # tuple *would* still be consistent — but consistency of the
            # previous fixpoint is an invariant worth enforcing, not
            # assuming.  Invalidate, so the next delta run cold-starts and
            # is trivially bit-identical to a fresh analyze().
            self._carryover = None
            raise
        finally:
            self._run_perf = None
            self.perf.merge(perf)
        self._carryover = (normalized, arrivals, ranks)
        return TimingResult(network=self.network,
                            model_name=self.model.name, arrivals=arrivals,
                            perf=perf)

    def _propagate_delta(self, inputs: Mapping[str, Union[InputSpec, float]],
                         perf: PerfCounters
                         ) -> Tuple[Dict[Event, Arrival],
                                    Dict[Event, Tuple[int, int]],
                                    Dict[str, InputSpec]]:
        prev_inputs, prev_arrivals, prev_ranks = self._carryover
        normalized = self._normalize_inputs(inputs)
        changed = sorted(name for name in normalized
                         if prev_inputs.get(name) != normalized[name])
        perf.incr("delta_scenarios")
        perf.incr("input_delta", len(changed))
        total_stages = len(self.graph.stages)
        if not changed:
            # Identical vector: the previous fixpoint is the answer.
            perf.incr("stages_skipped", total_stages)
            perf.incr("arrivals_reused", len(prev_arrivals))
            return dict(prev_arrivals), dict(prev_ranks), normalized

        cone = self.graph.dirty_cone(changed)
        perf.incr("cone_stages", len(cone))
        perf.incr("stages_skipped", total_stages - len(cone))

        arrivals = dict(prev_arrivals)
        ranks = dict(prev_ranks)
        stages = self.graph.stages
        # Drop everything the cone will recompute: every internal event
        # of a cone stage, and the changed primary inputs' own events.
        for index in cone:
            for node in stages[index].internal_nodes:
                for transition in _TRANSITIONS:
                    event = Event(node, transition)
                    if arrivals.pop(event, None) is not None:
                        ranks.pop(event, None)
        for name in changed:
            for transition in _TRANSITIONS:
                event = Event(name, transition)
                arrivals.pop(event, None)
                ranks.pop(event, None)
        perf.incr("arrivals_reused", len(arrivals))

        # Re-seed the changed primary inputs from their new specs.
        seeds: List[Tuple[Event, float]] = []
        for name in changed:
            spec = normalized[name]
            for transition in _TRANSITIONS:
                time = spec.arrival(transition)
                if time is None:
                    continue
                event = Event(name, transition)
                arrivals[event] = Arrival(time=time, slope=spec.slope)
                ranks[event] = _PRIMARY_RANK
                seeds.append((event, time))
        self._run_worklist(arrivals, ranks, perf, seeds, forced=cone)
        return arrivals, ranks, normalized

    def analyze_many(self,
                     scenarios: Iterable[Mapping[str, Union[InputSpec,
                                                            float]]],
                     delta: bool = False) -> List[TimingResult]:
        """Analyze a batch of input scenarios against this one analyzer.

        Every scenario runs with the same analyzer-lifetime caches (path
        enumerations, RC trees, trigger indexes, the delay-model memo), so
        after the first scenario pays the setup cost the marginal model
        evaluations per scenario approach zero — the sweep amortization
        the ROADMAP's multi-scenario batching item asks for (DESIGN.md
        §5b).  Per-run state is reset between scenarios; each returned
        :class:`TimingResult` carries its own perf snapshot, and the
        cumulative :attr:`perf` picks up per-batch totals plus a
        ``batch_scenarios`` count and an ``analyze_batch`` timer.

        Results are bit-identical to running each scenario through a
        fresh analyzer (the differential tests and
        ``benchmarks/bench_batch_sweep.py`` assert this).

        ``delta=True`` routes every scenario through
        :meth:`analyze_delta`: consecutive vectors reuse each other's
        committed arrivals outside the changed inputs' dirty cone, on
        top of the cache amortization — the fewer inputs change between
        neighbours, the fewer stages are visited (see
        ``benchmarks/bench_delta_sweep.py``).  Equally bit-identical.
        """
        results: List[TimingResult] = []
        with self.perf.timer("analyze_batch"):
            for position, inputs in enumerate(scenarios):
                with _trace_span("scenario", index=position):
                    results.append(self.analyze_delta(inputs) if delta
                                   else self.analyze(inputs))
        self.perf.incr("batch_scenarios", len(results))
        return results

    def _propagate(self, inputs: Mapping[str, Union[InputSpec, float]],
                   perf: PerfCounters
                   ) -> Tuple[Dict[Event, Arrival],
                              Dict[Event, Tuple[int, int]],
                              Dict[str, InputSpec]]:
        arrivals: Dict[Event, Arrival] = {}
        ranks: Dict[Event, Tuple[int, int]] = {}
        normalized = self._normalize_inputs(inputs)
        seeds: List[Tuple[Event, float]] = []
        for name, spec in normalized.items():
            for transition in _TRANSITIONS:
                time = spec.arrival(transition)
                if time is None:
                    continue
                event = Event(name, transition)
                arrivals[event] = Arrival(time=time, slope=spec.slope)
                ranks[event] = _PRIMARY_RANK
                seeds.append((event, time))
        self._run_worklist(arrivals, ranks, perf, seeds)
        return arrivals, ranks, normalized

    def _run_worklist(self, arrivals: Dict[Event, Arrival],
                      ranks: Dict[Event, Tuple[int, int]],
                      perf: PerfCounters,
                      seeds: Iterable[Tuple[Event, float]],
                      forced: Iterable[int] = ()) -> None:
        """Drive the priority worklist to its fixpoint.

        *seeds* are (event, time) activations scheduled against the
        stages they trigger; *forced* stage indices (the delta path's
        dirty cone) are additionally guaranteed one exhaustive evaluation
        even if no seed reaches them — a cone stage whose triggers all
        kept their carried-over arrivals still needs its (deleted)
        internal arrivals recomputed.
        """
        stages = self.graph.stages
        levels = self.graph.levels()
        pending: Dict[int, Set[Event]] = {}
        scheduled: Dict[int, Tuple[int, float]] = {}
        heap: List[Tuple[int, float, int]] = []
        evaluated: Set[int] = set()

        # Priority: topological level first (a stage pops only after every
        # acyclic predecessor has settled — single-visit convergence on
        # feed-forward logic), earliest pending arrival time as tie-break
        # within a level.
        def schedule(event: Event, time: float) -> None:
            for stage in self.graph.affected_stages(event.node):
                index = stage.index
                pending.setdefault(index, set()).add(event)
                priority = (levels[index], time)
                best = scheduled.get(index)
                if best is None or priority < best:
                    scheduled[index] = priority
                    heapq.heappush(heap, (priority[0], priority[1], index))
                    perf.incr("worklist_pushes")

        for event, time in seeds:
            schedule(event, time)

        # Forced stages sort after natural activity within their level
        # (time = +inf) — by the time one pops, its level's upstream
        # traffic has been drained, so the exhaustive visit is usually
        # final, exactly like a cold run's first visit.
        force_pending: Set[int] = set()
        for index in sorted(set(forced)):
            force_pending.add(index)
            priority = (levels[index], math.inf)
            best = scheduled.get(index)
            if best is None or priority < best:
                scheduled[index] = priority
                heapq.heappush(heap, (priority[0], priority[1], index))
                perf.incr("worklist_pushes")

        visits: Dict[int, int] = {}
        tracer = _trace_current()
        while heap:
            level, time, index = heapq.heappop(heap)
            if scheduled.get(index) == (level, time):
                del scheduled[index]
            events = pending.pop(index, None)
            if not events:
                if index not in force_pending or index in evaluated:
                    # Nothing pending and no outstanding forced visit
                    # (or the forced visit already happened naturally).
                    force_pending.discard(index)
                    perf.incr("worklist_stale_pops")
                    continue
            force_pending.discard(index)
            stage = stages[index]
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > self.MAX_STAGE_VISITS:
                nodes = ", ".join(sorted(stage.internal_nodes))
                raise TimingError(f"timing loop through stage [{nodes}]")
            perf.incr("stage_visits")
            incremental_visit = bool(self.incremental and index in evaluated
                                     and events)
            scope = (tracer.span("stage_eval", stage=index, level=level,
                                 mode=("incremental" if incremental_visit
                                       else "full"))
                     if tracer is not None else NULL_SCOPE)
            with scope:
                if incremental_visit:
                    perf.incr("stage_incremental_evals")
                    changed = self._evaluate_incremental(stage, events,
                                                         arrivals, ranks)
                else:
                    evaluated.add(index)
                    perf.incr("stage_full_evals")
                    changed = self._evaluate_full(stage, arrivals, ranks)
            for event in changed:
                schedule(event, arrivals[event].time)

    # ------------------------------------------------------------------

    def _normalize_inputs(self, inputs: Mapping[str, Union[InputSpec, float]]
                          ) -> Dict[str, InputSpec]:
        normalized: Dict[str, InputSpec] = {}
        for name, spec in inputs.items():
            node = self.network.node(name)
            if node.is_supply:
                raise TimingError(f"cannot time a supply rail {name!r}")
            if not isinstance(spec, InputSpec):
                spec = InputSpec(arrival_rise=float(spec),
                                 arrival_fall=float(spec))
            normalized[node.name] = spec
        missing = [n.name for n in self.network.inputs()
                   if n.name not in normalized]
        if missing:
            raise TimingError(
                "primary inputs without timing: " + ", ".join(sorted(missing))
            )
        return normalized

    # -- static caches --------------------------------------------------

    def _rep_for(self, stage: Stage) -> Tuple[Stage, Optional[Dict[str, str]],
                                              Optional[Dict[str, str]],
                                              Optional[Dict]]:
        """The stage's structural-sharing record: its representative
        stage plus the name/element substitutions (None when the stage
        *is* the representative of its signature)."""
        entry = self._stage_iso.get(stage.index)
        if entry is None:
            signature, names = stage_signature(
                self.network, stage, self.states, cap_cache=self._node_caps)
            rep = self._sig_reps.get(signature)
            if rep is None:
                self._sig_reps[signature] = (stage, names)
                entry = (stage, None, None, None)
            else:
                rep_stage, rep_names = rep
                name_map, inverse = build_maps(rep_names, names)
                entry = (rep_stage, name_map, inverse,
                         element_map(rep_stage, stage))
            self._stage_iso[stage.index] = entry
        return entry

    def _stage_paths(self, stage: Stage, node: str,
                     transition: Transition) -> List[SensitizedPath]:
        key = (stage.index, node, transition)
        paths = self._paths.get(key)
        if paths is None:
            rep, name_map, inverse, elements = self._rep_for(stage)
            if name_map is None:
                self._count("path_enumerations")
                with _trace_span("path_enum", stage=stage.index, node=node):
                    paths = enumerate_paths(
                        self.network, stage, node, transition, self.states,
                        caches=self._caches_for(stage))
            else:
                rep_paths = self._stage_paths(rep, inverse[node], transition)
                paths = translate_paths(rep_paths, name_map, elements,
                                        stage.index)
                self._count("path_translations")
            self._paths[key] = paths
        return paths

    def _caches_for(self, stage: Stage) -> StageCaches:
        caches = self._stage_caches.get(stage.index)
        if caches is None:
            caches = self._stage_caches[stage.index] = StageCaches()
        return caches

    def _tree_for(self, stage: Stage, path: SensitizedPath,
                  order: int) -> RCTree:
        key = (stage.index, path.target, path.transition, order)
        tree = self._trees.get(key)
        if tree is None:
            self._count("tree_builds")
            tree = build_tree(self.network, stage, path, states=self.states,
                              caches=self._caches_for(stage),
                              cap_cache=self._node_caps)
            self._trees[key] = tree
        return tree

    def _template_for(self, stage: Stage, path: SensitizedPath,
                      order: int) -> TreeTemplate:
        key = (stage.index, path.target, path.transition, order)
        template = self._templates.get(key)
        if template is not None:
            self._count("tree_template_hits")
            _trace_instant("template_hit", stage=stage.index,
                           target=path.target)
            return template
        rep, name_map, inverse, elements = self._rep_for(stage)
        if name_map is None:
            self._count("tree_template_misses")
            with _trace_span("template_compile", stage=stage.index,
                             target=path.target):
                template = compile_template(
                    self.network, stage, path, states=self.states,
                    caches=self._caches_for(stage),
                    cap_cache=self._node_caps)
        else:
            with _trace_span("template_share", stage=stage.index,
                             rep=rep.index):
                rep_paths = self._stage_paths(rep, inverse[path.target],
                                              path.transition)
                template = TreeTemplate.translated(
                    self._template_for(rep, rep_paths[order], order),
                    name_map, elements)
            self._count("tree_template_shared")
        self._templates[key] = template
        return template

    def export_templates(self) -> Dict[Tuple[int, str, Transition, int],
                                       TreeTemplate]:
        """Snapshot of the compiled-template cache.  Template keys are
        deterministic functions of the network and ``states`` (stage
        indices from :meth:`StageGraph.build`, path order from
        :func:`enumerate_paths`), so the snapshot is valid in any other
        analyzer built from equal inputs — the parallel workers are
        seeded this way instead of recompiling per process."""
        return dict(self._templates)

    def seed_templates(self, templates: Mapping[Tuple[int, str, Transition,
                                                      int], TreeTemplate]
                       ) -> None:
        """Adopt pre-compiled templates (see :meth:`export_templates`).
        Seeded entries count as template hits on first use, not misses."""
        self._templates.update(templates)

    def _trigger_index_for(self, stage: Stage
                           ) -> Dict[Event, List[_IndexEntry]]:
        index = self._trigger_index.get(stage.index)
        if index is None:
            index = {}
            for node in sorted(stage.internal_nodes):
                for transition in _TRANSITIONS:
                    if not self._event_allowed(node, transition):
                        continue
                    paths = self._stage_paths(stage, node, transition)
                    for order, path in enumerate(paths):
                        for pos, trigger in enumerate(path.triggers):
                            event = Event(trigger.input_node,
                                          trigger.input_transition)
                            index.setdefault(event, []).append(_IndexEntry(
                                node, transition, order, pos, path, trigger))
            self._trigger_index[stage.index] = index
        return index

    # -- memoized delay evaluation --------------------------------------

    def _quantize_slope(self, slope: float) -> float:
        if self.slope_quantum <= 0.0 or slope <= 0.0:
            return slope
        step = math.log1p(self.slope_quantum)
        return math.exp(round(math.log(slope) / step) * step)

    def _request_for(self, stage: Stage, path: SensitizedPath, order: int,
                     trigger: Trigger, slope: float) -> StageRequest:
        """The delay-model question for one memo miss, carrying either a
        compiled template (numpy kernel) or a dict tree (python kernel)."""
        if self.kernel == "numpy":
            return StageRequest(
                tree=None,
                target=path.target,
                transition=path.transition,
                trigger_kind=trigger.device_kind,
                input_slope=slope,
                tech=self.network.tech,
                template=self._template_for(stage, path, order),
            )
        return StageRequest(
            tree=self._tree_for(stage, path, order),
            target=path.target,
            transition=path.transition,
            trigger_kind=trigger.device_kind,
            input_slope=slope,
            tech=self.network.tech,
        )

    def _best_candidate(self, stage: Stage,
                        group: List[Tuple[int, int, SensitizedPath, Trigger]],
                        arrivals: Mapping[Event, Arrival]
                        ) -> Tuple[Optional[Arrival], Tuple[int, int], int]:
        """Resolve a target's (order, trigger_pos, path, trigger)
        candidate group and pick the winner under the deterministic
        tie-break; also returns how many candidates had an upstream
        arrival (the stage-cost observation).

        The group's memo misses are gathered and handed to the model in
        one :meth:`DelayModel.evaluate_many` batch — with the numpy kernel
        they all share the stage's template-level time constants, so the
        per-candidate marginal cost is a dict lookup.  Only the winning
        candidate is materialized as an :class:`Arrival`; the losers never
        leave (time, rank) form.
        """
        cache = self._delay_cache
        stage_index = stage.index
        quantum = self.slope_quantum
        plan: List[Tuple[Event, Arrival, Tuple, int, int, SensitizedPath,
                         Trigger]] = []
        pending_keys: List[Tuple] = []
        pending_requests: List[StageRequest] = []
        pending_seen: Set[Tuple] = set()
        hits = 0
        for order, pos, path, trigger in group:
            event = Event(trigger.input_node, trigger.input_transition)
            upstream = arrivals.get(event)
            if upstream is None:
                continue
            slope = upstream.slope
            if slope < 0.0:
                slope = 0.0
            if quantum > 0.0:
                slope = self._quantize_slope(slope)
            key = (stage_index, path.target, path.transition_code, order,
                   trigger.kind_code, slope)
            if key in cache or key in pending_seen:
                hits += 1
            else:
                pending_seen.add(key)
                pending_keys.append(key)
                pending_requests.append(
                    self._request_for(stage, path, order, trigger, slope))
            plan.append((event, upstream, key, order, pos, path, trigger))
        if plan:
            self._count("candidates", len(plan))
        if hits:
            self._count("model_cache_hits", hits)
        if pending_requests:
            self._count("model_cache_misses", len(pending_requests))
            self._count("model_evals", len(pending_requests))
            if self.kernel == "numpy":
                self._count("kernel_batches")
                self._count("kernel_nodes",
                            sum(len(r.template) for r in pending_requests))
            with _trace_span("kernel_batch", stage=stage_index,
                             requests=len(pending_requests),
                             kernel=self.kernel):
                results = self.model.evaluate_many(pending_requests)
            for key, result in zip(pending_keys, results):
                cache[key] = result

        # Winner selection on raw (time, rank), same ordering as _beats.
        best = None  # (event, upstream, result, path, trigger)
        best_time = 0.0
        best_rank = _PRIMARY_RANK
        for event, upstream, key, order, pos, path, trigger in plan:
            result = cache[key]
            time = upstream.time + result.delay
            if best is not None:
                scale = max(abs(time), abs(best_time), 1e-30)
                margin = _RELATIVE_EPSILON * scale
                if time <= best_time + margin and (
                        time < best_time - margin
                        or (order, pos) >= best_rank):
                    continue
            best = (event, upstream, result, path, trigger)
            best_time = time
            best_rank = (order, pos)
        if best is None:
            return None, _PRIMARY_RANK, len(plan)
        event, upstream, result, path, trigger = best
        return Arrival(
            time=best_time,
            slope=result.output_slope,
            cause=event,
            stage_delay=result,
            path=path,
            trigger=trigger,
        ), best_rank, len(plan)

    # -- event admission ------------------------------------------------

    def _event_allowed(self, node: str, transition: Transition) -> bool:
        """Can (node, transition) occur at all under the supplied states?

        An event ending at level ``v`` requires the post-transition state
        to be ``v`` (or unknown); with both state maps, a node whose known
        value is unchanged produces no event in a single-vector analysis.
        """
        if self.states is None:
            return True
        post = self.states.get(node, Logic.X)
        final = Logic.ONE if transition is Transition.RISE else Logic.ZERO
        if post is not Logic.X and post is not final:
            return False
        if self.initial_states is not None:
            pre = self.initial_states.get(node, Logic.X)
            if pre is not Logic.X and pre is post:
                return False
        return True

    # -- candidate comparison -------------------------------------------

    @staticmethod
    def _beats(candidate: Arrival, candidate_rank: Tuple[int, int],
               current: Arrival, current_rank: Tuple[int, int]) -> bool:
        """Does *candidate* displace *current*?

        Strictly later (beyond the relative epsilon) always wins; within
        the epsilon the smaller canonical rank wins, which makes the
        fixpoint independent of evaluation order.
        """
        scale = max(abs(candidate.time), abs(current.time), 1e-30)
        margin = _RELATIVE_EPSILON * scale
        if candidate.time > current.time + margin:
            return True
        if candidate.time < current.time - margin:
            return False
        return candidate_rank < current_rank

    # -- stage evaluation -----------------------------------------------

    def _commit(self, event: Event, best: Arrival, rank: Tuple[int, int],
                arrivals: Dict[Event, Arrival],
                ranks: Dict[Event, Tuple[int, int]]) -> bool:
        current = arrivals.get(event)
        if current is not None and not self._beats(
                best, rank, current, ranks.get(event, _PRIMARY_RANK)):
            return False
        arrivals[event] = best
        ranks[event] = rank
        self._count("arrival_updates")
        return True

    @staticmethod
    def _full_group(paths: List[SensitizedPath]
                    ) -> List[Tuple[int, int, SensitizedPath, Trigger]]:
        """Every (path, trigger) candidate of a target, canonical order."""
        return [(order, pos, path, trigger)
                for order, path in enumerate(paths)
                for pos, trigger in enumerate(path.triggers)]

    def _evaluate_full(self, stage: Stage, arrivals: Dict[Event, Arrival],
                       ranks: Dict[Event, Tuple[int, int]]) -> List[Event]:
        """Recompute every internal-node arrival; return changed events.

        Targets are evaluated (and committed) one at a time, in canonical
        order, because a feedback stage's own internal node can be an
        upstream trigger of a later target in the same visit — batching
        stays within one target's candidate group.
        """
        changed: List[Event] = []
        considered = 0
        for node in sorted(stage.internal_nodes):
            for transition in _TRANSITIONS:
                if not self._event_allowed(node, transition):
                    continue
                paths = self._stage_paths(stage, node, transition)
                best, best_rank, count = self._best_candidate(
                    stage, self._full_group(paths), arrivals)
                considered += count
                if best is None:
                    continue
                event = Event(node, transition)
                if self._commit(event, best, best_rank, arrivals, ranks):
                    changed.append(event)
        self.stage_costs.observe(stage.index, considered)
        return changed

    def stage_candidates(self, stage: Stage,
                         arrivals: Mapping[Event, Arrival]
                         ) -> List[Tuple[Event, Arrival, Tuple[int, int]]]:
        """Best candidate per (internal node, transition), no commit.

        Unlike :meth:`_evaluate_full` this evaluates against a *snapshot*
        of upstream arrivals and never mutates analyzer or arrival state —
        the form the parallel level-front executor needs: workers compute
        candidates against the front's settled inputs and the parent
        merges them with the same deterministic tie-break the serial
        engine uses.  On an acyclic stage graph the two evaluation styles
        commit identical fixpoints (a stage's triggers all live in
        strictly earlier levels, so the snapshot *is* the final state).
        """
        out: List[Tuple[Event, Arrival, Tuple[int, int]]] = []
        considered = 0
        with _trace_span("stage_eval", stage=stage.index, mode="front"):
            for node in sorted(stage.internal_nodes):
                for transition in _TRANSITIONS:
                    if not self._event_allowed(node, transition):
                        continue
                    paths = self._stage_paths(stage, node, transition)
                    best, best_rank, count = self._best_candidate(
                        stage, self._full_group(paths), arrivals)
                    considered += count
                    if best is not None:
                        out.append((Event(node, transition), best, best_rank))
        self.stage_costs.observe(stage.index, considered)
        return out

    def _evaluate_incremental(self, stage: Stage, events: Set[Event],
                              arrivals: Dict[Event, Arrival],
                              ranks: Dict[Event, Tuple[int, int]]
                              ) -> List[Event]:
        """Re-evaluate only the candidates fed by *events*."""
        index = self._trigger_index_for(stage)
        by_target: Dict[Event, List[_IndexEntry]] = {}
        for event in sorted(events, key=lambda e: (
                e.node, _TRANSITION_ORDER[e.transition])):
            for entry in index.get(event, ()):
                target = Event(entry.node, entry.transition)
                by_target.setdefault(target, []).append(entry)

        changed: List[Event] = []
        considered = 0
        for target in sorted(by_target, key=lambda e: (
                e.node, _TRANSITION_ORDER[e.transition])):
            entries = sorted(by_target[target],
                             key=lambda e: (e.order, e.trigger_pos))
            group = [(entry.order, entry.trigger_pos, entry.path,
                      entry.trigger) for entry in entries]
            best, best_rank, count = self._best_candidate(stage, group,
                                                          arrivals)
            considered += count
            if best is None:
                continue
            if self._commit(target, best, best_rank, arrivals, ranks):
                changed.append(target)
        self.stage_costs.observe(stage.index, considered)
        return changed


def analyze(network: Network, inputs: Mapping[str, Union[InputSpec, float]],
            model: Optional[DelayModel] = None,
            states: Optional[StateMap] = None,
            initial_states: Optional[StateMap] = None) -> TimingResult:
    """One-shot convenience wrapper around :class:`TimingAnalyzer`."""
    analyzer = TimingAnalyzer(network, model=model, states=states,
                              initial_states=initial_states)
    return analyzer.analyze(inputs)
