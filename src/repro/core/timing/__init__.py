"""Crystal-style static timing analysis over stage decompositions."""

from .paths import (
    PathElement,
    SensitizedPath,
    Trigger,
    build_request,
    build_tree,
    effective_node_cap,
    enumerate_paths,
)
from .stage_graph import StageGraph
from .analyzer import (
    Arrival,
    Event,
    InputSpec,
    TimingAnalyzer,
    TimingResult,
    analyze,
)
from .report import (
    arrival_table,
    format_critical_path,
    format_worst_paths,
    worst_events,
)
from .clocking import (
    ClockPhase,
    ClockSchedule,
    ClockedTimingResult,
    SetupCheck,
    analyze_clocked,
    format_setup_report,
    minimum_period,
    setup_checks,
)
from .hazards import (
    ChargeSharingHazard,
    find_charge_sharing_hazards,
    format_hazard_report,
)

__all__ = [
    "ClockPhase",
    "ClockSchedule",
    "ClockedTimingResult",
    "SetupCheck",
    "analyze_clocked",
    "format_setup_report",
    "minimum_period",
    "setup_checks",
    "ChargeSharingHazard",
    "find_charge_sharing_hazards",
    "format_hazard_report",
    "PathElement",
    "SensitizedPath",
    "Trigger",
    "build_request",
    "build_tree",
    "effective_node_cap",
    "enumerate_paths",
    "StageGraph",
    "Arrival",
    "Event",
    "InputSpec",
    "TimingAnalyzer",
    "TimingResult",
    "analyze",
    "arrival_table",
    "format_critical_path",
    "format_worst_paths",
    "worst_events",
]
