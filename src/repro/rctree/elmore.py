"""Elmore delay and the RPH time constants of an RC tree.

For a step at the root and a measurement node ``i``:

* ``T_P  = sum_k R_kk * C_k``             (sum over all nodes k)
* ``T_Di = sum_k R_ki * C_k``             (the Elmore delay of node i)
* ``T_Ri = sum_k R_ki^2 * C_k / R_ii``

with ``R_kk`` the root→k path resistance and ``R_ki`` the resistance shared
between the root→k and root→i paths.  Always ``T_Ri <= T_Di <= T_P``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from .tree import RCTree


@dataclass(frozen=True)
class TimeConstants:
    """The three RPH time constants for one measurement node."""

    t_p: float
    t_d: float
    t_r: float

    def __post_init__(self) -> None:
        # Allow tiny numerical slack in the defining inequalities.  The
        # slack scales with T_D as well as T_P: the binding comparison
        # T_R <= T_D happens at T_D's magnitude, and the vectorized
        # kernel's reassociated sums can land a large-fanout tree within
        # rounding of that boundary even when T_P alone would suggest a
        # tighter tolerance.
        slack = 1e-12 + 1e-9 * (abs(self.t_p) + abs(self.t_d))
        if not (self.t_r <= self.t_d + slack and self.t_d <= self.t_p + slack):
            raise AnalysisError(
                f"inconsistent time constants: T_R={self.t_r}, "
                f"T_D={self.t_d}, T_P={self.t_p}"
            )


def elmore_delay(tree: RCTree, node: str) -> float:
    """``T_Di`` — the Elmore delay from the root to *node*."""
    total = 0.0
    for k in tree.non_root_nodes:
        shared = tree.shared_resistance(node, k)
        total += shared * tree.cap(k)
    # The root's own capacitance is driven by an ideal source: no delay.
    return total


def time_constants(tree: RCTree, node: str) -> TimeConstants:
    """All three RPH time constants for *node*."""
    if not tree.contains(node):
        raise AnalysisError(f"unknown node {node!r}")
    if node == tree.root:
        return TimeConstants(t_p=_t_p(tree), t_d=0.0, t_r=0.0)
    r_ii = tree.path_resistance(node)
    if r_ii <= 0:
        raise AnalysisError(f"node {node!r} has zero path resistance")
    t_p = _t_p(tree)
    t_d = 0.0
    t_r = 0.0
    for k in tree.non_root_nodes:
        shared = tree.shared_resistance(node, k)
        cap = tree.cap(k)
        t_d += shared * cap
        t_r += shared * shared * cap / r_ii
    return TimeConstants(t_p=t_p, t_d=t_d, t_r=t_r)


def _t_p(tree: RCTree) -> float:
    return sum(tree.path_resistance(k) * tree.cap(k)
               for k in tree.non_root_nodes)


def lumped_time_constant(tree: RCTree, node: str) -> float:
    """The lumped-RC estimate for comparison: R_ii times *all* capacitance
    in the tree — what the lumped model charges through the full path."""
    return tree.path_resistance(node) * tree.total_cap()
