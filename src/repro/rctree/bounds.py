"""Penfield-Rubinstein-Horowitz delay bounds.

For a unit step applied at the root of an RC tree at t=0, let
``x_i(t) = 1 - v_i(t)`` be the normalized *remaining* excursion at node i.
The RPH lemma sandwiches the remaining area:

    ``T_Ri * x_i(t)  <=  integral_t^inf x_i  <=  T_P * x_i(t)``

together with ``x_i`` monotone decreasing, ``x_i(0) = 1`` and
``integral_0^inf x_i = T_Di``.  Four rigorous consequences bound the time
``t_i(v)`` at which node i reaches the normalized threshold ``v``:

lower bounds
    ``t >= T_Di - T_P * (1 - v)``
    ``t >= T_Ri * ln( T_Di / (T_P * (1 - v)) )``

upper bounds
    ``t <= T_Di / (1 - v)``
    ``t <= T_P * ln( T_Di / (T_Ri * (1 - v)) )``

Each is clamped at zero; the bound pair used is the max of the lowers and
the min of the uppers.  The property tests verify bracketing against the
exact eigendecomposition response on randomized trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AnalysisError
from .elmore import TimeConstants, time_constants
from .tree import RCTree


@dataclass(frozen=True)
class DelayBounds:
    """Lower/upper bound on the threshold-crossing time, plus the Elmore
    point estimate which always lies between them scaled by ln-factors."""

    lower: float
    upper: float
    elmore: float

    @property
    def spread(self) -> float:
        return self.upper - self.lower

    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


def _check_threshold(threshold: float) -> None:
    if not 0.0 < threshold < 1.0:
        raise AnalysisError(
            f"threshold must be a normalized fraction in (0, 1), got "
            f"{threshold!r}"
        )


def delay_bounds_from_constants(tc: TimeConstants,
                                threshold: float = 0.5) -> DelayBounds:
    """Bounds from precomputed time constants (see module docstring)."""
    _check_threshold(threshold)
    remaining = 1.0 - threshold
    t_p, t_d, t_r = tc.t_p, tc.t_d, tc.t_r
    if t_d <= 0.0:
        return DelayBounds(lower=0.0, upper=0.0, elmore=0.0)

    lower_area = t_d - t_p * remaining
    lower_exp = 0.0
    if t_r > 0.0 and t_d > t_p * remaining:
        lower_exp = t_r * math.log(t_d / (t_p * remaining))
    lower = max(0.0, lower_area, lower_exp)

    upper_markov = t_d / remaining
    if t_r > 0.0:
        upper_exp = t_p * math.log(t_d / (t_r * remaining))
        upper = min(upper_markov, max(upper_exp, 0.0))
    else:
        upper = upper_markov
    upper = max(upper, lower)  # guard against round-off inversion

    return DelayBounds(lower=lower, upper=upper, elmore=t_d)


def delay_bounds(tree: RCTree, node: str,
                 threshold: float = 0.5) -> DelayBounds:
    """RPH bounds on the time for *node* to cross *threshold* (normalized
    fraction of the step) after a step at the tree's root."""
    return delay_bounds_from_constants(time_constants(tree, node), threshold)
