"""RC-tree mathematics: Elmore delay, RPH bounds, exact step response,
compiled tree templates and the vectorized PRH kernel."""

from .tree import RCTree
from .elmore import TimeConstants, elmore_delay, lumped_time_constant, time_constants
from .bounds import DelayBounds, delay_bounds, delay_bounds_from_constants
from .exact import StepResponse, exact_delay, step_response
from .kernel import (SMALL_TREE_CUTOFF, StageConstants,
                     compute_stage_constants, kernel_available)
from .template import TreeTemplate

__all__ = [
    "RCTree",
    "SMALL_TREE_CUTOFF",
    "StageConstants",
    "TimeConstants",
    "TreeTemplate",
    "compute_stage_constants",
    "kernel_available",
    "elmore_delay",
    "lumped_time_constant",
    "time_constants",
    "DelayBounds",
    "delay_bounds",
    "delay_bounds_from_constants",
    "StepResponse",
    "exact_delay",
    "step_response",
]
