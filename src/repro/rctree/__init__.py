"""RC-tree mathematics: Elmore delay, RPH bounds, exact step response."""

from .tree import RCTree
from .elmore import TimeConstants, elmore_delay, lumped_time_constant, time_constants
from .bounds import DelayBounds, delay_bounds, delay_bounds_from_constants
from .exact import StepResponse, exact_delay, step_response

__all__ = [
    "RCTree",
    "TimeConstants",
    "elmore_delay",
    "lumped_time_constant",
    "time_constants",
    "DelayBounds",
    "delay_bounds",
    "delay_bounds_from_constants",
    "StepResponse",
    "exact_delay",
    "step_response",
]
