"""Vectorized Penfield-Rubinstein-Horowitz kernel.

The scalar reference (:mod:`repro.rctree.elmore`) evaluates the RPH time
constants with an O(N^2) double loop over ``shared_resistance`` pairs,
once per measurement node.  This module computes **all three constants
for every node of a tree in O(N)** using the edge decomposition of the
shared-resistance sums:

* ``R_kk`` (root->k path resistance) is a prefix sum of edge resistances
  down the parent array;
* ``T_P = sum_k R_kk C_k`` is one dot product;
* ``T_Dk = sum_i R_ik C_i`` telescopes to a prefix sum of
  ``r_e * Cdown_e`` along the root->k path, where ``Cdown_e`` is the
  total capacitance in the subtree hanging below edge ``e``;
* ``T_Rk * R_kk = sum_i R_ik^2 C_i`` telescopes the same way with the
  per-edge increment ``(R_e^2 - R_parent(e)^2) * Cdown_e`` (Abel
  summation over the branch capacitances grouped by their lowest common
  ancestor with k).

Trees arrive as flat arrays (see :class:`~repro.rctree.template.TreeTemplate`):
``parent[i] < i`` (topological insertion order, ``parent[0] = -1``),
``r[i]`` the resistance of the edge above node ``i`` (``r[0] = 0``) and
``c[i]`` the node capacitance.

Two interchangeable backends implement the recurrences:

* a numpy backend that sweeps the tree one depth level at a time, each
  level a fancy-indexed vector operation (``np.add.at`` for the upward
  capacitance pass) — the per-element cost is tiny, but each numpy call
  carries fixed overhead, so it only wins on wider trees;
* a plain-Python O(N) backend over lists for small trees, where numpy's
  per-call overhead would exceed the whole computation.

Both produce the same algebra; the differential tests drive each against
the O(N^2) scalar reference.  The crossover is :data:`SMALL_TREE_CUTOFF`
(force a backend with :func:`set_forced_backend` in tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # numpy is an optional accelerator here; the scalar path is complete
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Below this many nodes the plain-Python backend is faster than paying
#: numpy's per-call overhead a dozen times on near-empty arrays.
SMALL_TREE_CUTOFF = 48

#: test hook: None = size-based dispatch, "numpy" / "python" = forced
_FORCED_BACKEND: Optional[str] = None


def kernel_available() -> bool:
    """Is the vectorized kernel usable (numpy importable)?"""
    return _np is not None


def set_forced_backend(backend: Optional[str]) -> None:
    """Force a backend (``"numpy"`` / ``"python"`` / ``None`` = auto).

    Test hook so the differential suite exercises both implementations on
    every tree size.
    """
    global _FORCED_BACKEND
    if backend not in (None, "numpy", "python"):
        raise ValueError(f"unknown kernel backend {backend!r}")
    _FORCED_BACKEND = backend


class StageConstants:
    """The RPH constants of one tree, for **all** nodes at once.

    ``t_d``/``t_r``/``rpath`` are indexable sequences aligned with the
    template's node order; ``t_p`` and ``c_total`` are tree-wide scalars.
    """

    __slots__ = ("t_p", "t_d", "t_r", "rpath", "c_total")

    def __init__(self, t_p: float, t_d: Sequence[float],
                 t_r: Sequence[float], rpath: Sequence[float],
                 c_total: float):
        self.t_p = t_p
        self.t_d = t_d
        self.t_r = t_r
        self.rpath = rpath
        self.c_total = c_total


def depth_levels(parent: Sequence[int]) -> List["_np.ndarray"]:
    """Node indexes grouped by depth (root level first).

    The numpy backend sweeps these groups: within one level every node's
    parent lives in an earlier level, so a whole level updates in one
    fancy-indexed operation.
    """
    n = len(parent)
    depth = [0] * n
    for i in range(1, n):
        depth[i] = depth[parent[i]] + 1
    buckets: List[List[int]] = [[] for _ in range(max(depth) + 1 if n else 1)]
    for i, d in enumerate(depth):
        buckets[d].append(i)
    if _np is None:
        return [list(b) for b in buckets]  # type: ignore[list-item]
    return [_np.asarray(b, dtype=_np.int64) for b in buckets]


def compute_stage_constants(parent: Sequence[int], r: Sequence[float],
                            c: Sequence[float],
                            levels: Optional[List] = None) -> StageConstants:
    """All-node RPH constants for one tree in O(N).

    *levels* (from :func:`depth_levels`) lets a caching caller amortize
    the depth grouping; it is only consulted by the numpy backend.
    """
    n = len(parent)
    backend = _FORCED_BACKEND
    if backend is None:
        backend = ("numpy" if _np is not None and n >= SMALL_TREE_CUTOFF
                   else "python")
    if backend == "numpy" and _np is not None:
        return _constants_numpy(parent, r, c, levels)
    return _constants_python(parent, r, c)


def _constants_python(parent: Sequence[int], r: Sequence[float],
                      c: Sequence[float]) -> StageConstants:
    """O(N) list-based recurrences (fastest for small trees)."""
    n = len(parent)
    if hasattr(r, "tolist"):  # plain-list indexing beats ndarray scalars
        r = r.tolist()
    if hasattr(c, "tolist"):
        c = c.tolist()
    rpath = [0.0] * n
    cdown = list(c)
    t_d = [0.0] * n
    acc2 = [0.0] * n
    for i in range(1, n):
        rpath[i] = rpath[parent[i]] + r[i]
    for i in range(n - 1, 0, -1):
        cdown[parent[i]] += cdown[i]
    t_p = 0.0
    for i in range(1, n):
        p = parent[i]
        t_p += rpath[i] * c[i]
        t_d[i] = t_d[p] + r[i] * cdown[i]
        acc2[i] = acc2[p] + (rpath[i] * rpath[i]
                             - rpath[p] * rpath[p]) * cdown[i]
    t_r = [acc2[i] / rpath[i] if rpath[i] > 0.0 else 0.0 for i in range(n)]
    return StageConstants(t_p=t_p, t_d=t_d, t_r=t_r, rpath=rpath,
                          c_total=sum(c))


def _constants_numpy(parent: Sequence[int], r: Sequence[float],
                     c: Sequence[float],
                     levels: Optional[List]) -> StageConstants:
    """Level-swept numpy recurrences (fastest for wide trees)."""
    parent = _np.asarray(parent, dtype=_np.int64)
    r = _np.asarray(r, dtype=_np.float64)
    c = _np.asarray(c, dtype=_np.float64)
    if levels is None:
        levels = depth_levels(parent)

    # Downward pass 1: root->node path resistance.
    rpath = r.copy()
    for idx in levels[1:]:
        rpath[idx] += rpath[parent[idx]]

    # Upward pass: capacitance in the subtree below each edge.
    cdown = c.copy()
    for idx in reversed(levels[1:]):
        _np.add.at(cdown, parent[idx], cdown[idx])

    t_p = float(rpath @ c)

    # Downward pass 2: both telescoped sums at once (stacked rows).
    pe = _np.maximum(parent, 0)
    inc = _np.empty((2, len(parent)))
    inc[0] = r * cdown                                   # -> T_D
    inc[1] = (rpath * rpath - rpath[pe] * rpath[pe]) * cdown  # -> T_R * R_kk
    inc[:, 0] = 0.0
    for idx in levels[1:]:
        inc[:, idx] += inc[:, parent[idx]]

    with _np.errstate(divide="ignore", invalid="ignore"):
        t_r = _np.where(rpath > 0.0, inc[1] / rpath, 0.0)
    return StageConstants(t_p=t_p, t_d=inc[0], t_r=t_r, rpath=rpath,
                          c_total=float(c.sum()))
