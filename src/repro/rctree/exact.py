"""Exact RC-tree step response by eigendecomposition.

The validation oracle for the Elmore/RPH machinery: for a step at the root,
the node voltages satisfy ``C dv/dt = -G v + b`` with ``G`` the conductance
Laplacian (root eliminated as a driven node).  Because ``G`` and ``C`` are
symmetric (C diagonal) positive definite, the generalized eigenproblem
``G q = lambda C q`` has real positive eigenvalues and the step response is
a sum of decaying exponentials — monotone at every node, which is why the
RPH theory applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import AnalysisError
from .tree import RCTree


@dataclass
class StepResponse:
    """Normalized step response at every non-root node.

    ``voltage(node, t)`` is in [0, 1); ``crossing_time(node, v)`` inverts it.
    """

    nodes: List[str]
    eigenvalues: np.ndarray  # positive rates (1/s)
    #: per-node modal amplitudes: v_i(t) = 1 - sum_m A[i, m] exp(-lambda_m t)
    amplitudes: np.ndarray

    def voltage(self, node: str, t):
        """Normalized voltage at *node*; scalar in → float out."""
        index = self._index(node)
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        decay = np.exp(-np.outer(t_arr, self.eigenvalues))
        values = 1.0 - decay @ self.amplitudes[index]
        if np.ndim(t) == 0:
            return float(values[0])
        return values

    def crossing_time(self, node: str, threshold: float,
                      tolerance: float = 1e-12) -> float:
        """First time the (monotone) response reaches *threshold*."""
        if not 0.0 < threshold < 1.0:
            raise AnalysisError("threshold must be in (0, 1)")
        index = self._index(node)
        rate = float(np.min(self.eigenvalues))
        hi = 1.0 / rate
        # Expand until above threshold.
        for _ in range(200):
            if self.voltage(node, hi) >= threshold:
                break
            hi *= 2.0
        else:
            raise AnalysisError(f"response at {node!r} never reaches "
                                f"{threshold:g}")
        lo = 0.0
        del index
        while hi - lo > tolerance * max(hi, 1e-30):
            mid = 0.5 * (lo + hi)
            if self.voltage(node, mid) >= threshold:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def _index(self, node: str) -> int:
        try:
            return self.nodes.index(node)
        except ValueError:
            raise AnalysisError(f"unknown node {node!r}") from None


def step_response(tree: RCTree) -> StepResponse:
    """Solve the tree exactly (requires every node to carry some C; nodes
    with zero capacitance are given a vanishingly small one to keep the
    generalized eigenproblem well posed)."""
    nodes = tree.non_root_nodes
    if not nodes:
        raise AnalysisError("tree has no non-root nodes")
    n = len(nodes)
    index = {name: i for i, name in enumerate(nodes)}

    conductance = np.zeros((n, n))
    rhs = np.zeros(n)
    for node in nodes:
        parent, resistance = tree.parent_edge(node)
        g = 1.0 / resistance
        i = index[node]
        conductance[i, i] += g
        if parent == tree.root:
            rhs[i] += g  # unit step at the root
        else:
            j = index[parent]
            conductance[i, j] -= g
            conductance[j, i] -= g
            conductance[j, j] += g

    floor = max(tree.total_cap(), 1e-30) * 1e-12
    caps = np.array([max(tree.cap(node), floor) for node in nodes])

    # Symmetrize via the C^{-1/2} similarity transform.
    inv_sqrt_c = 1.0 / np.sqrt(caps)
    sym = conductance * np.outer(inv_sqrt_c, inv_sqrt_c)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    if np.any(eigenvalues <= 0):
        raise AnalysisError("non-positive eigenvalue: tree is degenerate")

    # v(t) = v_inf - sum_m q_m exp(-lambda_m t) c_m with v(0) = 0 and
    # v_inf = 1 everywhere (pure tree, DC gain one).
    v_inf = np.ones(n)
    # Transform: y = sqrt(C) v; y_inf = sqrt(C) v_inf; y(t) follows modes.
    y_inf = np.sqrt(caps) * v_inf
    coefficients = eigenvectors.T @ y_inf  # modal content of the final value
    # v_i(t) = 1 - sum_m (Q[i,m] * coefficients[m] / sqrt(C_i)) e^{-l_m t}
    amplitudes = (eigenvectors * coefficients[np.newaxis, :]) * (
        inv_sqrt_c[:, np.newaxis])
    return StepResponse(nodes=nodes, eigenvalues=eigenvalues,
                        amplitudes=amplitudes)


def exact_delay(tree: RCTree, node: str, threshold: float = 0.5) -> float:
    """Exact threshold-crossing time for a step at the root."""
    return step_response(tree).crossing_time(node, threshold)


def elmore_exact_gap(tree: RCTree, node: str,
                     threshold: float = 0.5) -> Dict[str, float]:
    """Convenience: exact vs Elmore comparison (used in reports/tests)."""
    from .elmore import elmore_delay
    exact = exact_delay(tree, node, threshold)
    elmore = elmore_delay(tree, node)
    return {"exact": exact, "elmore": elmore,
            "ratio": elmore / exact if exact > 0 else float("inf")}
