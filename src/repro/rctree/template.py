"""Compiled, reusable array form of a stage's RC tree.

Building a dict-based :class:`~repro.rctree.tree.RCTree` per delay
candidate is exactly the redundant-representation cost Ousterhout warns
about: the same (stage, path topology, conduction state) is flattened
over and over.  A :class:`TreeTemplate` compiles that structure **once**
into a flat integer parent array plus R and C vectors; subsequent
candidates re-use the template (the analyzer counts
``tree_template_hits``), and a technology or geometry change re-stamps
values into the preallocated arrays (:meth:`restamp`) instead of
rebuilding the tree.

On top of the arrays, the template memoizes the vectorized PRH kernel's
:class:`~repro.rctree.kernel.StageConstants` — Elmore, T_P and T_R for
*every* node in one pass — so a delay model asking about any measurement
node of the stage is a constant-time lookup.

Templates are deliberately **picklable** (plain tuples, dicts and numpy
arrays; cached constants ride along): the parallel workers receive the
parent's compiled templates through :class:`~repro.parallel.worker.AnalyzerSpec`
and start warm instead of re-deriving every tree.

This module stays independent of the netlist layer: stamping sources are
opaque element groups plus caller-supplied ``resistance_of`` /
``cap_of`` callables (see :func:`repro.core.timing.paths.compile_template`
for the glue).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..trace.spans import span as _trace_span
from .elmore import TimeConstants
from .kernel import (SMALL_TREE_CUTOFF, StageConstants,
                     compute_stage_constants, depth_levels, kernel_available)
from .tree import RCTree


class TreeTemplate:
    """One compiled RC tree: names + parent/R/C arrays + cached kernel.

    Nodes are stored root-first in topological (insertion) order, so
    ``parent[i] < i`` always holds; ``r[i]`` is the resistance of the
    edge above node ``i`` (``r[0] = 0``), ``c[i]`` its capacitance.

    ``edge_elements`` (optional) keeps, per node, the tuple of netlist
    elements whose parallel merge produced ``r[i]`` — the stamping
    source :meth:`restamp` refills the arrays from.  ``cap_mask[i]``
    marks nodes whose capacitance is (re)read from the network.

    ``parent``/``r``/``c`` are stored as plain lists: most compiled
    stages are small enough that the kernel dispatches to its list-based
    backend anyway (:data:`~repro.rctree.kernel.SMALL_TREE_CUTOFF`), and
    the numpy backend converts lazily, so compilation never pays numpy
    construction overhead it will not use.
    """

    __slots__ = ("names", "index", "parent", "r", "c", "cap_mask",
                 "edge_elements", "transition", "_depth", "_levels",
                 "_constants", "_node_constants", "_rctree")

    def __init__(self, names: Sequence[str], parent: Sequence[int],
                 resistances: Sequence[float],
                 capacitances: Sequence[float],
                 transition=None,
                 edge_elements: Optional[Tuple[Tuple, ...]] = None,
                 cap_mask: Optional[Sequence[bool]] = None):
        if not kernel_available():
            raise AnalysisError(
                "TreeTemplate needs numpy; use the dict-based RCTree "
                "(kernel='python') when numpy is unavailable")
        n = len(names)
        if n < 1:
            raise AnalysisError("a tree template needs at least the root")
        if not (len(parent) == len(resistances) == len(capacitances) == n):
            raise AnalysisError("template arrays must all have one entry "
                                "per node")
        self.names: Tuple[str, ...] = tuple(names)
        self.index: Dict[str, int] = {m: i for i, m in enumerate(self.names)}
        if len(self.index) != n:
            raise AnalysisError("duplicate node name in tree template")
        if parent[0] != -1:
            raise AnalysisError("template node 0 must be the root "
                                "(parent -1)")
        for i in range(1, n):
            if not 0 <= parent[i] < i:
                raise AnalysisError(
                    f"template parent[{i}] = {parent[i]} breaks topological "
                    "order (parents must precede children)")
        if resistances[0] != 0.0:
            raise AnalysisError("the root carries no parent edge (r[0] "
                                "must be 0)")
        self.parent = list(parent)
        self.r = [float(x) for x in resistances]
        self.c = [float(x) for x in capacitances]
        self.transition = transition
        self.edge_elements = edge_elements
        if cap_mask is None:
            cap_mask = [False] + [True] * (n - 1)
        self.cap_mask = tuple(bool(b) for b in cap_mask)
        self._depth = None
        self._levels = None
        self._constants: Optional[StageConstants] = None
        self._node_constants: Dict[str, TimeConstants] = {}
        self._rctree: Optional[RCTree] = None

    # -- basic access --------------------------------------------------------

    @property
    def root(self) -> str:
        return self.names[0]

    @property
    def depth(self) -> List[int]:
        """Per-node depth below the root (computed on first use)."""
        if self._depth is None:
            parent = self.parent
            depth = [0] * len(parent)
            for i in range(1, len(parent)):
                depth[i] = depth[parent[i]] + 1
            self._depth = depth
        return self._depth

    def __len__(self) -> int:
        return len(self.names)

    def contains(self, node: str) -> bool:
        return node in self.index

    def index_of(self, node: str) -> int:
        try:
            return self.index[node]
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    # -- kernel results ------------------------------------------------------

    def constants(self) -> StageConstants:
        """All-node RPH constants, computed once and memoized."""
        if self._constants is None:
            # The level grouping only serves the numpy backend; small
            # trees dispatch to the list backend, so don't build it for
            # them (a forced-numpy kernel computes its own).
            # Traced as a span (once per template: memoized below).
            with _trace_span("kernel_constants", nodes=len(self.parent)):
                if self._levels is None \
                        and len(self.parent) >= SMALL_TREE_CUTOFF:
                    self._levels = depth_levels(self.parent)
                self._constants = compute_stage_constants(
                    self.parent, self.r, self.c, self._levels)
        return self._constants

    def constants_for(self, node: str) -> TimeConstants:
        """The scalar :class:`TimeConstants` of one measurement node
        (memoized — repeat candidates pay one dict lookup)."""
        hit = self._node_constants.get(node)
        if hit is not None:
            return hit
        i = self.index_of(node)
        k = self.constants()
        made = TimeConstants(t_p=k.t_p, t_d=float(k.t_d[i]),
                             t_r=float(k.t_r[i]))
        self._node_constants[node] = made
        return made

    def path_resistance(self, node: str) -> float:
        """``R_ii``: total resistance from the root down to *node*."""
        return float(self.constants().rpath[self.index_of(node)])

    def total_cap(self) -> float:
        return self.constants().c_total

    # -- stamping ------------------------------------------------------------

    def restamp(self, resistance_of: Callable[[object], float],
                cap_of: Callable[[str], float]) -> None:
        """Refill the R/C arrays from the compiled stamping sources.

        ``resistance_of`` maps one netlist element to its effective
        resistance for this template's transition; parallel element
        groups merge by conductance sum, matching
        :func:`repro.core.timing.paths._merged_edge_resistance`.  Call
        after device geometry or technology tables changed in place —
        the preallocated arrays are reused, no tree is rebuilt.
        """
        if self.edge_elements is None:
            raise AnalysisError(
                "template was compiled without stamping sources "
                "(from_rctree?); rebuild it instead of restamping")
        for i in range(1, len(self.names)):
            conductance = 0.0
            for element in self.edge_elements[i]:
                conductance += 1.0 / resistance_of(element)
            self.r[i] = 1.0 / conductance
        for i, stamped in enumerate(self.cap_mask):
            self.c[i] = cap_of(self.names[i]) if stamped else 0.0
        self._constants = None
        self._node_constants.clear()
        self._rctree = None

    # -- conversions ---------------------------------------------------------

    @classmethod
    def translated(cls, other: "TreeTemplate",
                   name_map: Mapping[str, str],
                   elements: Mapping[str, object]) -> "TreeTemplate":
        """Instantiate a compiled template for a structurally identical
        stage (see :mod:`repro.core.timing.stage_iso`): the numeric
        arrays carry over bit-for-bit, node names are substituted, and
        the stamping groups are remapped to the stage's own elements.
        The kernel constants are computed once on the source template
        and **shared** — a later :meth:`restamp` of either copy only
        drops its own reference."""
        t = cls.__new__(cls)
        t.names = tuple(name_map.get(n, n) for n in other.names)
        t.index = {m: i for i, m in enumerate(t.names)}
        t.parent = other.parent  # read-only after compilation
        t.r = list(other.r)      # own copies: restamp mutates in place
        t.c = list(other.c)
        t.cap_mask = other.cap_mask
        t.edge_elements = (None if other.edge_elements is None else
                           tuple(tuple(elements[e.name] for e in group)
                                 for group in other.edge_elements))
        t.transition = other.transition
        t._depth = other._depth
        t._levels = other._levels
        t._constants = other.constants()
        t._node_constants = {}
        t._rctree = None
        return t

    @classmethod
    def from_rctree(cls, tree: RCTree, transition=None) -> "TreeTemplate":
        """Compile an existing dict-based tree (reference/test path)."""
        names = tree.nodes  # root first, parents precede children
        index = {name: i for i, name in enumerate(names)}
        parent: List[int] = [-1]
        r: List[float] = [0.0]
        for name in names[1:]:
            up, resistance = tree.parent_edge(name)
            parent.append(index[up])
            r.append(resistance)
        c = [tree.cap(name) for name in names]
        return cls(names, parent, r, c, transition=transition,
                   cap_mask=[True] * len(names))

    def to_rctree(self) -> RCTree:
        """Materialize the dict-based tree (memoized; fallback for
        consumers that want the full :class:`RCTree` API)."""
        if self._rctree is None:
            tree = RCTree(self.root)
            for i in range(1, len(self.names)):
                tree.add_edge(self.names[self.parent[i]], self.names[i],
                              float(self.r[i]))
                cap = float(self.c[i])
                if cap:
                    tree.add_cap(self.names[i], cap)
            root_cap = float(self.c[0])
            if root_cap:
                tree.add_cap(self.root, root_cap)
            self._rctree = tree
        return self._rctree

    # -- pickling (slots need explicit state) --------------------------------

    def __getstate__(self):
        # Cached constants ship with the template (that is the point of
        # sending compiled templates to workers); the dict-tree, depth
        # and level groupings are cheap to rebuild, so they stay home.
        return {
            "names": self.names,
            "parent": self.parent,
            "r": self.r,
            "c": self.c,
            "cap_mask": self.cap_mask,
            "edge_elements": self.edge_elements,
            "transition": self.transition,
            "constants": self._constants and (
                self._constants.t_p,
                list(self._constants.t_d),
                list(self._constants.t_r),
                list(self._constants.rpath),
                self._constants.c_total,
            ),
        }

    def __setstate__(self, state) -> None:
        self.names = state["names"]
        self.index = {m: i for i, m in enumerate(self.names)}
        self.parent = state["parent"]
        self.r = state["r"]
        self.c = state["c"]
        self.cap_mask = state["cap_mask"]
        self.edge_elements = state["edge_elements"]
        self.transition = state["transition"]
        self._depth = None
        self._levels = None
        self._node_constants = {}
        self._rctree = None
        packed = state["constants"]
        self._constants = None
        if packed is not None:
            t_p, t_d, t_r, rpath, c_total = packed
            self._constants = StageConstants(t_p=t_p, t_d=t_d, t_r=t_r,
                                             rpath=rpath, c_total=c_total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TreeTemplate root={self.root!r} nodes={len(self.names)} "
                f"depth={max(self.depth) if self.names else 0}>")
