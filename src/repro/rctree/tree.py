"""RC-tree data structure.

An RC tree is a tree of resistors rooted at an ideal source (the switching
rail or driving input), with a capacitance to ground at every node.  It is
the structure the Penfield-Rubinstein-Horowitz bounds are defined on, and
the structure the RC-tree delay model extracts from a stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import AnalysisError


@dataclass
class RCTree:
    """A rooted RC tree.

    Build with :meth:`add_edge` (parent must already be in the tree; the
    root exists from construction).  Node capacitances accumulate via
    :meth:`add_cap`.
    """

    root: str
    _parent: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    _children: Dict[str, List[str]] = field(default_factory=dict)
    _cap: Dict[str, float] = field(default_factory=dict)
    #: memoized root->node path resistances.  Edges are append-only (a
    #: node's path to the root never changes once added), so entries
    #: never go stale — no invalidation needed.
    _rpath: Dict[str, float] = field(default_factory=dict, repr=False,
                                     compare=False)

    def __post_init__(self) -> None:
        self._cap.setdefault(self.root, 0.0)
        self._children.setdefault(self.root, [])

    # -- construction -------------------------------------------------------

    def add_edge(self, parent: str, child: str, resistance: float) -> None:
        if resistance <= 0:
            raise AnalysisError(f"edge {parent}->{child}: non-positive R")
        if parent not in self._cap:
            raise AnalysisError(f"parent node {parent!r} not in tree")
        if child in self._cap:
            raise AnalysisError(f"node {child!r} already in tree (not a tree?)")
        self._parent[child] = (parent, resistance)
        self._children.setdefault(parent, []).append(child)
        self._children.setdefault(child, [])
        self._cap.setdefault(child, 0.0)

    def add_cap(self, node: str, capacitance: float) -> None:
        if capacitance < 0:
            raise AnalysisError(f"negative capacitance at {node!r}")
        if node not in self._cap:
            raise AnalysisError(f"unknown node {node!r}")
        self._cap[node] += capacitance

    # -- access --------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """All nodes, root first, in insertion (topological) order."""
        return list(self._cap)

    @property
    def non_root_nodes(self) -> List[str]:
        return [n for n in self._cap if n != self.root]

    def cap(self, node: str) -> float:
        try:
            return self._cap[node]
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    def total_cap(self) -> float:
        return sum(self._cap.values())

    def parent_edge(self, node: str) -> Tuple[str, float]:
        """``(parent, resistance)`` of the edge above *node*."""
        try:
            return self._parent[node]
        except KeyError:
            raise AnalysisError(f"node {node!r} has no parent (root?)") from None

    def children(self, node: str) -> List[str]:
        return list(self._children.get(node, []))

    def contains(self, node: str) -> bool:
        return node in self._cap

    def path_to_root(self, node: str) -> Iterator[Tuple[str, str, float]]:
        """Edges from *node* up to the root as ``(child, parent, R)``."""
        if node not in self._cap:
            raise AnalysisError(f"unknown node {node!r}")
        current = node
        while current != self.root:
            parent, resistance = self._parent[current]
            yield current, parent, resistance
            current = parent

    def path_resistance(self, node: str) -> float:
        """``R_ii``: total resistance from the root down to *node*.

        Memoized as a prefix sum: the walk up stops at the first cached
        ancestor and fills the cache for every node it crossed, so N
        queries over one tree cost O(N) total instead of O(N * depth) —
        the scalar reference for the vectorized kernel's ``rpath`` pass.
        """
        if node not in self._cap:
            raise AnalysisError(f"unknown node {node!r}")
        cache = self._rpath
        chain: List[Tuple[str, float]] = []
        current = node
        total = 0.0
        while current != self.root:
            hit = cache.get(current)
            if hit is not None:
                total = hit
                break
            parent, resistance = self._parent[current]
            chain.append((current, resistance))
            current = parent
        for name, resistance in reversed(chain):
            total += resistance
            cache[name] = total
        return total

    def shared_resistance(self, node_i: str, node_k: str) -> float:
        """``R_ki``: resistance of the portion of the root→k path shared
        with the root→i path (the central quantity of the RPH bounds)."""
        path_i = {child for child, _, _ in self.path_to_root(node_i)}
        total = 0.0
        for child, _, resistance in self.path_to_root(node_k):
            if child in path_i:
                total += resistance
        return total

    # -- convenience builders ------------------------------------------------

    @classmethod
    def chain(cls, resistances: List[float], capacitances: List[float],
              root: str = "src", prefix: str = "n") -> "RCTree":
        """A uniform ladder: root -R1- n1 -R2- n2 … with C_k at n_k."""
        if len(resistances) != len(capacitances):
            raise AnalysisError("chain needs equal-length R and C lists")
        tree = cls(root)
        previous = root
        for index, (r, c) in enumerate(zip(resistances, capacitances), start=1):
            node = f"{prefix}{index}"
            tree.add_edge(previous, node, r)
            tree.add_cap(node, c)
            previous = node
        return tree

    def leaf(self) -> str:
        """The last node added (useful for chains)."""
        names = self.nodes
        if len(names) < 2:
            raise AnalysisError("tree has no non-root node")
        return names[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RCTree root={self.root!r} nodes={len(self._cap)} "
                f"Ctot={self.total_cap():.3g}F>")
