"""Reproducer artifacts: emit a shrunk failing case, reload it, replay it.

A reproducer is three sibling files sharing the case name:

* ``<case>.sim``  — the (shrunk) netlist in the stock ``.sim`` dialect;
* ``<case>.vec``  — the (shrunk) vector batch in the stock ``.vec``
  grammar (two-edge ``~`` tokens and ``/SLOPE`` suffixes keep clock
  phases and input slopes exact);
* ``<case>.json`` — the manifest: generator seed/family, technology,
  delay model, implicated engine modes, the clock schedule (if any), and
  the discrepancy records the case was failing with.

``repro verify --replay <case>.json`` reloads the pair through the stock
parsers and re-runs exactly the implicated modes — the round trip is
bit-exact because generated values live on integer grids and the dumpers
print 12 significant digits.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..batch.vectors import dump_vector_file, load_vector_file
from ..errors import ReproError
from ..netlist import sim_format
from ..tech import Technology
from .diff import Discrepancy
from .generate import ConformanceCase
from .modes import EngineMode, mode_from_name

__all__ = ["emit_reproducer", "load_reproducer"]


def _schedule_payload(case: ConformanceCase) -> Optional[dict]:
    if case.schedule is None:
        return None
    return {
        "period": case.schedule.period,
        "clock_slope": case.schedule.clock_slope,
        "phases": {name: {"rise": phase.rise, "fall": phase.fall}
                   for name, phase in case.schedule.phases.items()},
    }


def _load_schedule(payload: Optional[dict]):
    if not payload:
        return None
    from ..core.timing.clocking import ClockPhase, ClockSchedule

    phases = {name: ClockPhase(name, spec["rise"], spec["fall"])
              for name, spec in payload["phases"].items()}
    return ClockSchedule(period=payload["period"], phases=phases,
                         clock_slope=payload.get("clock_slope", 0.0))


def emit_reproducer(directory: str, case: ConformanceCase,
                    discrepancies: Sequence[Discrepancy], tech_name: str,
                    model_name: str, mode_names: Sequence[str]) -> str:
    """Write the ``.sim``/``.vec``/``.json`` triple; returns the manifest
    path (the ``--replay`` argument)."""
    os.makedirs(directory, exist_ok=True)
    sim_path = os.path.join(directory, f"{case.name}.sim")
    vec_path = os.path.join(directory, f"{case.name}.vec")
    manifest_path = os.path.join(directory, f"{case.name}.json")
    try:
        sim_format.dump(case.network, sim_path)
    except OSError as exc:
        raise ReproError(f"cannot write reproducer {sim_path}: {exc}")
    dump_vector_file(case.vectors, vec_path,
                     header=f"reproducer vectors for {case.name}")
    manifest = {
        "case": case.name,
        "seed": case.seed,
        "family": case.family,
        "tech": tech_name,
        "model": model_name,
        "modes": list(mode_names),
        "sim": os.path.basename(sim_path),
        "vec": os.path.basename(vec_path),
        "clocks": dict(case.clocks),
        "schedule": _schedule_payload(case),
        "transistors": case.size,
        "discrepancies": [
            {"kind": d.kind, "mode_a": d.mode_a, "mode_b": d.mode_b,
             "label": d.label, "event": d.event, "detail": d.detail}
            for d in discrepancies],
        "replay": f"repro verify --replay {manifest_path}",
    }
    try:
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        raise ReproError(f"cannot write manifest {manifest_path}: {exc}")
    return manifest_path


def load_reproducer(manifest_path: str, tech: Technology
                    ) -> Tuple[ConformanceCase, List[EngineMode], str, dict]:
    """Reload a reproducer manifest: the reconstructed case, the
    implicated modes, the model name, and the raw manifest dict."""
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read manifest {manifest_path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed manifest {manifest_path}: {exc}")
    base = os.path.dirname(os.path.abspath(manifest_path))
    for key in ("case", "sim", "vec", "modes", "model"):
        if key not in manifest:
            raise ReproError(
                f"manifest {manifest_path} is missing {key!r}")
    sim_path = os.path.join(base, manifest["sim"])
    vec_path = os.path.join(base, manifest["vec"])
    network = sim_format.load(sim_path, tech)
    vectors = load_vector_file(vec_path)
    clocks: Dict[str, str] = dict(manifest.get("clocks") or {})
    clocks = {node: phase for node, phase in clocks.items()
              if network.has_node(node)}
    case = ConformanceCase(
        name=manifest["case"], seed=int(manifest.get("seed", 0)),
        family=manifest.get("family", "replay"), network=network,
        vectors=vectors, clocks=clocks,
        schedule=_load_schedule(manifest.get("schedule")))
    modes = [mode_from_name(name) for name in manifest["modes"]]
    return case, modes, manifest["model"], manifest
