"""Metamorphic invariants on the delay model itself.

Differential mode comparison catches engines disagreeing with each
other; these checks catch the model disagreeing with *physics* — the
orderings Ousterhout's RC formulation provably satisfies, checked on the
generated case (and on standalone random RC trees):

* **capacitance monotonicity** — adding grounded capacitance to any node
  can only delay arrivals.  Provable under :class:`RCTreeModel` (Elmore
  ``T_D`` is monotone in every node cap and the model ignores input
  slope, so worse stage delays can only push the downstream max later);
* **resize direction** — widening a transistor scales its static
  resistance by exactly ``1/factor`` (R ∝ L/W), and widening every
  device of an inverter driving a dominating fixed load must not slow
  the output (the R halving provably beats the diffusion-cap growth);
* **RPH bracketing** — on random RC trees, the Penfield-Rubinstein-
  Horowitz bounds of :mod:`repro.rctree.bounds` must bracket the exact
  eigendecomposition crossing of :mod:`repro.rctree.exact` at every
  threshold, the lower bound must not exceed the Elmore point estimate,
  and both Elmore and the exact crossing must be cap-monotone.

Violations are reported as ``kind="invariant"`` discrepancies so they
flow through the same shrink/emit pipeline as mode mismatches.
"""

from __future__ import annotations

import random
from typing import List

from ..core.models import RCTreeModel
from ..core.timing import TimingAnalyzer
from ..netlist import Network
from ..perf import PerfCounters
from ..rctree import RCTree, delay_bounds, kernel_available
from ..tech import Transition
from .diff import Discrepancy
from .generate import ConformanceCase

__all__ = ["check_invariants", "check_tree_invariants"]

#: Relative slack for "must not decrease/exceed" comparisons — matches
#: the engine-wide tie-break epsilon.
_RTOL = 1e-9
_ABS = 1e-15

_EXTRA_CAP = 25e-15
_WIDEN_FACTOR = 2.0


def _clone(network: Network) -> Network:
    clone = Network(network.tech, name=network.name)
    clone.merge_from(network)
    return clone


def _arrivals(network: Network, inputs) -> dict:
    return TimingAnalyzer(network, model=RCTreeModel()).analyze(
        inputs).arrivals


def _check_cap_monotonicity(case: ConformanceCase, rng: random.Random,
                            perf: PerfCounters) -> List[Discrepancy]:
    """Adding 25 fF to one internal node must not make anything earlier."""
    internal = sorted(
        node.name for node in case.network.signal_nodes
        if node.role.name != "INPUT")
    if not internal or not case.vectors:
        return []
    node = rng.choice(internal)
    loaded_net = _clone(case.network)
    loaded_net.add_node(node, capacitance=_EXTRA_CAP)
    vector = case.vectors[0]
    perf.incr("verify_invariant_checks")
    base = _arrivals(case.network, vector.inputs)
    loaded = _arrivals(loaded_net, vector.inputs)
    findings = []
    for event, arrival in base.items():
        other = loaded.get(event)
        if other is None:
            continue
        if other.time < arrival.time - abs(arrival.time) * _RTOL - _ABS:
            findings.append(Discrepancy(
                case_name=case.name, kind="invariant",
                mode_a="rc-tree", mode_b="rc-tree+cap",
                label=vector.label, event=f"{event.node}:{event.transition.value}",
                detail=(f"added {_EXTRA_CAP * 1e15:.0f}fF at {node!r} made "
                        f"{event.node} arrive earlier: {arrival.time!r} -> "
                        f"{other.time!r}")))
    return findings


def _check_resize_direction(case: ConformanceCase, rng: random.Random,
                            perf: PerfCounters) -> List[Discrepancy]:
    findings: List[Discrepancy] = []
    tech = case.network.tech
    devices = case.network.transistors
    if devices:
        device = rng.choice(devices)
        for transition in Transition:
            if (device.kind, transition) not in tech.static_resistance:
                continue
            perf.incr("verify_invariant_checks")
            base_r = tech.resistance(device.kind, transition,
                                     device.width, device.length)
            wide_r = tech.resistance(device.kind, transition,
                                     device.width * _WIDEN_FACTOR,
                                     device.length)
            if abs(wide_r - base_r / _WIDEN_FACTOR) > base_r * _RTOL:
                findings.append(Discrepancy(
                    case_name=case.name, kind="invariant",
                    mode_a="resize", mode_b="resistance",
                    detail=(f"widening {device.name!r} by {_WIDEN_FACTOR:g} "
                            f"({transition.value}) scaled R {base_r!r} -> "
                            f"{wide_r!r}, expected "
                            f"{base_r / _WIDEN_FACTOR!r}")))

    # End-to-end: an inverter into a dominating fixed load must not get
    # slower when every device is widened (R halves; the diffusion-cap
    # growth is bounded by the load).
    from ..circuits import inverter_chain

    perf.incr("verify_invariant_checks")
    net = inverter_chain(tech, stages=1, load_cap=200e-15)
    inputs = {"in": 0.0}
    before = _arrivals(net, inputs)
    for device in net.transistors:
        net.resize_transistor(device.name,
                              width=device.width * _WIDEN_FACTOR)
    after = _arrivals(net, inputs)
    for event, arrival in before.items():
        if event.node != "out":
            continue
        other = after.get(event)
        if other is None:
            continue
        if other.time > arrival.time + abs(arrival.time) * _RTOL + _ABS:
            findings.append(Discrepancy(
                case_name=case.name, kind="invariant",
                mode_a="resize", mode_b="delay",
                event=f"{event.node}:{event.transition.value}",
                detail=(f"widening the loaded inverter {_WIDEN_FACTOR:g}x "
                        f"slowed {event.node}: {arrival.time!r} -> "
                        f"{other.time!r}")))
    return findings


def _random_tree(rng: random.Random, nodes: int) -> RCTree:
    """A random branchy RC tree on integer R/C grids."""
    tree = RCTree("n0")
    tree.add_cap("n0", rng.randint(1, 20) * 1e-15)
    names = ["n0"]
    for index in range(1, nodes):
        parent = rng.choice(names)
        child = f"n{index}"
        tree.add_edge(parent, child, float(rng.randint(100, 5000)))
        tree.add_cap(child, rng.randint(1, 50) * 1e-15)
        names.append(child)
    return tree


def check_tree_invariants(seed: int, perf: PerfCounters,
                          case_name: str = "tree",
                          trees: int = 2) -> List[Discrepancy]:
    """RPH bracketing + cap monotonicity on standalone random RC trees.

    Needs the numpy-backed exact eigendecomposition oracle; silently
    skipped when the vectorized kernel is unavailable.
    """
    if not kernel_available():  # pragma: no cover - numpy always in CI
        return []
    from ..rctree import exact_delay

    rng = random.Random(seed * 69_069 + 12_345)
    findings: List[Discrepancy] = []
    for _ in range(trees):
        tree = _random_tree(rng, rng.randint(3, 9))
        targets = rng.sample(tree.nodes[1:], min(2, len(tree.nodes) - 1))
        for node in targets:
            for threshold in (0.35, 0.5, 0.8):
                perf.incr("verify_invariant_checks")
                bounds = delay_bounds(tree, node, threshold)
                exact = exact_delay(tree, node, threshold)
                slack = max(abs(exact), abs(bounds.elmore)) * _RTOL + _ABS
                if not (bounds.lower <= exact + slack
                        and exact <= bounds.upper + slack):
                    findings.append(Discrepancy(
                        case_name=case_name, kind="invariant",
                        mode_a="rph-bounds", mode_b="exact",
                        event=f"{node}@{threshold:g}",
                        detail=(f"bracket violated: lower={bounds.lower!r} "
                                f"exact={exact!r} upper={bounds.upper!r}")))
                # lower <= T_D is only provable for thresholds <= 0.5
                # (there T_R*ln(T_D/(T_P*(1-v))) <= T_R*ln2 < T_D via
                # T_P >= T_D >= T_R); at 0.8 a single-pole tree has
                # lower = T_D*ln5 > T_D, legitimately.
                if threshold <= 0.5 and bounds.lower > bounds.elmore + slack:
                    findings.append(Discrepancy(
                        case_name=case_name, kind="invariant",
                        mode_a="rph-bounds", mode_b="elmore",
                        event=f"{node}@{threshold:g}",
                        detail=(f"lower bound {bounds.lower!r} exceeds "
                                f"Elmore {bounds.elmore!r} at threshold "
                                f"{threshold:g} <= 0.5")))
            # Cap monotonicity of both estimates at the 50% threshold.
            perf.incr("verify_invariant_checks")
            grown = _grow_cap(tree, rng.choice(tree.nodes))
            before_b = delay_bounds(tree, node, 0.5)
            after_b = delay_bounds(grown, node, 0.5)
            before_x = exact_delay(tree, node, 0.5)
            after_x = exact_delay(grown, node, 0.5)
            slack = max(abs(before_x), abs(before_b.elmore)) * _RTOL + _ABS
            if after_b.elmore < before_b.elmore - slack \
                    or after_x < before_x - slack:
                findings.append(Discrepancy(
                    case_name=case_name, kind="invariant",
                    mode_a="cap-monotone", mode_b="tree",
                    event=f"{node}@0.5",
                    detail=(f"added cap made the tree faster: elmore "
                            f"{before_b.elmore!r} -> {after_b.elmore!r}, "
                            f"exact {before_x!r} -> {after_x!r}")))
    return findings


def _grow_cap(tree: RCTree, node: str) -> RCTree:
    """A copy of *tree* with 10 fF added at *node*."""
    clone = RCTree(tree.root)
    for child in tree.nodes:
        if child == tree.root:
            continue
        parent, resistance = tree.parent_edge(child)
        clone.add_edge(parent, child, resistance)
    for name in tree.nodes:
        cap = tree.cap(name)
        if cap:
            clone.add_cap(name, cap)
    clone.add_cap(node, 10e-15)
    return clone


def check_invariants(case: ConformanceCase, seed: int,
                     perf: PerfCounters) -> List[Discrepancy]:
    """All model-level invariant checks for one case."""
    rng = random.Random(seed * 40_503 + 977)
    findings = _check_cap_monotonicity(case, rng, perf)
    findings += _check_resize_direction(case, rng, perf)
    findings += check_tree_invariants(seed, perf, case_name=case.name,
                                      trees=1)
    perf.incr("verify_invariant_failures", len(findings))
    return findings
