"""Seeded generation of random-but-valid conformance cases.

A *case* is one switch-level netlist plus a batch of labeled input
vectors — the unit the :class:`~repro.verify.runner.ConformanceRunner`
pushes through every engine mode.  Cases are drawn from the circuit
families of :mod:`repro.circuits.generators` (random gate DAGs, inverter
chains, pass chains, mux trees, bridged DAGs, two-phase clocked shift
registers), size-parameterized and fully determined by ``(seed, index)``:
the same pair always regenerates the same netlist and vectors, on any
platform, because every draw goes through a private ``random.Random``
over integer grids.

Validity invariants every generated case honours:

* the stage graph is feed-forward (a bridge that would close a cycle is
  dropped), so the analyzer never hits its iteration cap;
* every primary input has a spec in every vector, and at least one input
  transitions (so each vector produces arrivals);
* all times sit on a 1 ps grid and capacitances on a 1 fF grid — exact
  under the ``.sim``/``.vec`` round trip the shrinker's reproducer
  artifacts depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..batch.vectors import Vector
from ..circuits import (inverter_chain, mux_tree, pass_chain,
                        random_logic_dag, shift_register)
from ..core.timing import InputSpec
from ..core.timing.clocking import ClockSchedule, clock_input_spec
from ..core.timing.stage_graph import StageGraph
from ..netlist import Network
from ..tech import DeviceKind, Technology

__all__ = ["FAMILIES", "ConformanceCase", "generate_case"]

#: Circuit families the generator draws from, in draw order.
FAMILIES = ("dag", "chain", "passchain", "mux", "bridge", "clocked")

#: Arrival-time grid (1 ps) and window (0..1 ns) for generated vectors.
_TIME_GRID = 1e-12
_TIME_STEPS = 1000
#: Input transition times drawn per spec (0 = ideal step, twice-weighted).
_SLOPES = (0.0, 0.0, 0.2e-9, 0.5e-9)


@dataclass
class ConformanceCase:
    """One generated netlist + vector batch (plus clocking, if any)."""

    name: str
    seed: int
    family: str
    network: Network
    vectors: List[Vector]
    #: clock input node -> phase name of :attr:`schedule` (clocked cases)
    clocks: Dict[str, str] = field(default_factory=dict)
    schedule: Optional[ClockSchedule] = None

    @property
    def size(self) -> int:
        return len(self.network.transistors)

    def with_parts(self, network: Optional[Network] = None,
                   vectors: Optional[List[Vector]] = None
                   ) -> "ConformanceCase":
        """A copy with the network and/or vectors swapped (the shrinker's
        candidate constructor); clocks are pruned to surviving nodes."""
        case = replace(self,
                       network=self.network if network is None else network,
                       vectors=self.vectors if vectors is None else vectors)
        if network is not None and case.clocks:
            case.clocks = {node: phase for node, phase in case.clocks.items()
                           if network.has_node(node)}
        return case


def _case_rng(seed: int, index: int) -> random.Random:
    # Mix with distinct large odd constants so case streams for nearby
    # seeds do not overlap.
    return random.Random((seed * 1_000_003 + index) * 2_654_435_761 + index)


def _grid_time(rng: random.Random) -> float:
    return rng.randint(0, _TIME_STEPS) * _TIME_GRID


def _input_spec(rng: random.Random, force_transition: bool) -> InputSpec:
    """One randomized spec: usually both edges, sometimes one-sided, and
    (for side inputs only) occasionally static."""
    style = rng.random()
    time = _grid_time(rng)
    slope = rng.choice(_SLOPES)
    if not force_transition and style < 0.10:
        return InputSpec(arrival_rise=None, arrival_fall=None)
    if style < 0.20:
        return InputSpec(arrival_rise=time, arrival_fall=None, slope=slope)
    if style < 0.30:
        return InputSpec(arrival_rise=None, arrival_fall=time, slope=slope)
    return InputSpec(arrival_rise=time, arrival_fall=time, slope=slope)


def _random_vectors(rng: random.Random, input_names: List[str], count: int,
                    pinned: Optional[Dict[str, InputSpec]] = None
                    ) -> List[Vector]:
    """*count* labeled vectors over *input_names*; *pinned* specs (the
    clock phases) are copied into every vector unchanged."""
    pinned = pinned or {}
    vectors = []
    for position in range(count):
        inputs: Dict[str, InputSpec] = {}
        forced = False
        for name in input_names:
            if name in pinned:
                inputs[name] = pinned[name]
                continue
            inputs[name] = _input_spec(rng, force_transition=not forced)
            forced = True
        vectors.append(Vector(label=f"v{position}", inputs=inputs))
    return vectors


def _build_dag(rng: random.Random, tech: Technology, max_size: int,
               index: int) -> Network:
    gates = rng.randint(2, max(3, max_size // 4))
    return random_logic_dag(tech, seed=rng.randrange(2 ** 31), gates=gates,
                            inputs=rng.randint(2, 4),
                            name=f"case{index}-dag")


def _build_bridge(rng: random.Random, tech: Technology, max_size: int,
                  index: int) -> Network:
    """A random DAG with one extra pass device bridging two gate outputs
    (gated by a fresh input ``br``).  If the bridge would close a stage
    cycle, it is left off — the case degrades to a plain DAG."""
    net = _build_dag(rng, tech, max_size, index)
    outputs = [n.name for n in net.signal_nodes
               if n.name.startswith("g") and n.name[1:].isdigit()]
    if len(outputs) >= 2:
        a, b = rng.sample(sorted(outputs), 2)
        trial = Network(tech, name=net.name)
        trial.merge_from(net)
        # Explicit name: merge_from keeps source names but not the fresh-
        # name counter, so letting add_transistor autoname would collide.
        trial.add_transistor(DeviceKind.NMOS_ENH, "br", a, b, name="mbridge")
        trial.mark_input("br")
        if not StageGraph.build(trial).has_feedback():
            return trial
    return net


def _build_clocked(rng: random.Random, tech: Technology, max_size: int,
                   index: int):
    """Two-phase shift register + its clock schedule.  Returns
    ``(network, clocks, schedule)``."""
    stages = rng.randint(1, max(1, max_size // 6))
    net = shift_register(tech, stages=stages, name=f"case{index}-shiftreg")
    period = rng.choice((2e-9, 3e-9, 4e-9))
    schedule = ClockSchedule.two_phase(period, separation=0.1e-9,
                                       clock_slope=0.1e-9)
    return net, {"phi1": "phi1", "phi2": "phi2"}, schedule


def generate_case(tech: Technology, seed: int, index: int,
                  max_size: int = 24,
                  vectors_per_case: int = 4) -> ConformanceCase:
    """Deterministically build case *index* of the *seed* stream.

    *max_size* caps the transistor count (family parameters are drawn so
    the cap holds); *vectors_per_case* sets the vector batch size.
    """
    rng = _case_rng(seed, index)
    family = FAMILIES[rng.randrange(len(FAMILIES))]
    clocks: Dict[str, str] = {}
    schedule: Optional[ClockSchedule] = None
    pinned: Optional[Dict[str, InputSpec]] = None

    if family == "dag":
        net = _build_dag(rng, tech, max_size, index)
    elif family == "chain":
        net = inverter_chain(tech, stages=rng.randint(1, max(1, max_size // 3)),
                             fanout=rng.randint(1, 2),
                             load_cap=rng.randint(0, 60) * 1e-15,
                             name=f"case{index}-chain")
    elif family == "passchain":
        net = pass_chain(tech, length=rng.randint(1, 5),
                         load_cap=rng.randint(5, 40) * 1e-15,
                         name=f"case{index}-passchain")
    elif family == "mux":
        net = mux_tree(tech, select_bits=rng.randint(1, 2),
                       load_cap=rng.randint(10, 50) * 1e-15,
                       name=f"case{index}-mux")
    elif family == "bridge":
        net = _build_bridge(rng, tech, max_size, index)
    else:  # clocked
        net, clocks, schedule = _build_clocked(rng, tech, max_size, index)
        pinned = {
            node: clock_input_spec(schedule.phase(phase),
                                   schedule.clock_slope)
            for node, phase in clocks.items()
        }

    input_names = sorted(n.name for n in net.inputs())
    vectors = _random_vectors(rng, input_names, vectors_per_case,
                              pinned=pinned)
    return ConformanceCase(name=f"case{index:04d}-{family}", seed=seed,
                           family=family, network=net, vectors=vectors,
                           clocks=clocks, schedule=schedule)
