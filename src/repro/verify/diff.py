"""Discrepancy records and outcome comparison.

The conformance contract is asymmetric in tightness:

* ``rtol == 0`` — bit-identical: every arrival event present in one
  outcome must be present in the other with ``==``-equal time and slope,
  and the hazard / setup-check report strings must match byte-for-byte.
  This is the contract between any mode and its matched reference
  (same kernel, same slope quantum);
* ``rtol > 0`` — numeric agreement within a relative tolerance, string
  reports skipped (their fixed-precision formatting can legitimately
  flip a digit at the tolerance boundary).  This is the cross-kernel
  contract (numpy vs. python evaluate in different float orders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .modes import ModeOutcome

__all__ = ["Discrepancy", "compare_outcomes"]

#: Absolute floor under the relative comparisons (arrivals are ~1e-9 s).
_ATOL = 1e-21


@dataclass(frozen=True)
class Discrepancy:
    """One observed disagreement (mode pair, invariant, or replay)."""

    case_name: str
    #: "arrival-set" / "arrival-time" / "arrival-slope" / "label-set" /
    #: "hazard-report" / "setup-report" / "invariant"
    kind: str
    mode_a: str
    mode_b: str
    #: vector label ("" when the discrepancy is not vector-scoped)
    label: str = ""
    #: "node:rise"-style event tag ("" when not event-scoped)
    event: str = ""
    detail: str = ""

    def key(self) -> Tuple[str, str, str, str, str]:
        """Identity modulo float formatting — what a replayed reproducer
        must re-produce for the round trip to count as faithful."""
        return (self.kind, self.mode_a, self.mode_b, self.label, self.event)

    def __str__(self) -> str:
        scope = f" {self.label}" if self.label else ""
        scope += f" {self.event}" if self.event else ""
        return (f"[{self.kind}] {self.case_name}{scope}: "
                f"{self.mode_a} vs {self.mode_b}: {self.detail}")


def _close(a: float, b: float, rtol: float) -> bool:
    if rtol <= 0.0:
        return a == b
    return math.isclose(a, b, rel_tol=rtol, abs_tol=_ATOL)


def compare_outcomes(case_name: str, a: ModeOutcome, b: ModeOutcome,
                     rtol: float = 0.0) -> List[Discrepancy]:
    """All disagreements between two outcomes of the same case."""
    findings: List[Discrepancy] = []
    name_a, name_b = a.mode.name, b.mode.name

    def report(kind: str, label: str = "", event: str = "",
               detail: str = "") -> None:
        findings.append(Discrepancy(
            case_name=case_name, kind=kind, mode_a=name_a, mode_b=name_b,
            label=label, event=event, detail=detail))

    if set(a.arrivals) != set(b.arrivals):
        report("label-set", detail=(
            f"vector labels differ: {sorted(a.arrivals)} vs "
            f"{sorted(b.arrivals)}"))
        return findings

    for label in a.arrivals:
        mine, theirs = a.arrivals[label], b.arrivals[label]
        if set(mine) != set(theirs):
            only_a = {f"{e.node}:{e.transition.value}"
                      for e in set(mine) - set(theirs)}
            only_b = {f"{e.node}:{e.transition.value}"
                      for e in set(theirs) - set(mine)}
            report("arrival-set", label=label, detail=(
                f"events only in {name_a}: {sorted(only_a)}; only in "
                f"{name_b}: {sorted(only_b)}"))
            continue
        for event in sorted(mine, key=lambda e: (e.node,
                                                 e.transition.value)):
            lhs, rhs = mine[event], theirs[event]
            tag = f"{event.node}:{event.transition.value}"
            if not _close(lhs.time, rhs.time, rtol):
                report("arrival-time", label=label, event=tag,
                       detail=f"{lhs.time!r} vs {rhs.time!r}")
            if not _close(lhs.slope, rhs.slope, rtol):
                report("arrival-slope", label=label, event=tag,
                       detail=f"{lhs.slope!r} vs {rhs.slope!r}")

    if rtol <= 0.0:
        if a.hazard_report != b.hazard_report:
            report("hazard-report",
                   detail="charge-sharing hazard reports differ")
        if set(a.setup_reports) != set(b.setup_reports):
            report("setup-report", detail="setup-check coverage differs")
        else:
            for label, text in a.setup_reports.items():
                if b.setup_reports[label] != text:
                    report("setup-report", label=label,
                           detail="setup-check reports differ")
    return findings
