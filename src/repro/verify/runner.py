"""The conformance runner: generate → run matrix → compare → shrink → emit.

:func:`check_case` encodes the comparability contract of
:mod:`repro.verify.modes`:

* every mode is compared **bit-identically** against the brute-force
  serial reference sharing its ``(kernel, slope_quantum)`` pair — the
  matched reference is synthesized on demand when the mode list does not
  already contain it;
* the exact (unquantized) references of the two kernels are additionally
  compared against each other at 1e-9 relative tolerance, numeric
  arrivals only — this is the cross-kernel check that catches a bug in
  *one* backend (e.g. the injected template-scale mutation of
  ``rc_tree_model.set_template_delay_scale``).

:class:`ConformanceRunner` drives the case stream, layers the
metamorphic invariants on top, and on failure delta-debugs the case to a
minimal reproducer (re-running only the implicated modes) and emits the
``.sim``/``.vec``/manifest triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..perf import PerfCounters
from ..tech import Technology
from .artifacts import emit_reproducer
from .diff import Discrepancy, compare_outcomes
from .generate import ConformanceCase, generate_case
from .invariants import check_invariants
from .modes import (EngineMode, ModeOutcome, default_modes, mode_from_name,
                    run_mode)
from .shrink import shrink_case

__all__ = ["ConformanceConfig", "CaseFailure", "ConformanceReport",
           "ConformanceRunner", "check_case", "format_verify_report"]

#: Cross-kernel agreement tolerance (mirrors tests/test_kernel_differential).
CROSS_KERNEL_RTOL = 1e-9


@dataclass
class ConformanceConfig:
    """Everything one conformance run depends on."""

    tech: Technology
    tech_name: str = "cmos3"
    model_name: str = "rc-tree"
    seed: int = 0
    cases: int = 20
    max_size: int = 24
    vectors_per_case: int = 4
    modes: List[EngineMode] = field(default_factory=default_modes)
    invariants: bool = True
    shrink: bool = True
    #: reproducer output directory (None = don't emit artifacts)
    out_dir: Optional[str] = None


@dataclass
class CaseFailure:
    """One failing case, as shrunk and emitted."""

    case: ConformanceCase
    discrepancies: List[Discrepancy]
    shrunk: Optional[ConformanceCase] = None
    manifest_path: Optional[str] = None

    @property
    def shrunk_size(self) -> int:
        return (self.shrunk or self.case).size


@dataclass
class ConformanceReport:
    """The outcome of one :meth:`ConformanceRunner.run`."""

    cases_run: int
    failures: List[CaseFailure]
    perf: PerfCounters

    @property
    def ok(self) -> bool:
        return not self.failures


def check_case(case: ConformanceCase, modes: Sequence[EngineMode],
               model_name: str, perf: PerfCounters) -> List[Discrepancy]:
    """Run *case* under every mode and return all discrepancies."""
    outcomes: Dict[str, ModeOutcome] = {}
    baselines: Dict[tuple, ModeOutcome] = {}

    def run(mode: EngineMode) -> ModeOutcome:
        outcome = outcomes.get(mode.name)
        if outcome is None:
            outcome = run_mode(case, mode, model_name=model_name)
            outcomes[mode.name] = outcome
            perf.incr("verify_mode_runs")
            if mode.is_reference and mode.reference_key not in baselines:
                baselines[mode.reference_key] = outcome
        return outcome

    findings: List[Discrepancy] = []
    # First pass registers every explicit reference mode as a baseline so
    # the stock "reference" entry is the numpy baseline rather than a
    # synthesized twin.
    for mode in modes:
        if mode.is_reference:
            run(mode)
    for mode in modes:
        outcome = run(mode)
        if mode.is_reference:
            continue
        baseline = baselines.get(mode.reference_key)
        if baseline is None:
            baseline = run(mode.reference())
        perf.incr("verify_comparisons")
        findings += compare_outcomes(case.name, baseline, outcome, rtol=0.0)

    # Cross-kernel agreement of the exact references, when both exist.
    exact = {key[0]: outcome for key, outcome in baselines.items()
             if key[1] == 0.0}
    if "numpy" in exact and "python" in exact:
        perf.incr("verify_comparisons")
        findings += compare_outcomes(case.name, exact["numpy"],
                                     exact["python"],
                                     rtol=CROSS_KERNEL_RTOL)
    perf.incr("verify_discrepancies", len(findings))
    return findings


def _implicated_modes(discrepancies: Sequence[Discrepancy]
                      ) -> List[EngineMode]:
    """The engine modes a shrink candidate must re-run — the union of
    both sides of every non-invariant discrepancy."""
    names: List[str] = []
    for finding in discrepancies:
        if finding.kind == "invariant":
            continue
        for name in (finding.mode_a, finding.mode_b):
            if name not in names:
                names.append(name)
    return [mode_from_name(name) for name in names]


class ConformanceRunner:
    """Differential fuzzing loop over generated conformance cases."""

    def __init__(self, config: ConformanceConfig,
                 perf: Optional[PerfCounters] = None):
        self.config = config
        self.perf = perf if perf is not None else PerfCounters()

    # -- single case --------------------------------------------------------

    def check(self, case: ConformanceCase,
              modes: Optional[Sequence[EngineMode]] = None
              ) -> List[Discrepancy]:
        """Mode-matrix comparison plus (optionally) invariants."""
        cfg = self.config
        findings = check_case(case, modes or cfg.modes, cfg.model_name,
                              self.perf)
        if cfg.invariants and modes is None:
            findings += check_invariants(case, cfg.seed + case.seed,
                                         self.perf)
        return findings

    def refind(self, candidate: ConformanceCase,
               discrepancies: Sequence[Discrepancy]) -> List[Discrepancy]:
        """Re-run only what *discrepancies* implicate — the engine modes
        named by mode-pair discrepancies plus (when any invariant
        discrepancy is present) the invariant checks."""
        cfg = self.config
        modes = _implicated_modes(discrepancies)
        found: List[Discrepancy] = []
        if modes:
            found += check_case(candidate, modes, cfg.model_name, self.perf)
        if any(d.kind == "invariant" for d in discrepancies):
            found += check_invariants(candidate,
                                      cfg.seed + candidate.seed, self.perf)
        return found

    def _still_fails(self, discrepancies: Sequence[Discrepancy]):
        def predicate(candidate: ConformanceCase) -> bool:
            try:
                found = self.refind(candidate, discrepancies)
            except ReproError:
                return False  # candidate no longer analyzes — invalid
            # Any persisting discrepancy keeps the candidate (the classic
            # ddmin relaxation: the *failure*, not its exact location,
            # must persist; shrinking may move labels/events around).
            return bool(found)

        return predicate

    def shrink(self, case: ConformanceCase,
               discrepancies: Sequence[Discrepancy]) -> ConformanceCase:
        return shrink_case(case, self._still_fails(discrepancies),
                           self.perf)

    # -- the full loop ------------------------------------------------------

    def run_case(self, index: int) -> Optional[CaseFailure]:
        cfg = self.config
        case = generate_case(cfg.tech, cfg.seed, index,
                             max_size=cfg.max_size,
                             vectors_per_case=cfg.vectors_per_case)
        self.perf.incr("verify_cases")
        discrepancies = self.check(case)
        if not discrepancies:
            return None
        failure = CaseFailure(case=case, discrepancies=list(discrepancies))
        if cfg.shrink:
            failure.shrunk = self.shrink(case, discrepancies)
        if cfg.out_dir:
            emitted = failure.shrunk or case
            recorded = list(discrepancies)
            if failure.shrunk is not None:
                # Record what the *shrunk* case actually fails with, so a
                # --replay of the emitted pair matches the manifest.
                recorded = self.refind(failure.shrunk, discrepancies)
            # Record the implicated modes so --replay runs exactly what
            # the recorded discrepancies need (all modes as a fallback
            # for invariant-only failures).
            implicated = _implicated_modes(recorded) or cfg.modes
            failure.manifest_path = emit_reproducer(
                cfg.out_dir, emitted, recorded, cfg.tech_name,
                cfg.model_name, [m.name for m in implicated])
        return failure

    def run(self) -> ConformanceReport:
        failures = []
        for index in range(self.config.cases):
            failure = self.run_case(index)
            if failure is not None:
                failures.append(failure)
        return ConformanceReport(cases_run=self.config.cases,
                                 failures=failures, perf=self.perf)


def format_verify_report(report: ConformanceReport,
                         modes: Sequence[EngineMode],
                         max_listed: int = 10) -> str:
    """The human-readable summary ``repro verify`` prints."""
    perf = report.perf
    lines = [
        f"conformance: {report.cases_run} case(s) x "
        f"{len(modes)} mode(s) [{', '.join(m.name for m in modes)}]",
        f"  mode runs:        {perf.get('verify_mode_runs')}",
        f"  comparisons:      {perf.get('verify_comparisons')}",
        f"  invariant checks: {perf.get('verify_invariant_checks')}",
        f"  discrepancies:    {perf.get('verify_discrepancies')}",
    ]
    if perf.get("verify_shrink_attempts"):
        lines.append(
            f"  shrink: {perf.get('verify_shrink_removed')} removal(s) in "
            f"{perf.get('verify_shrink_attempts')} attempt(s)")
    if report.ok:
        lines.append("conformance: PASS")
        return "\n".join(lines)
    lines.append(f"conformance: FAIL ({len(report.failures)} case(s))")
    for failure in report.failures:
        shrunk = failure.shrunk
        size_note = (f" -> shrunk to {shrunk.size} transistor(s), "
                     f"{len(shrunk.vectors)} vector(s)") if shrunk else ""
        lines.append(f"  {failure.case.name}: "
                     f"{len(failure.discrepancies)} discrepancy(ies), "
                     f"{failure.case.size} transistor(s){size_note}")
        for finding in failure.discrepancies[:max_listed]:
            lines.append(f"    {finding}")
        hidden = len(failure.discrepancies) - max_listed
        if hidden > 0:
            lines.append(f"    ... and {hidden} more")
        if failure.manifest_path:
            lines.append(f"    reproducer: {failure.manifest_path}")
    return "\n".join(lines)
