"""Greedy delta-debugging of a failing conformance case.

Given a case and a ``still_fails`` predicate (supplied by the runner —
it re-runs only the implicated engine modes), the shrinker repeatedly
tries to delete one vector / transistor / resistor / capacitor at a
time, keeping each deletion whose candidate still reproduces the
discrepancy, and loops over the passes until a whole round removes
nothing.  Candidates that no longer analyze at all (the deletion
orphaned a driven node, emptied a vector, …) raise
:class:`~repro.errors.ReproError` inside the predicate, count as *not*
failing, and are simply skipped — greedy one-at-a-time deletion plus a
round loop is the classic ddmin simplification and converges to a
1-minimal reproducer in O(rounds × elements) engine runs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..batch.vectors import Vector
from ..netlist import Network, NodeRole
from ..perf import PerfCounters
from .generate import ConformanceCase

__all__ = ["subset_network", "shrink_case"]

#: Round cap — each round is a full vector/device/element sweep, and a
#: round that removes nothing terminates early, so this only guards
#: against pathological oscillation.
_MAX_ROUNDS = 8


def subset_network(network: Network, keep_transistors: Sequence[str],
                   keep_resistors: Sequence[str] = (),
                   keep_capacitors: Sequence[str] = ()) -> Network:
    """A copy of *network* containing only the named elements (plus the
    nodes they reference, with their original roles and grounded caps)."""
    keep_t, keep_r, keep_c = (set(keep_transistors), set(keep_resistors),
                              set(keep_capacitors))
    sub = Network(network.tech, name=network.name)
    for device in network.transistors:
        if device.name in keep_t:
            sub.add_transistor(device.kind, device.gate, device.source,
                               device.drain, width=device.width,
                               length=device.length, name=device.name)
    for element in network.resistors:
        if element.name in keep_r:
            sub.add_resistor(element.node_a, element.node_b,
                             element.resistance, name=element.name)
    for element in network.capacitors:
        if element.name in keep_c:
            sub.add_capacitor(element.node_a, element.node_b,
                              element.capacitance, name=element.name)
    for node in network.signal_nodes:
        if not sub.has_node(node.name):
            continue
        if node.capacitance:
            sub.add_node(node.name, capacitance=node.capacitance)
        if node.role is NodeRole.INPUT:
            sub.mark_input(node.name)
    return sub


def _filter_vectors(network: Network, vectors: Sequence[Vector]
                    ) -> List[Vector]:
    """Drop specs for inputs that no longer exist in *network* (and
    vectors left with no inputs at all)."""
    input_names = {node.name for node in network.inputs()}
    kept = []
    for vector in vectors:
        inputs = {name: spec for name, spec in vector.inputs.items()
                  if name in input_names}
        if inputs:
            kept.append(Vector(label=vector.label, inputs=inputs))
    return kept


def _rebuild(case: ConformanceCase, keep_t: List[str], keep_r: List[str],
             keep_c: List[str], vectors: List[Vector]) -> ConformanceCase:
    network = subset_network(case.network, keep_t, keep_r, keep_c)
    return case.with_parts(network=network,
                           vectors=_filter_vectors(network, vectors))


def shrink_case(case: ConformanceCase,
                still_fails: Callable[[ConformanceCase], bool],
                perf: PerfCounters,
                max_rounds: int = _MAX_ROUNDS) -> ConformanceCase:
    """Greedily minimize *case* while ``still_fails(candidate)`` holds.

    The input case is assumed failing; the returned case is guaranteed
    failing (it is either the input or the last accepted candidate).
    """
    keep_t = [d.name for d in case.network.transistors]
    keep_r = [e.name for e in case.network.resistors]
    keep_c = [e.name for e in case.network.capacitors]
    vectors = list(case.vectors)
    current = case

    def attempt(candidate: ConformanceCase) -> bool:
        perf.incr("verify_shrink_attempts")
        if still_fails(candidate):
            perf.incr("verify_shrink_removed")
            return True
        return False

    for _ in range(max_rounds):
        removed_any = False

        # Vectors first — each dropped vector removes a whole sweep
        # scenario from every later engine run, so device passes get
        # cheaper the earlier this succeeds.  Always keep at least one.
        for vector in list(vectors):
            if len(vectors) <= 1:
                break
            trial = [v for v in vectors if v is not vector]
            candidate = _rebuild(current, keep_t, keep_r, keep_c, trial)
            if candidate.vectors and attempt(candidate):
                vectors = trial
                current = candidate
                removed_any = True

        # Then devices and passive elements, one at a time.
        for pool in (keep_t, keep_r, keep_c):
            for name in list(pool):
                if pool is keep_t and len(keep_t) <= 1 \
                        and not keep_r and not keep_c:
                    break
                trial = [n for n in pool if n != name]
                kept = {id(keep_t): keep_t, id(keep_r): keep_r,
                        id(keep_c): keep_c}
                kept[id(pool)] = trial
                candidate = _rebuild(current, kept[id(keep_t)],
                                     kept[id(keep_r)], kept[id(keep_c)],
                                     vectors)
                if candidate.vectors and attempt(candidate):
                    pool[:] = trial
                    vectors = list(candidate.vectors)
                    current = candidate
                    removed_any = True

        if not removed_any:
            break
    return current
