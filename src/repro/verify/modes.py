"""The engine-mode matrix: every way this library can compute arrivals.

An :class:`EngineMode` freezes one complete engine configuration —
incremental vs. brute-force reference, dirty-cone delta re-analysis,
analysis ordering, scenario sharding across worker processes, RC-tree
kernel backend, slope quantization.  :func:`run_mode` executes one case
under one mode through the stock sweep engine (so the conformance runner
exercises exactly the code paths users hit) and reduces the result to a
comparable :class:`ModeOutcome`.

Comparability rules (who must agree with whom, and how tightly):

* modes sharing a ``(kernel, slope_quantum)`` pair must be
  **bit-identical** to the brute-force reference of that pair
  (``incremental=False``, serial, no delta) — that is the repo-wide
  equivalence contract of DESIGN.md §5b/§5c/§5e;
* the two kernels' references agree only to 1e-9 relative (different
  float evaluation order), mirroring ``tests/test_kernel_differential``;
* quantized modes are compared only against their matched quantized
  reference — quantization legitimately changes results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..batch import ExplicitVectors, run_sweep
from ..core.models import LumpedRCModel, RCTreeModel, SlopeModel
from ..core.timing import (TimingAnalyzer, find_charge_sharing_hazards,
                           format_hazard_report)
from ..core.timing.analyzer import Arrival, Event
from ..errors import ReproError
from .generate import ConformanceCase

__all__ = ["EngineMode", "ModeOutcome", "MODES", "DEFAULT_MODE_NAMES",
           "MODEL_FACTORIES", "default_modes", "parse_modes",
           "mode_from_name", "run_mode"]

#: Delay-model factories by CLI name (mirrors ``repro.cli.MODELS``).
MODEL_FACTORIES = {
    "lumped-rc": LumpedRCModel,
    "rc-tree": RCTreeModel,
    "slope": SlopeModel,
}


@dataclass(frozen=True)
class EngineMode:
    """One frozen engine configuration."""

    name: str
    incremental: bool = True
    delta: bool = False
    jobs: int = 1
    kernel: str = "numpy"
    slope_quantum: float = 0.0
    order: str = "given"

    @property
    def reference_key(self):
        """Modes sharing this key must agree bit-for-bit."""
        return (self.kernel, self.slope_quantum)

    @property
    def is_reference(self) -> bool:
        """True for a brute-force serial baseline configuration."""
        return (not self.incremental and not self.delta and self.jobs == 1
                and self.order == "given")

    def reference(self) -> "EngineMode":
        """The matched brute-force baseline this mode must equal."""
        return EngineMode(name=reference_name(self.kernel,
                                              self.slope_quantum),
                          incremental=False, kernel=self.kernel,
                          slope_quantum=self.slope_quantum)


def reference_name(kernel: str, slope_quantum: float = 0.0) -> str:
    suffix = f",q={slope_quantum:g}" if slope_quantum else ""
    return f"reference[{kernel}{suffix}]"


#: The stock matrix, in execution order.
MODES: Dict[str, EngineMode] = {
    mode.name: mode for mode in (
        EngineMode(name="reference", incremental=False),
        EngineMode(name="incremental"),
        EngineMode(name="delta", delta=True),
        EngineMode(name="delta-greedy", delta=True, order="greedy"),
        EngineMode(name="parallel2", jobs=2),
        EngineMode(name="python", kernel="python"),
        EngineMode(name="quantized", slope_quantum=0.05),
    )
}

DEFAULT_MODE_NAMES = tuple(MODES)


def default_modes() -> List[EngineMode]:
    return list(MODES.values())


def mode_from_name(name: str) -> EngineMode:
    """Resolve a mode name — registry entries plus the derived
    ``reference[kernel,q=…]`` baselines the runner synthesizes."""
    mode = MODES.get(name)
    if mode is not None:
        return mode
    if name.startswith("reference[") and name.endswith("]"):
        body = name[len("reference["):-1]
        kernel, _, quantum_text = body.partition(",q=")
        if kernel in ("numpy", "python"):
            try:
                quantum = float(quantum_text) if quantum_text else 0.0
            except ValueError:
                quantum = None
            if quantum is not None:
                return EngineMode(name=name, incremental=False,
                                  kernel=kernel, slope_quantum=quantum)
    raise ReproError(
        f"unknown engine mode {name!r}; choose from "
        f"{', '.join(MODES)} (or 'all')")


def parse_modes(text: Optional[str]) -> List[EngineMode]:
    """CLI ``--modes`` value (comma-separated names, or ``all``)."""
    if not text or text.strip() == "all":
        return default_modes()
    return [mode_from_name(part.strip()) for part in text.split(",")
            if part.strip()]


@dataclass
class ModeOutcome:
    """One case × mode execution, reduced to what comparisons need."""

    mode: EngineMode
    #: vector label -> the full arrival map of that vector's analysis
    arrivals: Dict[str, Dict[Event, Arrival]]
    #: the charge-sharing hazard report of the case's network
    hazard_report: str
    #: vector label -> setup-check report (clocked cases only)
    setup_reports: Dict[str, str] = field(default_factory=dict)

    @property
    def labels(self) -> List[str]:
        return list(self.arrivals)


def _setup_report(case: ConformanceCase, result) -> str:
    from ..core.timing.clocking import setup_checks

    checks = setup_checks(case.network, result, case.clocks, case.schedule)
    return "\n".join(str(check) for check in checks)


def run_mode(case: ConformanceCase, mode: EngineMode,
             model_name: str = "slope") -> ModeOutcome:
    """Execute *case* under *mode* via the stock sweep engine."""
    model = MODEL_FACTORIES[model_name]()
    analyzer = TimingAnalyzer(case.network, model=model,
                              incremental=mode.incremental,
                              slope_quantum=mode.slope_quantum,
                              kernel=mode.kernel)
    sweep = run_sweep(case.network, ExplicitVectors(list(case.vectors)),
                      analyzer=analyzer, jobs=mode.jobs, delta=mode.delta,
                      order=mode.order)
    arrivals = {outcome.label: outcome.result.arrivals
                for outcome in sweep.outcomes}
    setup_reports = {}
    if case.clocks and case.schedule is not None:
        setup_reports = {outcome.label: _setup_report(case, outcome.result)
                         for outcome in sweep.outcomes}
    hazards = find_charge_sharing_hazards(case.network)
    return ModeOutcome(mode=mode, arrivals=arrivals,
                       hazard_report=format_hazard_report(hazards),
                       setup_reports=setup_reports)
