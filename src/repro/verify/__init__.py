"""Cross-engine conformance: differential fuzzing, metamorphic
invariants, and a failing-netlist shrinker.

The package closes the loop on the equivalence contracts the rest of the
repo asserts piecemeal (incremental == reference, delta == full sweep,
parallel == serial, numpy ~= python kernel): it *generates* random
switch-level netlists, runs each through the whole engine-mode matrix,
compares every mode against its matched brute-force reference, layers
model-level metamorphic invariants on top, and delta-debugs any failure
down to a minimal ``.sim``/``.vec`` reproducer that ``repro verify
--replay`` re-runs.  See DESIGN.md §6.
"""

from .artifacts import emit_reproducer, load_reproducer
from .diff import Discrepancy, compare_outcomes
from .generate import FAMILIES, ConformanceCase, generate_case
from .invariants import check_invariants, check_tree_invariants
from .modes import (DEFAULT_MODE_NAMES, MODES, EngineMode, ModeOutcome,
                    default_modes, mode_from_name, parse_modes, run_mode)
from .runner import (CaseFailure, ConformanceConfig, ConformanceReport,
                     ConformanceRunner, check_case, format_verify_report)
from .shrink import shrink_case, subset_network

__all__ = [
    "FAMILIES",
    "ConformanceCase",
    "generate_case",
    "EngineMode",
    "ModeOutcome",
    "MODES",
    "DEFAULT_MODE_NAMES",
    "default_modes",
    "mode_from_name",
    "parse_modes",
    "run_mode",
    "Discrepancy",
    "compare_outcomes",
    "check_invariants",
    "check_tree_invariants",
    "ConformanceConfig",
    "ConformanceRunner",
    "ConformanceReport",
    "CaseFailure",
    "check_case",
    "format_verify_report",
    "shrink_case",
    "subset_network",
    "emit_reproducer",
    "load_reproducer",
]
