"""Observability for the parallel execution subsystem.

Every parallel run — a level-front analysis or a scenario-sharded sweep —
produces one :class:`ParallelPerf`: the pool configuration that actually
ran, one :class:`DispatchStat` per fan-out (a level front, or the sweep's
single scatter) with per-chunk sizes/weights/wall times, and a log of
every robustness event (worker crash, chunk timeout, pool rebuild, serial
fallback).  The headline derived number is the *load-imbalance ratio*:
slowest chunk over mean chunk wall time within a dispatch (1.0 = perfect
balance), aggregated over dispatches weighted by their wall time.

The object rides on :class:`~repro.perf.PerfCounters` (and therefore on
``TimingResult.perf`` / ``SweepResult``) so ``--profile`` shows it next
to the engine counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ChunkStat:
    """One unit of dispatched work: a stage chunk or a vector block."""

    worker: int          #: pool slot that ran it; -1 = parent (serial)
    items: int           #: stages / vectors in the chunk
    weight: float        #: predicted cost weight used by the chunker
    seconds: float = 0.0  #: wall time measured inside the worker


@dataclass
class DispatchStat:
    """One fan-out of chunks (one level front, or one sweep scatter)."""

    label: str
    chunks: List[ChunkStat] = field(default_factory=list)

    @property
    def items(self) -> int:
        return sum(c.items for c in self.chunks)

    @property
    def seconds(self) -> float:
        """Critical-path wall time of the dispatch: the slowest chunk."""
        return max((c.seconds for c in self.chunks), default=0.0)

    @property
    def imbalance(self) -> Optional[float]:
        """Slowest chunk over mean chunk time; 1.0 is perfect balance."""
        times = [c.seconds for c in self.chunks]
        if len(times) < 2:
            return None
        mean = sum(times) / len(times)
        if mean <= 0.0:
            return None
        return max(times) / mean


@dataclass
class ParallelPerf:
    """Complete stats of one parallel execution."""

    jobs: int = 1
    strategy: str = "serial"        #: "level-front" | "scenario" | "serial"
    start_method: str = ""          #: multiprocessing start method used
    dispatches: List[DispatchStat] = field(default_factory=list)
    #: human-readable robustness log: crashes, timeouts, rebuilds, fallbacks
    fallback_events: List[str] = field(default_factory=list)
    retries: int = 0                #: pool rebuild-and-retry attempts
    serial_chunks: int = 0          #: chunks the parent ran after fallback
    #: worker slot -> accumulated busy seconds (slot -1 = parent fallback)
    worker_seconds: Dict[int, float] = field(default_factory=dict)
    #: compiled-tree-template cache traffic summed over every worker
    template_hits: int = 0
    template_misses: int = 0

    # -- recording ----------------------------------------------------------

    def dispatch(self, label: str) -> DispatchStat:
        stat = DispatchStat(label=label)
        self.dispatches.append(stat)
        return stat

    def record_chunk(self, dispatch: DispatchStat, worker: int, items: int,
                     weight: float, seconds: float) -> None:
        dispatch.chunks.append(ChunkStat(worker=worker, items=items,
                                         weight=weight, seconds=seconds))
        self.worker_seconds[worker] = (
            self.worker_seconds.get(worker, 0.0) + seconds)
        if worker < 0:
            self.serial_chunks += 1

    def record_fallback(self, event: str) -> None:
        self.fallback_events.append(event)

    def record_template_stats(self, counters: Dict[str, int]) -> None:
        """Pick the tree-template cache traffic out of a worker's (or the
        parent's) counter dict — shows how well the shipped compiled
        templates were reused across the pool."""
        self.template_hits += int(counters.get("tree_template_hits", 0))
        self.template_misses += int(counters.get("tree_template_misses", 0))

    # -- derived ------------------------------------------------------------

    @property
    def fell_back(self) -> bool:
        return bool(self.fallback_events)

    @property
    def chunk_count(self) -> int:
        return sum(len(d.chunks) for d in self.dispatches)

    @property
    def load_imbalance(self) -> Optional[float]:
        """Wall-time-weighted mean of per-dispatch imbalance ratios."""
        weighted = 0.0
        total = 0.0
        for dispatch in self.dispatches:
            ratio = dispatch.imbalance
            if ratio is None:
                continue
            span = dispatch.seconds or 1e-12
            weighted += ratio * span
            total += span
        if total <= 0.0:
            return None
        return weighted / total

    @property
    def busy_seconds(self) -> float:
        return sum(self.worker_seconds.values())

    # -- aggregation / export ----------------------------------------------

    def merge(self, other: "ParallelPerf") -> None:
        """Fold another run's stats in (e.g. per-scenario snapshots)."""
        self.jobs = max(self.jobs, other.jobs)
        if other.strategy != "serial":
            self.strategy = other.strategy
        if other.start_method:
            self.start_method = other.start_method
        self.dispatches.extend(other.dispatches)
        self.fallback_events.extend(other.fallback_events)
        self.retries += other.retries
        self.serial_chunks += other.serial_chunks
        self.template_hits += other.template_hits
        self.template_misses += other.template_misses
        for worker, seconds in other.worker_seconds.items():
            self.worker_seconds[worker] = (
                self.worker_seconds.get(worker, 0.0) + seconds)

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "strategy": self.strategy,
            "start_method": self.start_method,
            "dispatches": [
                {
                    "label": d.label,
                    "items": d.items,
                    "seconds": d.seconds,
                    "imbalance": d.imbalance,
                    "chunks": [
                        {"worker": c.worker, "items": c.items,
                         "weight": c.weight, "seconds": c.seconds}
                        for c in d.chunks
                    ],
                }
                for d in self.dispatches
            ],
            "load_imbalance": self.load_imbalance,
            "fallback_events": list(self.fallback_events),
            "retries": self.retries,
            "serial_chunks": self.serial_chunks,
            "template_hits": self.template_hits,
            "template_misses": self.template_misses,
            "worker_seconds": {str(k): v
                               for k, v in self.worker_seconds.items()},
        }

    def format_lines(self) -> List[str]:
        lines = [
            f"parallel: {self.strategy}, {self.jobs} job(s)"
            + (f", start method {self.start_method}"
               if self.start_method else ""),
            f"  dispatches {len(self.dispatches)}  "
            f"chunks {self.chunk_count}  "
            f"busy {self.busy_seconds:.4f}s",
        ]
        ratio = self.load_imbalance
        if ratio is not None:
            lines.append(f"  load-imbalance ratio {ratio:.2f} "
                         "(slowest chunk / mean, 1.00 = perfect)")
        seen = self.template_hits + self.template_misses
        if seen:
            lines.append(
                f"  tree templates {self.template_hits} hits / "
                f"{self.template_misses} compiles "
                f"({self.template_hits / seen:.1%} reuse across workers)")
        if self.retries:
            lines.append(f"  retries {self.retries}")
        if self.serial_chunks:
            lines.append(f"  serial-fallback chunks {self.serial_chunks}")
        for event in self.fallback_events:
            lines.append(f"  ! {event}")
        return lines

    def format_table(self, title: str = "parallel perf") -> str:
        return "\n".join([title, "-" * len(title)] + self.format_lines())
