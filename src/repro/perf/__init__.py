"""Observability for the hot paths: counters and wall-clock timers."""

from .counters import STANDARD_COUNTERS, PerfCounters, merge_all

__all__ = ["STANDARD_COUNTERS", "PerfCounters", "merge_all"]
