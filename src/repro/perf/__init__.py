"""Observability for the hot paths: counters and wall-clock timers."""

from .counters import STANDARD_COUNTERS, BatchPerf, PerfCounters, merge_all

__all__ = ["STANDARD_COUNTERS", "BatchPerf", "PerfCounters", "merge_all"]
