"""Observability for the hot paths: counters, timers, parallel stats."""

from .counters import STANDARD_COUNTERS, BatchPerf, PerfCounters, merge_all
from .parallel_stats import ChunkStat, DispatchStat, ParallelPerf
from .stage_costs import StageCostModel

__all__ = [
    "STANDARD_COUNTERS",
    "BatchPerf",
    "ChunkStat",
    "DispatchStat",
    "ParallelPerf",
    "PerfCounters",
    "StageCostModel",
    "merge_all",
]
