"""Performance counters and timers for the timing engine.

The incremental analyzer (and anything else that wants observability)
increments named counters and wraps hot sections in named timers.  A
:class:`PerfCounters` instance is cheap enough to keep always-on: an
increment is one dict operation, a timer two ``perf_counter`` calls.

Two instances are typically in play: a per-``analyze()`` snapshot stored
on the :class:`~repro.core.timing.analyzer.TimingResult`, and a cumulative
one on the :class:`~repro.core.timing.analyzer.TimingAnalyzer` that merges
every run (so cross-run cache behaviour is visible too).

Counter names are free-form strings; the timing engine uses the
:data:`STANDARD_COUNTERS` vocabulary so tables line up across tools.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

#: Counters the timing engine emits, in display order, with a short gloss.
STANDARD_COUNTERS: Dict[str, str] = {
    "stage_visits": "worklist pops that evaluated a stage",
    "stage_full_evals": "stages evaluated exhaustively (first visit / reference mode)",
    "stage_incremental_evals": "stages re-evaluated for changed triggers only",
    "worklist_pushes": "stage activations pushed on the worklist",
    "worklist_stale_pops": "worklist pops with nothing pending (deduped)",
    "candidates": "(path, trigger) delay candidates considered",
    "model_evals": "actual delay-model evaluate() calls",
    "model_cache_hits": "memoized stage-delay reuses",
    "model_cache_misses": "memo misses (same as model_evals when cold)",
    "arrival_updates": "arrival improvements committed",
    "path_enumerations": "per-(stage, node, transition) path enumerations",
    "tree_builds": "RC trees constructed",
}


@dataclass
class PerfCounters:
    """Named monotonic counters plus named accumulated wall-clock timers."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers -------------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def elapsed(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "PerfCounters") -> None:
        """Fold *other*'s counts and times into this instance."""
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(counters=dict(self.counters),
                            timers=dict(self.timers))

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready ``{"counters": {...}, "timers": {...}}``."""
        return {"counters": dict(self.counters),
                "timers": {k: float(v) for k, v in self.timers.items()}}

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Model-memo hit fraction, or None before any lookup."""
        hits = self.get("model_cache_hits")
        misses = self.get("model_cache_misses")
        total = hits + misses
        return (hits / total) if total else None

    def format_table(self, title: str = "perf counters") -> str:
        """A fixed-width report, standard counters first."""
        lines = [title, "-" * len(title)]
        ordered = [n for n in STANDARD_COUNTERS if n in self.counters]
        ordered += sorted(n for n in self.counters
                          if n not in STANDARD_COUNTERS)
        width = max((len(n) for n in ordered), default=0)
        width = max(width, max((len(n) for n in self.timers), default=0))
        for name in ordered:
            lines.append(f"{name:<{width}}  {self.counters[name]:>12}")
        rate = self.cache_hit_rate
        if rate is not None:
            lines.append(f"{'model cache hit rate':<{width}}  {rate:>11.1%}")
        for name in sorted(self.timers):
            lines.append(f"{name:<{width}}  {self.timers[name]:>11.6f}s")
        return "\n".join(lines)


def merge_all(parts: Mapping[str, PerfCounters]) -> PerfCounters:
    """Union of several counter sets (e.g. one per analyzed scenario)."""
    total = PerfCounters()
    for part in parts.values():
        total.merge(part)
    return total
