"""Performance counters and timers for the timing engine.

The incremental analyzer (and anything else that wants observability)
increments named counters and wraps hot sections in named timers.  A
:class:`PerfCounters` instance is cheap enough to keep always-on: an
increment is one dict operation, a timer two ``perf_counter`` calls.

Two instances are typically in play: a per-``analyze()`` snapshot stored
on the :class:`~repro.core.timing.analyzer.TimingResult`, and a cumulative
one on the :class:`~repro.core.timing.analyzer.TimingAnalyzer` that merges
every run (so cross-run cache behaviour is visible too).

Counter names are free-form strings; the timing engine uses the
:data:`STANDARD_COUNTERS` vocabulary so tables line up across tools.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .parallel_stats import ParallelPerf

#: Counters the timing engine emits, in display order, with a short gloss.
STANDARD_COUNTERS: Dict[str, str] = {
    "stage_visits": "worklist pops that evaluated a stage",
    "stage_full_evals": "stages evaluated exhaustively (first visit / reference mode)",
    "stage_incremental_evals": "stages re-evaluated for changed triggers only",
    "worklist_pushes": "stage activations pushed on the worklist",
    "worklist_stale_pops": "worklist pops with nothing pending (deduped)",
    "candidates": "(path, trigger) delay candidates considered",
    "model_evals": "actual delay-model evaluate() calls",
    "model_cache_hits": "memoized stage-delay reuses",
    "model_cache_misses": "memo misses (same as model_evals when cold)",
    "arrival_updates": "arrival improvements committed",
    "path_enumerations": "per-(stage, node, transition) path enumerations",
    "path_translations": "path sets instantiated from an isomorphic stage",
    "tree_builds": "RC trees constructed",
    "tree_template_misses": "tree templates compiled (first visit of a path)",
    "tree_template_hits": "compiled-template reuses by later candidates",
    "tree_template_shared": "templates instantiated from an isomorphic stage",
    "kernel_batches": "vectorized-kernel evaluate_many() batches",
    "kernel_nodes": "tree nodes covered by vectorized-kernel batches",
    "delta_scenarios": "scenarios analyzed by dirty-cone delta re-analysis",
    "input_delta": "changed primary inputs across delta scenarios (Hamming)",
    "cone_stages": "stages inside delta dirty cones (re-evaluated)",
    "stages_skipped": "stages outside delta dirty cones (arrivals kept)",
    "arrivals_reused": "committed arrivals carried over by delta scenarios",
    "verify_cases": "conformance cases generated and analyzed",
    "verify_mode_runs": "engine-mode sweep executions across all cases",
    "verify_comparisons": "mode-pair result comparisons performed",
    "verify_discrepancies": "cross-mode discrepancies detected",
    "verify_invariant_checks": "metamorphic invariant checks evaluated",
    "verify_invariant_failures": "metamorphic invariant violations",
    "verify_shrink_attempts": "shrinker candidate reductions tried",
    "verify_shrink_removed": "elements/vectors removed by the shrinker",
}


@dataclass
class PerfCounters:
    """Named monotonic counters plus named accumulated wall-clock timers."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    #: stats of the parallel executor, when the run used one
    parallel: Optional[ParallelPerf] = None

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    # -- timers -------------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the enclosed block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def elapsed(self, name: str) -> float:
        return self.timers.get(name, 0.0)

    # -- aggregation --------------------------------------------------------

    def merge(self, other: "PerfCounters") -> None:
        """Fold *other*'s counts and times into this instance."""
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)
        if other.parallel is not None:
            if self.parallel is None:
                self.parallel = ParallelPerf()
            self.parallel.merge(other.parallel)

    def snapshot(self) -> "PerfCounters":
        return PerfCounters(counters=dict(self.counters),
                            timers=dict(self.timers),
                            parallel=self.parallel)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.parallel = None

    # -- export -------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready ``{"counters": {...}, "timers": {...}}``."""
        payload: Dict[str, object] = {
            "counters": dict(self.counters),
            "timers": {k: float(v) for k, v in self.timers.items()}}
        if self.parallel is not None:
            payload["parallel"] = self.parallel.as_dict()
        return payload

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Model-memo hit fraction, or None before any lookup."""
        hits = self.get("model_cache_hits")
        misses = self.get("model_cache_misses")
        total = hits + misses
        return (hits / total) if total else None

    def format_table(self, title: str = "perf counters") -> str:
        """A fixed-width report, standard counters first.

        Zero-valued counters are elided consistently: a counter that was
        only ever incremented by 0 reads the same as one never touched.
        The value column grows with the longest count, so ≥10-digit
        counters stay aligned with the hit-rate and timer rows.
        """
        lines = [title, "-" * len(title)]
        shown = {n: v for n, v in self.counters.items() if v}
        ordered = [n for n in STANDARD_COUNTERS if n in shown]
        ordered += sorted(n for n in shown if n not in STANDARD_COUNTERS)
        rate = self.cache_hit_rate
        width = max((len(n) for n in ordered), default=0)
        width = max(width, max((len(n) for n in self.timers), default=0))
        if rate is not None:
            width = max(width, len("model cache hit rate"))
        # Timer rows append a one-char "s" unit, so their numeric field
        # is one narrower than the integer counter column; the percent
        # sign is part of the formatted rate, so that row uses the full
        # width.
        vwidth = max([12] + [len(str(shown[n])) for n in ordered])
        for name in ordered:
            lines.append(f"{name:<{width}}  {shown[name]:>{vwidth}}")
        if rate is not None:
            lines.append(f"{'model cache hit rate':<{width}}  "
                         f"{rate:>{vwidth}.1%}")
        for name in sorted(self.timers):
            lines.append(f"{name:<{width}}  "
                         f"{self.timers[name]:>{vwidth - 1}.6f}s")
        if self.parallel is not None:
            lines.extend(self.parallel.format_lines())
        return "\n".join(lines)


def merge_all(parts: Mapping[str, PerfCounters]) -> PerfCounters:
    """Union of several counter sets (e.g. one per analyzed scenario)."""
    total = PerfCounters()
    for part in parts.values():
        total.merge(part)
    return total


@dataclass
class BatchPerf:
    """Per-scenario counters of one batch sweep, plus the aggregate.

    The interesting batch-level number is the *cross-scenario* cache hit
    rate: a shared analyzer keeps its delay-model memo warm between
    scenarios, so scenario N's hits include reuse of work done for
    scenarios 0..N-1 — exactly the amortization
    :meth:`~repro.core.timing.analyzer.TimingAnalyzer.analyze_many`
    exists to provide.
    """

    scenarios: List[Tuple[str, PerfCounters]] = field(default_factory=list)

    def add(self, label: str, perf: PerfCounters) -> None:
        self.scenarios.append((label, perf.snapshot()))

    def __len__(self) -> int:
        return len(self.scenarios)

    @property
    def total(self) -> PerfCounters:
        """Aggregate over every scenario (recomputed on access)."""
        total = PerfCounters()
        for _, part in self.scenarios:
            total.merge(part)
        return total

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Model-memo hit fraction across the whole batch."""
        return self.total.cache_hit_rate

    def evals_per_scenario(self) -> Optional[float]:
        """Mean delay-model evaluations per scenario."""
        if not self.scenarios:
            return None
        return self.total.get("model_evals") / len(self.scenarios)

    @property
    def delta_skip_rate(self) -> Optional[float]:
        """Fraction of stage evaluations the delta engine skipped, or
        None when the sweep never ran in delta mode."""
        total = self.total
        cone = total.get("cone_stages")
        skipped = total.get("stages_skipped")
        seen = cone + skipped
        return (skipped / seen) if seen else None

    def visits_per_scenario(self) -> Optional[float]:
        """Mean stage visits per scenario — the number the delta bench
        gates on (dirty-cone re-analysis shrinks it)."""
        if not self.scenarios:
            return None
        return self.total.get("stage_visits") / len(self.scenarios)

    @property
    def template_hit_rate(self) -> Optional[float]:
        """Compiled-template reuse fraction across the whole batch, or
        None when the sweep never touched the vectorized kernel."""
        total = self.total
        hits = total.get("tree_template_hits")
        misses = total.get("tree_template_misses")
        seen = hits + misses
        return (hits / seen) if seen else None

    def format_table(self, title: str = "batch perf") -> str:
        """One row per scenario plus a totals row with the batch-wide
        cache hit rate."""
        lines = [title, "-" * len(title),
                 f"{'scenario':<20} {'visits':>7} {'evals':>7} "
                 f"{'hits':>7} {'hit rate':>9} {'seconds':>10}"]

        def row(name: str, perf: PerfCounters) -> str:
            rate = perf.cache_hit_rate
            return (f"{name:<20} {perf.get('stage_visits'):>7} "
                    f"{perf.get('model_evals'):>7} "
                    f"{perf.get('model_cache_hits'):>7} "
                    f"{(f'{rate:.1%}' if rate is not None else '-'):>9} "
                    f"{perf.elapsed('analyze'):>9.4f}s")

        for label, perf in self.scenarios:
            lines.append(row(label, perf))
        total = self.total
        lines.append("-" * len(lines[2]))
        lines.append(row(f"total ({len(self.scenarios)})", total))
        per_scenario = self.evals_per_scenario()
        if per_scenario is not None:
            lines.append(f"model evals per scenario: {per_scenario:.1f}")
        template_rate = self.template_hit_rate
        if template_rate is not None:
            lines.append(
                f"tree templates: {total.get('tree_template_hits')} hits / "
                f"{total.get('tree_template_misses')} compiles "
                f"({template_rate:.1%} reuse)")
        if total.get("delta_scenarios"):
            visits = self.visits_per_scenario()
            skip = self.delta_skip_rate
            lines.append(
                f"delta sweeps: {total.get('delta_scenarios')}/"
                f"{len(self.scenarios)} scenario(s), "
                f"{total.get('stages_skipped')} stage(s) skipped"
                + (f" ({skip:.1%})" if skip is not None else "")
                + f", {total.get('arrivals_reused')} arrival(s) reused, "
                f"{visits:.1f} stage visits/scenario")
        return "\n".join(lines)
