"""Per-stage cost model for load-balanced parallel chunking.

The global :class:`~repro.perf.PerfCounters` record *how much* delay-model
work a run did; this model records *where* — how many (path, trigger)
delay candidates each stage's evaluation considered.  The analyzer feeds
it on every stage visit, so after one analysis the weights reflect the
real per-stage evaluation cost (path count × trigger count × memo
behaviour), and the parallel chunker can pack level fronts into
near-equal-cost chunks instead of near-equal-count ones.

Before a stage has ever been evaluated (the cold first front) the model
falls back to a structural estimate supplied by the caller — device count
times internal-node count is the usual proxy, cheap and monotone with the
true path enumeration cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class StageCostModel:
    """Observed evaluation cost per stage index, with structural fallback."""

    #: stage index -> accumulated candidate evaluations
    observed: Dict[int, float] = field(default_factory=dict)
    #: stage index -> number of visits the accumulation covers
    samples: Dict[int, int] = field(default_factory=dict)

    def observe(self, index: int, cost: float) -> None:
        """Record one stage visit that evaluated *cost* delay candidates."""
        self.observed[index] = self.observed.get(index, 0.0) + float(cost)
        self.samples[index] = self.samples.get(index, 0) + 1

    def merge(self, other: "StageCostModel") -> None:
        """Fold in costs observed elsewhere (e.g. inside a worker)."""
        for index, cost in other.observed.items():
            self.observed[index] = self.observed.get(index, 0.0) + cost
        for index, count in other.samples.items():
            self.samples[index] = self.samples.get(index, 0) + count

    def merge_raw(self, costs: Dict[int, float]) -> None:
        """Fold in a plain ``{stage index: candidates}`` mapping."""
        for index, cost in costs.items():
            self.observe(index, cost)

    def mean_cost(self, index: int) -> Optional[float]:
        """Mean observed candidates per visit, or None when never seen."""
        count = self.samples.get(index, 0)
        if not count:
            return None
        return self.observed[index] / count

    def weight(self, index: int, fallback: float = 1.0) -> float:
        """Chunking weight of a stage: observed mean cost or *fallback*.

        Weights are clamped to a small positive floor so a stage that
        evaluated zero candidates (fully pruned) still occupies a slot.
        """
        mean = self.mean_cost(index)
        value = fallback if mean is None else mean
        return max(float(value), 1e-6)

    def __len__(self) -> int:
        return len(self.observed)

    def clear(self) -> None:
        self.observed.clear()
        self.samples.clear()
