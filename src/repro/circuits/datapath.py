"""Datapath structures: decoders and shift registers.

Used by the runtime-scaling experiment (T4) to grow transistor counts
past what the analog simulator can reasonably chew on — the same argument
the paper makes for switch-level analysis of full chips.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NetlistError
from ..netlist import Network
from ..tech import Technology
from .primitives import Gates


def decoder(tech: Technology, address_bits: int,
            name: Optional[str] = None) -> Network:
    """A ``k`` → ``2^k`` AND-plane decoder.

    Ports: ``a0..a{k-1}`` → ``y0..y{2^k-1}``.  Internally each address bit
    gets a complement inverter (``a0n..``), and each output is a NAND of
    the appropriate literals followed by an inverter.
    """
    if address_bits < 1:
        raise NetlistError("need at least one address bit")
    if address_bits > 8:
        raise NetlistError("decoder limited to 8 address bits (256 outputs)")
    net = Network(tech, name=name or f"decoder{address_bits}")
    gates = Gates(net)
    addresses = [f"a{i}" for i in range(address_bits)]
    for a in addresses:
        gates.inverter(a, f"{a}n")
    for word in range(2 ** address_bits):
        literals = [
            addresses[i] if (word >> i) & 1 else f"{addresses[i]}n"
            for i in range(address_bits)
        ]
        if len(literals) == 1:
            gates.buffer(literals[0], f"y{word}")
        else:
            gates.nand(literals, f"y{word}.n")
            gates.inverter(f"y{word}.n", f"y{word}")
    net.mark_input(*addresses)
    return net


def shift_register(tech: Technology, stages: int, dynamic: bool = True,
                   name: Optional[str] = None) -> Network:
    """A two-phase dynamic shift register (pass transistor + inverter per
    half-stage), the classic MOS pipeline structure.

    Ports: ``din``, ``phi1``, ``phi2`` → ``q1..q{stages}``.
    """
    if stages < 1:
        raise NetlistError("need at least one stage")
    del dynamic  # only the dynamic flavour is built; flag kept for clarity
    net = Network(tech, name=name or f"shiftreg{stages}")
    gates = Gates(net)
    previous = "din"
    for i in range(1, stages + 1):
        m_in, m_mid = f"m{i}a", f"m{i}b"
        q_mid, q_out = f"qi{i}", f"q{i}"
        gates.pass_nmos("phi1", previous, m_in)
        gates.inverter(m_in, q_mid)
        gates.pass_nmos("phi2", q_mid, m_mid)
        gates.inverter(m_mid, q_out)
        previous = q_out
    net.mark_input("din", "phi1", "phi2")
    return net


def decoder_output_names(address_bits: int) -> List[str]:
    return [f"y{w}" for w in range(2 ** address_bits)]


def wide_datapath(tech: Technology, slices: int, bits: int = 8,
                  name: Optional[str] = None) -> Network:
    """*slices* independent ripple-carry adder bit-slices, side by side.

    The parallel-execution showcase circuit: a real datapath is many
    identical slices with no carries between them (each has its own), so
    every topological level of the stage graph holds ``slices`` × the
    stages of one adder — wide fronts the level-front sharder can spread
    across worker processes.  A lone rca32's carry chain, by contrast,
    serializes past the first couple of levels.

    Ports: ``s{k}.a{i}``, ``s{k}.b{i}``, ``s{k}.cin`` per slice ``k``.
    """
    from .adders import ripple_carry_adder

    if slices < 1:
        raise NetlistError("need at least one datapath slice")
    net = Network(tech, name=name or f"widepath{slices}x{bits}")
    one = ripple_carry_adder(tech, bits)
    for k in range(slices):
        net.merge_from(one, prefix=f"s{k}.")
    return net


def wide_datapath_input_names(slices: int, bits: int = 8) -> List[str]:
    from .adders import adder_input_names
    return [f"s{k}.{name}" for k in range(slices)
            for name in adder_input_names(bits)]
