"""Adders — the scaling workloads of the runtime experiment (T4).

Gate-level full adders chained into ripple-carry adders of arbitrary width.
The carry chain is the canonical critical path the timing analyzer must
find (experiment F4).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NetlistError
from ..netlist import Network
from ..tech import Technology
from .primitives import Gates


def full_adder(tech: Technology, name: Optional[str] = None) -> Network:
    """One-bit full adder.  Ports: ``a``, ``b``, ``cin`` → ``sum``, ``cout``.

    ``sum = a ^ b ^ cin``; ``cout = ab + cin(a ^ b)`` (the standard
    9-gate realization).
    """
    net = Network(tech, name=name or "fulladder")
    _build_full_adder(Gates(net), "a", "b", "cin", "sum", "cout")
    net.mark_input("a", "b", "cin")
    return net


def _build_full_adder(gates: Gates, a: str, b: str, cin: str,
                      sum_out: str, cout: str) -> None:
    axb = f"{sum_out}.axb"
    gates.xor(a, b, axb)
    gates.xor(axb, cin, sum_out)
    g1 = f"{cout}.nab"
    g2 = f"{cout}.ncx"
    gates.nand([a, b], g1)
    gates.nand([cin, axb], g2)
    gates.nand([g1, g2], cout)


def ripple_carry_adder(tech: Technology, bits: int,
                       name: Optional[str] = None) -> Network:
    """*bits*-bit ripple-carry adder.

    Ports: ``a0..``, ``b0..``, ``cin`` → ``s0..``, ``cout``.  The carry
    ripples through ``c1..c{bits-1}``.
    """
    if bits < 1:
        raise NetlistError("need at least one bit")
    net = Network(tech, name=name or f"rca{bits}")
    gates = Gates(net)
    carry = "cin"
    inputs = ["cin"]
    for bit in range(bits):
        a, b, s = f"a{bit}", f"b{bit}", f"s{bit}"
        next_carry = "cout" if bit == bits - 1 else f"c{bit + 1}"
        _build_full_adder(gates, a, b, carry, s, next_carry)
        inputs.extend([a, b])
        carry = next_carry
    net.mark_input(*inputs)
    return net


def carry_select_adder(tech: Technology, bits: int, block: int = 4,
                       name: Optional[str] = None) -> Network:
    """*bits*-bit carry-select adder with *block*-bit ripple blocks.

    Each block computes both possible sums (carry-in 0 and carry-in 1) in
    parallel ripple chains; the true incoming carry then steers a mux.
    The critical path trades the long ripple chain for one block plus a
    chain of muxes — the architecture-comparison baseline of experiment
    E1.  Same ports as :func:`ripple_carry_adder`.
    """
    if bits < 1:
        raise NetlistError("need at least one bit")
    if block < 1:
        raise NetlistError("block size must be positive")
    net = Network(tech, name=name or f"csa{bits}x{block}")
    gates = Gates(net)
    inputs = ["cin"]
    carry = "cin"
    bit = 0
    block_index = 0
    while bit < bits:
        width = min(block, bits - bit)
        lanes = {}
        for lane in (0, 1):
            # The speculative carry-in is a constant: tie the first full
            # adder's carry gate input straight to the rail.
            current = "gnd" if lane == 0 else "vdd"
            sums = []
            for offset in range(width):
                index = bit + offset
                s = f"t{block_index}_{lane}_s{offset}"
                nxt = f"k{block_index}_{lane}_c{offset + 1}"
                _build_full_adder(gates, f"a{index}", f"b{index}",
                                  current, s, nxt)
                sums.append(s)
                current = nxt
            lanes[lane] = (sums, current)
        # Steer by the true incoming carry.
        for offset in range(width):
            index = bit + offset
            gates.gate_mux2(carry, lanes[1][0][offset],
                            lanes[0][0][offset], f"s{index}")
        next_carry = ("cout" if bit + width >= bits
                      else f"c{bit + width}")
        gates.gate_mux2(carry, lanes[1][1], lanes[0][1], next_carry)
        for offset in range(width):
            index = bit + offset
            inputs.extend([f"a{index}", f"b{index}"])
        carry = next_carry
        bit += width
        block_index += 1
    net.mark_input(*inputs)
    return net


def adder_input_names(bits: int) -> List[str]:
    """The primary input names of :func:`ripple_carry_adder`."""
    names = ["cin"]
    for bit in range(bits):
        names.extend([f"a{bit}", f"b{bit}"])
    return names


def adder_assignments(bits: int, a: int, b: int, cin: int = 0) -> dict:
    """Input assignment dict for adding *a* + *b* + *cin*."""
    if a < 0 or b < 0 or a >= 2 ** bits or b >= 2 ** bits:
        raise NetlistError(f"operands out of range for {bits} bits")
    values = {"cin": cin}
    for bit in range(bits):
        values[f"a{bit}"] = (a >> bit) & 1
        values[f"b{bit}"] = (b >> bit) & 1
    return values


def adder_result(values: dict, bits: int) -> int:
    """Decode ``s0.. / cout`` logic values back into an integer."""
    from ..switchlevel import Logic

    total = 0
    for bit in range(bits):
        value = values[f"s{bit}"]
        if value is Logic.X:
            raise NetlistError(f"sum bit {bit} is X")
        total |= (1 if value is Logic.ONE else 0) << bit
    cout = values["cout"]
    total |= (1 if cout is Logic.ONE else 0) << bits
    return total
