"""Programmable logic array generator.

The PLA was *the* structured-logic idiom of the paper's era: an AND plane
of product terms feeding an OR plane of outputs.  This generator realizes
both planes in the host technology's native gates (ratioed NOR rows for
nMOS, static gates for CMOS), using the classic NOR-NOR formulation:

    ``product_j = NOR(complemented literals of cube j)``
    ``output_k  = NOT(NOR(products of output k))``

A :class:`PLASpec` describes the personality matrix; truth-table
convenience constructors cover the common cases.  The generated networks
give the timing analyzer wide, shallow structures with large-fan-in rows —
a different shape from adder chains, useful in the scaling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..netlist import Network
from ..tech import Technology
from .primitives import Gates


@dataclass(frozen=True)
class Cube:
    """One product term: input index → required literal (True = positive).

    Inputs absent from the map are don't-cares for this term.
    """

    literals: Tuple[Tuple[int, bool], ...]

    @classmethod
    def of(cls, **kwargs) -> "Cube":  # pragma: no cover - sugar
        raise NetlistError("use Cube(literals=...) or PLASpec helpers")

    @classmethod
    def from_dict(cls, mapping: Dict[int, bool]) -> "Cube":
        return cls(literals=tuple(sorted(mapping.items())))

    def evaluate(self, bits: Sequence[int]) -> bool:
        return all(bool(bits[i]) is positive for i, positive in self.literals)


@dataclass
class PLASpec:
    """Personality of a PLA: inputs, product terms, output connections."""

    num_inputs: int
    cubes: List[Cube] = field(default_factory=list)
    #: per output: indexes into `cubes` that are OR-ed together
    outputs: List[Tuple[int, ...]] = field(default_factory=list)

    def validate(self) -> None:
        if self.num_inputs < 1:
            raise NetlistError("PLA needs at least one input")
        if not self.cubes:
            raise NetlistError("PLA needs at least one product term")
        if not self.outputs:
            raise NetlistError("PLA needs at least one output")
        for cube in self.cubes:
            for index, _ in cube.literals:
                if not 0 <= index < self.num_inputs:
                    raise NetlistError(
                        f"cube literal references input {index}, but the "
                        f"PLA has {self.num_inputs} inputs")
        for terms in self.outputs:
            for term in terms:
                if not 0 <= term < len(self.cubes):
                    raise NetlistError(f"output references product {term}")

    def evaluate(self, bits: Sequence[int]) -> List[bool]:
        """Reference semantics, for tests."""
        fired = [cube.evaluate(bits) for cube in self.cubes]
        return [any(fired[t] for t in terms) for terms in self.outputs]

    @classmethod
    def from_truth_table(cls, num_inputs: int,
                         table: Dict[int, Sequence[int]]) -> "PLASpec":
        """A (non-minimized) PLA from minterms: ``table[minterm] ->
        iterable of output indexes asserted for that input pattern``."""
        cubes: List[Cube] = []
        outputs: Dict[int, List[int]] = {}
        for minterm in sorted(table):
            if not 0 <= minterm < 2 ** num_inputs:
                raise NetlistError(f"minterm {minterm} out of range")
            literals = {i: bool((minterm >> i) & 1)
                        for i in range(num_inputs)}
            cube_index = len(cubes)
            cubes.append(Cube.from_dict(literals))
            for output in table[minterm]:
                outputs.setdefault(output, []).append(cube_index)
        num_outputs = max(outputs) + 1 if outputs else 0
        return cls(
            num_inputs=num_inputs,
            cubes=cubes,
            outputs=[tuple(outputs.get(k, ())) for k in range(num_outputs)],
        )


def pla(tech: Technology, spec: PLASpec,
        name: Optional[str] = None) -> Network:
    """Build the PLA.  Ports: ``i0..`` → ``o0..``.

    Implementation: input buffers produce true/complement rails;
    the AND plane realizes each product as a NOR of complemented
    literals; the OR plane NORs the products and inverts.
    Single-literal rows degenerate to inverters/buffers.
    """
    spec.validate()
    net = Network(tech, name=name or
                  f"pla{spec.num_inputs}x{len(spec.cubes)}x"
                  f"{len(spec.outputs)}")
    gates = Gates(net)
    inputs = [f"i{k}" for k in range(spec.num_inputs)]
    for node in inputs:
        gates.inverter(node, f"{node}n")

    def literal_rail(index: int, positive: bool) -> str:
        # product = AND(lits) = NOR(complemented lits): feed the NOR with
        # the *complement* of each literal.
        return f"i{index}n" if positive else f"i{index}"

    product_nodes: List[str] = []
    for j, cube in enumerate(spec.cubes):
        node = f"p{j}"
        rails = [literal_rail(i, positive) for i, positive in cube.literals]
        if not rails:
            raise NetlistError(f"product {j} has no literals")
        if len(rails) == 1:
            gates.inverter(rails[0], node)
        else:
            gates.nor(rails, node)
        product_nodes.append(node)

    for k, terms in enumerate(spec.outputs):
        node = f"o{k}"
        if not terms:
            raise NetlistError(f"output {k} has no product terms")
        rails = [product_nodes[t] for t in terms]
        if len(rails) == 1:
            gates.buffer(rails[0], node)
        else:
            gates.nor(rails, f"{node}.n")
            gates.inverter(f"{node}.n", node)

    net.mark_input(*inputs)
    return net


def seven_segment_spec() -> PLASpec:
    """A classic demonstration personality: BCD digit → 7-segment drive
    (segments a..g as outputs 0..6)."""
    segments = {
        0: "abcdef", 1: "bc", 2: "abdeg", 3: "abcdg", 4: "bcfg",
        5: "acdfg", 6: "acdefg", 7: "abc", 8: "abcdefg", 9: "abcdfg",
    }
    table: Dict[int, List[int]] = {}
    for digit, lit in segments.items():
        table[digit] = [ord(ch) - ord("a") for ch in lit]
    return PLASpec.from_truth_table(4, table)
