"""Technology-aware gate primitives.

:class:`Gates` builds classic 1984-vintage logic onto a
:class:`~repro.netlist.Network`, choosing the right structure for the
network's technology:

* depletion-load nMOS — ratioed logic: enhancement pulldown network
  against a depletion load;
* CMOS — complementary pullup/pulldown networks.

Series devices are widened by the stack depth so gate drive stays roughly
constant, the standard sizing discipline of the era.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import NetlistError
from ..netlist import Network
from ..tech import DeviceKind
from ..tech import cmos3 as _cmos
from ..tech import nmos4 as _nmos


class Gates:
    """Gate-level construction helpers bound to one network."""

    def __init__(self, network: Network):
        self.network = network
        self.tech = network.tech
        self.is_cmos = self.tech.has_kind(DeviceKind.PMOS)
        if not self.is_cmos and not self.tech.has_kind(DeviceKind.NMOS_DEP):
            raise NetlistError(
                f"technology {self.tech.name!r} has neither PMOS nor "
                "depletion devices; cannot build static gates"
            )

    # -- device sizing ----------------------------------------------------

    def _nmos_geometry(self, size: float, stack: int = 1):
        if self.is_cmos:
            return _cmos.NMOS_W * size * stack, _cmos.NMOS_L
        return _nmos.PULLDOWN_W * size * stack, _nmos.PULLDOWN_L

    def _pullup_geometry(self, size: float, stack: int = 1):
        if self.is_cmos:
            return _cmos.PMOS_W * size * stack, _cmos.PMOS_L
        return _nmos.LOAD_W * size, _nmos.LOAD_L

    def _pass_geometry(self, size: float):
        if self.is_cmos:
            return _cmos.PASS_W * size, _cmos.PASS_L
        return _nmos.PASS_W * size, _nmos.PASS_L

    # -- basic gates --------------------------------------------------------

    def inverter(self, a: str, y: str, size: float = 1.0) -> None:
        """``y = not a``."""
        net = self.network
        w, l = self._nmos_geometry(size)
        net.add_transistor(DeviceKind.NMOS_ENH, a, "gnd", y, width=w, length=l)
        if self.is_cmos:
            wp, lp = self._pullup_geometry(size)
            net.add_transistor(DeviceKind.PMOS, a, "vdd", y, width=wp, length=lp)
        else:
            self._depletion_load(y, size)

    def nand(self, inputs: Sequence[str], y: str, size: float = 1.0) -> None:
        """``y = not (and inputs)``; 2-4 inputs are sensible."""
        inputs = list(inputs)
        if len(inputs) < 2:
            raise NetlistError("nand needs at least two inputs")
        net = self.network
        stack = len(inputs)
        w, l = self._nmos_geometry(size, stack=stack)
        # Series pulldown chain gnd -> y.
        previous = "gnd"
        for i, a in enumerate(inputs):
            node = y if i == len(inputs) - 1 else self._internal(y, f"s{i}")
            net.add_transistor(DeviceKind.NMOS_ENH, a, previous, node,
                               width=w, length=l)
            previous = node
        if self.is_cmos:
            wp, lp = self._pullup_geometry(size)
            for a in inputs:
                net.add_transistor(DeviceKind.PMOS, a, "vdd", y,
                                   width=wp, length=lp)
        else:
            self._depletion_load(y, size)

    def nor(self, inputs: Sequence[str], y: str, size: float = 1.0) -> None:
        """``y = not (or inputs)``."""
        inputs = list(inputs)
        if len(inputs) < 2:
            raise NetlistError("nor needs at least two inputs")
        net = self.network
        w, l = self._nmos_geometry(size)
        for a in inputs:
            net.add_transistor(DeviceKind.NMOS_ENH, a, "gnd", y,
                               width=w, length=l)
        if self.is_cmos:
            stack = len(inputs)
            wp, lp = self._pullup_geometry(size, stack=stack)
            wp = wp * stack  # widen the series pullups
            previous = "vdd"
            for i, a in enumerate(inputs):
                node = y if i == len(inputs) - 1 else self._internal(y, f"p{i}")
                net.add_transistor(DeviceKind.PMOS, a, previous, node,
                                   width=wp, length=lp)
                previous = node
        else:
            self._depletion_load(y, size)

    def buffer(self, a: str, y: str, size: float = 1.0) -> None:
        """Two inverters: ``y = a`` with restored drive."""
        mid = self._internal(y, "buf")
        self.inverter(a, mid, size=size)
        self.inverter(mid, y, size=size)

    def and_gate(self, inputs: Sequence[str], y: str, size: float = 1.0) -> None:
        mid = self._internal(y, "nand")
        self.nand(inputs, mid, size=size)
        self.inverter(mid, y, size=size)

    def or_gate(self, inputs: Sequence[str], y: str, size: float = 1.0) -> None:
        mid = self._internal(y, "nor")
        self.nor(inputs, mid, size=size)
        self.inverter(mid, y, size=size)

    def xor(self, a: str, b: str, y: str, size: float = 1.0) -> None:
        """4-NAND exclusive-or (works in both technologies)."""
        nab = self._internal(y, "nab")
        na = self._internal(y, "na")
        nb = self._internal(y, "nb")
        self.nand([a, b], nab, size=size)
        self.nand([a, nab], na, size=size)
        self.nand([b, nab], nb, size=size)
        self.nand([na, nb], y, size=size)

    # -- pass logic -----------------------------------------------------------

    def pass_nmos(self, ctrl: str, a: str, b: str, size: float = 1.0) -> None:
        """An n-channel pass transistor between *a* and *b*."""
        w, l = self._pass_geometry(size)
        self.network.add_transistor(DeviceKind.NMOS_ENH, ctrl, a, b,
                                    width=w, length=l)

    def transmission_gate(self, ctrl: str, ctrl_n: str, a: str, b: str,
                          size: float = 1.0) -> None:
        """A full CMOS transmission gate (CMOS technologies only)."""
        if not self.is_cmos:
            raise NetlistError("transmission gates need a CMOS technology")
        w, l = self._pass_geometry(size)
        self.network.add_transistor(DeviceKind.NMOS_ENH, ctrl, a, b,
                                    width=w, length=l)
        self.network.add_transistor(DeviceKind.PMOS, ctrl_n, a, b,
                                    width=2.0 * w, length=l)

    def mux2(self, select: str, select_n: str, a: str, b: str, y: str,
             size: float = 1.0) -> None:
        """``y = a if select else b`` built from pass devices."""
        if self.is_cmos:
            self.transmission_gate(select, select_n, a, y, size=size)
            self.transmission_gate(select_n, select, b, y, size=size)
        else:
            self.pass_nmos(select, a, y, size=size)
            self.pass_nmos(select_n, b, y, size=size)

    def gate_mux2(self, select: str, a: str, b: str, y: str,
                  size: float = 1.0) -> None:
        """``y = a if select else b`` in restoring gate logic (3 NANDs
        plus the select inverter) — used where pass logic would degrade
        levels, e.g. carry-select blocks."""
        select_n = self._internal(y, "seln")
        self.inverter(select, select_n, size=size)
        pick_a = self._internal(y, "pa")
        pick_b = self._internal(y, "pb")
        self.nand([select, a], pick_a, size=size)
        self.nand([select_n, b], pick_b, size=size)
        self.nand([pick_a, pick_b], y, size=size)

    # -- nMOS specials ---------------------------------------------------------

    def _depletion_load(self, y: str, size: float) -> None:
        self.network.add_transistor(
            DeviceKind.NMOS_DEP, y, y, "vdd",
            width=_nmos.LOAD_W * size, length=_nmos.LOAD_L,
        )

    def depletion_load(self, y: str, size: float = 1.0) -> None:
        """An explicit depletion pullup on *y* (nMOS technologies)."""
        if self.is_cmos:
            raise NetlistError("depletion loads need an nMOS technology")
        self._depletion_load(y, size)

    def bootstrap_driver(self, a: str, y: str, size: float = 1.0,
                         boot_cap: float = 60e-15) -> None:
        """nMOS bootstrap super-buffer: an inverter whose pullup gate is
        capacitively boosted above Vdd so the output rises to a full level
        quickly.  The classic circuit the paper's test set exercises because
        constant-resistance models cannot capture it.

        Structure: inverter ``a -> xn``; pullup enhancement device gated by
        ``boot`` (precharged through an always-on depletion device from
        Vdd) driving ``y``; bootstrap capacitor from ``y`` back to ``boot``;
        pulldown on ``y`` gated by ``a``.
        """
        if self.is_cmos:
            raise NetlistError("the bootstrap driver is an nMOS circuit")
        net = self.network
        boot = self._internal(y, "boot")
        w, l = self._nmos_geometry(size)
        # Precharge of the boot node through a depletion "isolation" device.
        net.add_transistor(DeviceKind.NMOS_DEP, boot, boot, "vdd",
                           width=_nmos.LOAD_W * size, length=_nmos.LOAD_L)
        # Output pullup: enhancement device gated by the boosted node.
        net.add_transistor(DeviceKind.NMOS_ENH, boot, "vdd", y,
                           width=w * 2.0, length=l)
        # Output pulldown gated by the input.
        net.add_transistor(DeviceKind.NMOS_ENH, a, "gnd", y,
                           width=w, length=l)
        # Keep boot low while the input is high (so it can snap up later).
        net.add_transistor(DeviceKind.NMOS_ENH, a, "gnd", boot,
                           width=_nmos.PASS_W * size, length=_nmos.PASS_L)
        # The bootstrap capacitor couples the rising output into boot.
        net.add_capacitor(y, boot, boot_cap)

    # -- misc -----------------------------------------------------------------

    def load_cap(self, node: str, capacitance: float) -> None:
        """Attach an explicit load capacitance (models fanout wiring)."""
        self.network.add_capacitor(node, "gnd", capacitance)

    def fanout_inverters(self, node: str, count: int, size: float = 1.0) -> List[str]:
        """*count* inverter loads on a node; returns their output names."""
        outputs = []
        for i in range(count):
            out = self._internal(node, f"fo{i}")
            self.inverter(node, out, size=size)
            outputs.append(out)
        return outputs

    def _internal(self, base: str, suffix: str) -> str:
        name = f"{base}.{suffix}"
        counter = 0
        while self.network.has_node(name):
            counter += 1
            name = f"{base}.{suffix}{counter}"
        return name
