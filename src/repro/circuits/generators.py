"""Parametric benchmark-circuit generators.

These build the test circuits of the paper's evaluation (reconstructed —
see DESIGN.md): inverter chains with fanout, NAND/NOR stages,
pass-transistor chains, precharged buses, bootstrap drivers.  Every
generator returns a fresh :class:`~repro.netlist.Network` with conventional
port names (``in``, ``out``, …) and all primary inputs marked.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import NetlistError
from ..netlist import Network
from ..tech import Technology
from .primitives import Gates


def inverter_chain(tech: Technology, stages: int, fanout: int = 1,
                   load_cap: float = 0.0, name: Optional[str] = None) -> Network:
    """*stages* inverters in series; each internal node optionally carries
    *fanout - 1* extra inverter loads and the output a fixed *load_cap*.

    Ports: ``in`` → ``out`` (plus ``n1..n{stages-1}`` internals).
    """
    if stages < 1:
        raise NetlistError("need at least one inverter")
    net = Network(tech, name=name or f"invchain{stages}x{fanout}")
    gates = Gates(net)
    previous = "in"
    for i in range(1, stages + 1):
        node = "out" if i == stages else f"n{i}"
        gates.inverter(previous, node)
        if fanout > 1:
            gates.fanout_inverters(node, fanout - 1)
        previous = node
    if load_cap > 0:
        gates.load_cap("out", load_cap)
    net.mark_input("in")
    return net


def nand_gate(tech: Technology, inputs: int = 2, load_cap: float = 50e-15,
              name: Optional[str] = None) -> Network:
    """A single NAND driving a load.  Ports: ``a0..a{n-1}`` → ``out``."""
    net = Network(tech, name=name or f"nand{inputs}")
    gates = Gates(net)
    ports = [f"a{i}" for i in range(inputs)]
    gates.nand(ports, "out")
    gates.load_cap("out", load_cap)
    net.mark_input(*ports)
    return net


def nor_gate(tech: Technology, inputs: int = 2, load_cap: float = 50e-15,
             name: Optional[str] = None) -> Network:
    """A single NOR driving a load.  Ports: ``a0..a{n-1}`` → ``out``."""
    net = Network(tech, name=name or f"nor{inputs}")
    gates = Gates(net)
    ports = [f"a{i}" for i in range(inputs)]
    gates.nor(ports, "out")
    gates.load_cap("out", load_cap)
    net.mark_input(*ports)
    return net


def pass_chain(tech: Technology, length: int, driven: bool = True,
               gate_high: bool = True, load_cap: float = 20e-15,
               name: Optional[str] = None) -> Network:
    """A chain of *length* n-channel pass transistors.

    ``in -[pass]- p1 -[pass]- … -[pass]- out``; every pass gate is tied to
    the net ``en`` (an input, normally held high).  With ``driven`` an
    inverter buffers ``in`` first (node ``drv``), matching how the paper's
    pass-chain circuits are driven.

    This is the distributed-RC circuit the lumped model overestimates
    (quadratic vs. its R·C_total product) and the RC-tree model nails.
    """
    if length < 1:
        raise NetlistError("need at least one pass device")
    net = Network(tech, name=name or f"passchain{length}")
    gates = Gates(net)
    if driven:
        gates.inverter("in", "drv")
        previous = "drv"
    else:
        previous = "in"
    for i in range(1, length + 1):
        node = "out" if i == length else f"p{i}"
        gates.pass_nmos("en", previous, node)
        previous = node
    gates.load_cap("out", load_cap)
    net.mark_input("in", "en")
    if gate_high:
        pass  # caller drives `en`; flag retained for API clarity
    return net


def precharged_bus(tech: Technology, drivers: int = 4,
                   bus_cap: float = 400e-15,
                   name: Optional[str] = None) -> Network:
    """A precharged bus: a clocked pullup (``phi`` low precharges the bus
    in CMOS; an nMOS bus precharges through an enhancement device with
    ``phi`` high) and *drivers* pulldown stacks ``(d_i AND en_i)``.

    Ports: ``phi``, ``d0..``, ``en0..`` → ``bus``.
    """
    from ..tech import DeviceKind

    net = Network(tech, name=name or f"bus{drivers}")
    gates = Gates(net)
    net.add_node("bus", capacitance=bus_cap)
    if gates.is_cmos:
        w, l = gates._pullup_geometry(2.0)
        net.add_transistor(DeviceKind.PMOS, "phi", "vdd", "bus",
                           width=w, length=l)
    else:
        w, l = gates._nmos_geometry(2.0)
        net.add_transistor(DeviceKind.NMOS_ENH, "phi", "vdd", "bus",
                           width=w, length=l)
    inputs = ["phi"]
    for i in range(drivers):
        data, enable = f"d{i}", f"en{i}"
        mid = f"bus.pd{i}"
        w, l = gates._nmos_geometry(1.0, stack=2)
        net.add_transistor(DeviceKind.NMOS_ENH, data, "gnd", mid,
                           width=w, length=l)
        net.add_transistor(DeviceKind.NMOS_ENH, enable, mid, "bus",
                           width=w, length=l)
        inputs.extend([data, enable])
    net.mark_input(*inputs)
    return net


def bootstrap_driver(tech: Technology, load_cap: float = 200e-15,
                     name: Optional[str] = None) -> Network:
    """The nMOS bootstrap super-buffer driving a heavy load.

    Ports: ``in`` → ``out``.  nMOS technologies only.
    """
    net = Network(tech, name=name or "bootstrap")
    gates = Gates(net)
    gates.bootstrap_driver("in", "out")
    gates.load_cap("out", load_cap)
    net.mark_input("in")
    return net


def xor_gate(tech: Technology, load_cap: float = 50e-15,
             name: Optional[str] = None) -> Network:
    """4-NAND XOR.  Ports: ``a``, ``b`` → ``out``."""
    net = Network(tech, name=name or "xor")
    gates = Gates(net)
    gates.xor("a", "b", "out")
    gates.load_cap("out", load_cap)
    net.mark_input("a", "b")
    return net


def mux_tree(tech: Technology, select_bits: int = 2,
             load_cap: float = 30e-15, name: Optional[str] = None) -> Network:
    """A pass-transistor multiplexer tree: 2^k data inputs, k select pairs.

    Ports: ``d0..``, ``s0..``/``s0n..`` → ``out``.
    """
    if select_bits < 1:
        raise NetlistError("need at least one select bit")
    net = Network(tech, name=name or f"mux{2 ** select_bits}")
    gates = Gates(net)
    level_nodes: List[str] = [f"d{i}" for i in range(2 ** select_bits)]
    inputs = list(level_nodes)
    for level in range(select_bits):
        select, select_n = f"s{level}", f"s{level}n"
        inputs.extend([select, select_n])
        next_nodes: List[str] = []
        for pair in range(len(level_nodes) // 2):
            out = ("out" if level == select_bits - 1 and pair == 0
                   else f"m{level}_{pair}")
            gates.mux2(select, select_n, level_nodes[2 * pair + 1],
                       level_nodes[2 * pair], out)
            next_nodes.append(out)
        level_nodes = next_nodes
    gates.load_cap("out", load_cap)
    net.mark_input(*inputs)
    return net


def random_logic_dag(tech: Technology, seed: int, gates: int = 8,
                     inputs: int = 3,
                     name: Optional[str] = None) -> Network:
    """A seeded random feed-forward gate DAG — the conformance fuzzer's
    workhorse circuit (:mod:`repro.verify`).

    Each of *gates* gates (inverter / NAND2 / NOR2 / XOR) draws its
    operands from the signals already available (primary inputs plus
    earlier gate outputs), so the result is feed-forward by construction.
    Some gate outputs pick up an extra load capacitor on an integer-fF
    grid (exact under the ``.sim`` round trip).  The same *seed* always
    builds the same network — draws go through a private
    ``random.Random``, never the process-global RNG.

    Ports: ``x0..x{inputs-1}`` → ``g0..g{gates-1}``.
    """
    if gates < 1:
        raise NetlistError("need at least one gate")
    if inputs < 2:
        raise NetlistError("need at least two primary inputs")
    rng = random.Random(seed)
    net = Network(tech, name=name or f"dag{gates}s{seed}")
    builders = Gates(net)
    ports = [f"x{i}" for i in range(inputs)]
    for port in ports:
        net.add_node(port)
    signals = list(ports)
    for index in range(gates):
        out = f"g{index}"
        kind = rng.choice(("inv", "nand", "nor", "xor"))
        a = rng.choice(signals)
        b = rng.choice(signals)
        if kind == "inv" or a == b:
            builders.inverter(a, out)
        elif kind == "nand":
            builders.nand([a, b], out)
        elif kind == "nor":
            builders.nor([a, b], out)
        else:
            builders.xor(a, b, out)
        if rng.random() < 0.3:
            builders.load_cap(out, rng.randint(5, 60) * 1e-15)
        signals.append(out)
    net.mark_input(*ports)
    return net


def ring_oscillator(tech: Technology, stages: int = 5,
                    name: Optional[str] = None) -> Network:
    """An odd-length inverter ring with an enabling NAND — the classic
    oscillation test for the simulators (no primary output settles)."""
    if stages < 3 or stages % 2 == 0:
        raise NetlistError("ring length must be odd and >= 3")
    net = Network(tech, name=name or f"ring{stages}")
    gates = Gates(net)
    gates.nand(["en", f"r{stages - 1}"], "r0")
    for i in range(1, stages):
        gates.inverter(f"r{i - 1}", f"r{i}")
    net.mark_input("en")
    return net
