"""Benchmark circuits: primitives and parametric generators."""

from .primitives import Gates
from .generators import (
    bootstrap_driver,
    inverter_chain,
    mux_tree,
    nand_gate,
    nor_gate,
    pass_chain,
    precharged_bus,
    random_logic_dag,
    ring_oscillator,
    xor_gate,
)
from .adders import (
    adder_assignments,
    adder_input_names,
    adder_result,
    carry_select_adder,
    full_adder,
    ripple_carry_adder,
)
from .datapath import (decoder, decoder_output_names, shift_register,
                       wide_datapath, wide_datapath_input_names)
from .pla import Cube, PLASpec, pla, seven_segment_spec

__all__ = [
    "Gates",
    "bootstrap_driver",
    "inverter_chain",
    "mux_tree",
    "nand_gate",
    "nor_gate",
    "pass_chain",
    "precharged_bus",
    "random_logic_dag",
    "ring_oscillator",
    "xor_gate",
    "adder_assignments",
    "adder_input_names",
    "adder_result",
    "carry_select_adder",
    "full_adder",
    "ripple_carry_adder",
    "decoder",
    "decoder_output_names",
    "shift_register",
    "wide_datapath",
    "wide_datapath_input_names",
    "Cube",
    "PLASpec",
    "pla",
    "seven_segment_spec",
]
