"""Technology persistence.

Characterization costs dozens of transients; shipping or caching the fitted
result as JSON avoids re-running it.  The serialized form covers the full
:class:`~repro.tech.parameters.Technology`: level-1 device parameters,
static effective resistances, slope tables, and the geometry defaults.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Mapping

from ..errors import TechnologyError
from .parameters import (
    DeviceKind,
    DeviceParams,
    StaticResistance,
    Technology,
    Transition,
)
from .tables import SlopeTableSet

FORMAT_VERSION = 1


def technology_to_dict(tech: Technology) -> dict:
    """A JSON-serializable snapshot of a technology."""
    return {
        "format": FORMAT_VERSION,
        "name": tech.name,
        "vdd": tech.vdd,
        "lambda_units": tech.lambda_units,
        "default_width": tech.default_width,
        "default_length": tech.default_length,
        "temperature": tech.temperature,
        "devices": {
            kind.value: {
                "vt0": params.vt0,
                "kp": params.kp,
                "lam": params.lam,
                "gamma": params.gamma,
                "phi": params.phi,
                "cox": params.cox,
                "cj_per_width": params.cj_per_width,
            }
            for kind, params in tech.devices.items()
        },
        "static_resistance": {
            f"{kind.value}:{transition.value}": entry.r_square
            for (kind, transition), entry in tech.static_resistance.items()
        },
        "slope_tables": (tech.slope_tables.to_dict()
                         if tech.slope_tables is not None else None),
    }


def technology_from_dict(data: Mapping) -> Technology:
    """Rebuild a technology from :func:`technology_to_dict` output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise TechnologyError(
            f"unsupported technology file format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    devices: Dict[DeviceKind, DeviceParams] = {}
    for code, params in data["devices"].items():
        kind = DeviceKind(code)
        devices[kind] = DeviceParams(kind=kind, **params)
    static = {}
    for key, r_square in data["static_resistance"].items():
        code, transition = key.split(":")
        static[(DeviceKind(code), Transition(transition))] = (
            StaticResistance(float(r_square)))
    tables = (SlopeTableSet.from_dict(data["slope_tables"])
              if data.get("slope_tables") else None)
    return Technology(
        name=str(data["name"]),
        vdd=float(data["vdd"]),
        devices=devices,
        static_resistance=static,
        lambda_units=float(data["lambda_units"]),
        default_width=float(data["default_width"]),
        default_length=float(data["default_length"]),
        temperature=float(data["temperature"]),
        slope_tables=tables,
    )


def save_technology(tech: Technology, path: str) -> None:
    """Write a technology (with any fitted tables) to a JSON file."""
    with open(path, "w") as handle:
        json.dump(technology_to_dict(tech), handle, indent=2)


def load_technology(path: str) -> Technology:
    """Load a technology saved by :func:`save_technology`."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TechnologyError(f"{path}: not valid JSON ({exc})") from exc
    return technology_from_dict(data)


def technologies_equivalent(a: Technology, b: Technology,
                            rel_tol: float = 1e-9) -> bool:
    """Structural equality up to floating-point noise (used by tests to
    verify save/load round trips)."""
    import math

    if a.name != b.name or set(a.devices) != set(b.devices):
        return False
    for kind in a.devices:
        pa, pb = a.devices[kind], b.devices[kind]
        for field in ("vt0", "kp", "lam", "gamma", "phi", "cox",
                      "cj_per_width"):
            if not math.isclose(getattr(pa, field), getattr(pb, field),
                                rel_tol=rel_tol, abs_tol=1e-30):
                return False
    if set(a.static_resistance) != set(b.static_resistance):
        return False
    for key in a.static_resistance:
        if not math.isclose(a.static_resistance[key].r_square,
                            b.static_resistance[key].r_square,
                            rel_tol=rel_tol):
            return False
    has_a = a.slope_tables is not None
    has_b = b.slope_tables is not None
    if has_a != has_b:
        return False
    if has_a:
        if a.slope_tables.keys() != b.slope_tables.keys():
            return False
        for kind, transition in a.slope_tables.keys():
            ta = a.slope_tables.get(kind, transition)
            tb = b.slope_tables.get(kind, transition)
            for xs, ys in ((ta.ratios, tb.ratios),
                           (ta.delay_factors, tb.delay_factors),
                           (ta.slope_factors, tb.slope_factors)):
                if len(xs) != len(ys):
                    return False
                for x, y in zip(xs, ys):
                    if not math.isclose(x, y, rel_tol=rel_tol,
                                        abs_tol=1e-30):
                        return False
    return True
