"""Slope-model lookup tables.

The slope model (Section 4 of the paper; :mod:`repro.core.models.slope`)
replaces each device's constant effective resistance with one that depends on
the **slope ratio**

    ``r = t_in / tau``

where ``t_in`` is the full-swing-equivalent transition time of the input
signal and ``tau`` is the intrinsic RC time constant of the stage (static
path resistance times driven capacitance).  A characterized technology
carries, per ``(DeviceKind, Transition)``:

* ``delay_factor(r)``  — stage delay divided by ``tau``;
* ``slope_factor(r)``  — output transition time divided by ``tau``.

Both are stored as sampled curves on a logarithmic grid of slope ratios and
interpolated log-linearly in ``r``.  The curves are produced by the
characterization engine (:mod:`repro.core.models.characterize`) fitting
against the analog reference simulator; :func:`analytic_default_tables`
provides physically-shaped defaults so the models work before a technology
has been characterized.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from ..errors import TechnologyError
from .parameters import DeviceKind, Transition

TableKey = Tuple[DeviceKind, Transition]


@dataclass(frozen=True)
class SlopeTable:
    """One characterized curve pair: delay and output-slope factors vs ratio.

    ``ratios`` must be strictly increasing and positive.  Lookups outside the
    sampled range clamp to the end values for the low side and extrapolate
    linearly (in ``r``) on the high side — for very slow inputs both the
    delay and the output transition time grow linearly with the input
    transition time, so linear extrapolation is the physically right tail.
    """

    ratios: Tuple[float, ...]
    delay_factors: Tuple[float, ...]
    slope_factors: Tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.ratios)
        if n < 2:
            raise TechnologyError("slope table needs at least two samples")
        if len(self.delay_factors) != n or len(self.slope_factors) != n:
            raise TechnologyError("slope table arrays have mismatched lengths")
        prev = 0.0
        for r in self.ratios:
            if r <= prev:
                raise TechnologyError("slope table ratios must be increasing and > 0")
            prev = r
        for s in self.slope_factors:
            if s <= 0:
                raise TechnologyError("slope factors must be positive")

    def _interpolate(self, values: Tuple[float, ...], ratio: float) -> float:
        ratios = self.ratios
        if ratio <= ratios[0]:
            return values[0]
        if ratio >= ratios[-1]:
            # Linear tail: continue the slope of the last segment.
            r0, r1 = ratios[-2], ratios[-1]
            v0, v1 = values[-2], values[-1]
            return v1 + (v1 - v0) * (ratio - r1) / (r1 - r0)
        index = bisect.bisect_right(ratios, ratio) - 1
        r0, r1 = ratios[index], ratios[index + 1]
        v0, v1 = values[index], values[index + 1]
        # Log-linear in the ratio axis: the grid is logarithmic.
        frac = (math.log(ratio) - math.log(r0)) / (math.log(r1) - math.log(r0))
        return v0 + (v1 - v0) * frac

    def delay_factor(self, ratio: float) -> float:
        """Stage delay divided by the intrinsic time constant ``tau``."""
        if ratio < 0:
            raise TechnologyError(f"negative slope ratio {ratio!r}")
        return self._interpolate(self.delay_factors, ratio)

    def slope_factor(self, ratio: float) -> float:
        """Output transition time divided by ``tau``."""
        if ratio < 0:
            raise TechnologyError(f"negative slope ratio {ratio!r}")
        return self._interpolate(self.slope_factors, ratio)

    def to_dict(self) -> dict:
        return {
            "ratios": list(self.ratios),
            "delay_factors": list(self.delay_factors),
            "slope_factors": list(self.slope_factors),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SlopeTable":
        return cls(
            ratios=tuple(float(x) for x in data["ratios"]),
            delay_factors=tuple(float(x) for x in data["delay_factors"]),
            slope_factors=tuple(float(x) for x in data["slope_factors"]),
        )

    @classmethod
    def from_samples(cls, samples: Iterable[Tuple[float, float, float]]) -> "SlopeTable":
        """Build a table from ``(ratio, delay_factor, slope_factor)`` triples."""
        rows = sorted(samples)
        return cls(
            ratios=tuple(r for r, _, _ in rows),
            delay_factors=tuple(d for _, d, _ in rows),
            slope_factors=tuple(s for _, _, s in rows),
        )


@dataclass
class SlopeTableSet:
    """All slope tables of one technology, keyed by device kind & direction.

    The *direction* is the direction of the **output** transition the device
    drives: an nMOS pulldown appears under ``(NMOS_ENH, FALL)``, a depletion
    load under ``(NMOS_DEP, RISE)``, a pMOS pullup under ``(PMOS, RISE)``.
    Pass transistors use their own kind with the direction of the signal
    they are passing.
    """

    tables: Dict[TableKey, SlopeTable] = field(default_factory=dict)
    source: str = "analytic-default"

    def add(self, kind: DeviceKind, transition: Transition, table: SlopeTable) -> None:
        self.tables[(kind, transition)] = table

    def get(self, kind: DeviceKind, transition: Transition) -> SlopeTable:
        key = (kind, transition)
        if key in self.tables:
            return self.tables[key]
        # Fall back to the same kind's other direction (pass devices are
        # characterized in one direction in minimal sets), then to any table.
        other = (kind, transition.opposite)
        if other in self.tables:
            return self.tables[other]
        raise TechnologyError(
            f"no slope table for {kind.name}/{transition.value} "
            f"(table set source: {self.source!r})"
        )

    def has(self, kind: DeviceKind, transition: Transition) -> bool:
        return (kind, transition) in self.tables or (
            kind, transition.opposite) in self.tables

    def keys(self) -> List[TableKey]:
        return sorted(self.tables, key=lambda k: (k[0].value, k[1].value))

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "tables": {
                f"{kind.value}:{transition.value}": table.to_dict()
                for (kind, transition), table in self.tables.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SlopeTableSet":
        tables: Dict[TableKey, SlopeTable] = {}
        for key, value in data["tables"].items():
            kind_code, transition_name = key.split(":")
            tables[(DeviceKind(kind_code), Transition(transition_name))] = (
                SlopeTable.from_dict(value)
            )
        return cls(tables=tables, source=str(data.get("source", "unknown")))


def logarithmic_ratio_grid(start: float = 0.02, stop: float = 50.0,
                           points: int = 16) -> List[float]:
    """The standard grid of slope ratios used for characterization."""
    if start <= 0 or stop <= start or points < 2:
        raise TechnologyError("bad ratio grid specification")
    step = (math.log(stop) - math.log(start)) / (points - 1)
    return [math.exp(math.log(start) + i * step) for i in range(points)]


def _analytic_table(gain: float, step_slope: float) -> SlopeTable:
    """A physically-shaped default curve.

    For a step input (``r -> 0``) the delay factor tends to ln(2) ~ 0.69 (a
    single-pole RC crossing 50%) and the output transition time to
    ``step_slope * tau``.  For slow inputs both grow linearly in ``r`` with
    slope ``gain`` (delay) and roughly ``gain`` (output slope follows the
    input).  The blend uses ``r / (1 + r)`` knees, which is the shape the
    characterized curves take.
    """
    samples = []
    for ratio in logarithmic_ratio_grid():
        delay = math.log(2.0) + gain * ratio * ratio / (1.0 + ratio)
        slope = step_slope + 0.8 * gain * ratio * ratio / (1.0 + ratio)
        samples.append((ratio, delay, slope))
    return SlopeTable.from_samples(samples)


def analytic_default_tables(kinds: Iterable[DeviceKind]) -> SlopeTableSet:
    """Uncharacterized but physically-shaped tables for the given kinds.

    These make the slope model usable out of the box; running the
    characterizer (:func:`repro.core.models.characterize.characterize_technology`)
    replaces them with fitted curves.
    """
    table_set = SlopeTableSet(source="analytic-default")
    for kind in kinds:
        if kind is DeviceKind.NMOS_DEP:
            # The depletion load's gate is tied to its source: the input
            # slope reaches it only indirectly, so the curve is flatter.
            rise = _analytic_table(gain=0.15, step_slope=2.75)
            table_set.add(kind, Transition.RISE, rise)
        else:
            fall = _analytic_table(gain=0.40, step_slope=2.75)
            rise = _analytic_table(gain=0.40, step_slope=2.75)
            table_set.add(kind, Transition.FALL, fall)
            table_set.add(kind, Transition.RISE, rise)
    return table_set
