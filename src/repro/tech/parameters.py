"""Device kinds and technology parameter sets.

A :class:`Technology` bundles everything the library needs to know about a
fabrication process:

* per-device-kind SPICE level-1 parameters (used by the analog reference
  simulator in :mod:`repro.analog`),
* capacitance rules (gate and diffusion capacitance from geometry, used to
  annotate netlist nodes),
* *static* effective resistances per device kind and transition direction
  (used by the constant-resistance delay models), and
* optionally, characterized slope-model tables (see
  :mod:`repro.tech.tables`).

Two generic technologies of 1984-era magnitude ship with the library:
:data:`repro.tech.NMOS4` (4 µm depletion-load nMOS) and
:data:`repro.tech.CMOS3` (3 µm CMOS).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..errors import TechnologyError


class DeviceKind(enum.Enum):
    """The three transistor kinds of early-1980s digital MOS."""

    NMOS_ENH = "e"  #: n-channel enhancement (pulldowns, pass devices)
    NMOS_DEP = "d"  #: n-channel depletion (nMOS pullup loads)
    PMOS = "p"  #: p-channel enhancement (CMOS pullups)

    @property
    def is_n_channel(self) -> bool:
        return self is not DeviceKind.PMOS

    @property
    def polarity(self) -> int:
        """+1 for n-channel, -1 for p-channel (sign convention of currents)."""
        return 1 if self.is_n_channel else -1


class Transition(enum.Enum):
    """Direction of a signal transition."""

    RISE = "rise"
    FALL = "fall"

    @property
    def opposite(self) -> "Transition":
        return Transition.FALL if self is Transition.RISE else Transition.RISE


@dataclass(frozen=True)
class DeviceParams:
    """SPICE level-1 (Shichman-Hodges) parameters for one device kind.

    Units are SI: volts, A/V^2, F/m^2, F/m, metres.
    """

    kind: DeviceKind
    vt0: float  #: zero-bias threshold voltage (negative for depletion/PMOS)
    kp: float  #: transconductance parameter KP = mu * Cox
    lam: float = 0.02  #: channel-length modulation (1/V)
    gamma: float = 0.0  #: body-effect coefficient (sqrt(V)); 0 disables
    phi: float = 0.6  #: surface potential (V), used only when gamma > 0
    cox: float = 6.9e-4  #: gate-oxide capacitance per area (F/m^2)
    cj_per_width: float = 1.0e-9  #: junction capacitance per device width (F/m)

    def beta(self, width: float, length: float) -> float:
        """Device transconductance ``KP * W / L`` for the given geometry."""
        if width <= 0 or length <= 0:
            raise TechnologyError(
                f"non-positive geometry W={width}, L={length} for {self.kind}"
            )
        return self.kp * width / length

    def gate_capacitance(self, width: float, length: float) -> float:
        """Lumped gate capacitance ``Cox * W * L``."""
        return self.cox * width * length

    def diffusion_capacitance(self, width: float) -> float:
        """Lumped source/drain junction capacitance for one terminal."""
        return self.cj_per_width * width

    def saturation_current(self, vgs_drive: float, width: float, length: float) -> float:
        """First-order saturation current at the given gate overdrive.

        *vgs_drive* is ``|VGS|`` for the device; the magnitude of the drain
        current in saturation is returned.
        """
        over = vgs_drive - abs(self.vt0) if self.kind is not DeviceKind.NMOS_DEP else (
            vgs_drive + abs(self.vt0)
        )
        if over <= 0:
            return 0.0
        return 0.5 * self.beta(width, length) * over * over


@dataclass(frozen=True)
class StaticResistance:
    """Constant effective resistance of a device kind for one transition.

    ``r_square`` is the effective resistance of a square device (W == L);
    a device of geometry W/L has resistance ``r_square * L / W``.  This is
    the resistance used by the lumped-RC and RC-tree models; the slope model
    multiplies it by a characterized, slope-dependent factor.
    """

    r_square: float

    def resistance(self, width: float, length: float) -> float:
        if width <= 0 or length <= 0:
            raise TechnologyError(f"non-positive geometry W={width}, L={length}")
        return self.r_square * length / width


@dataclass
class Technology:
    """A complete process description.

    Parameters
    ----------
    name:
        Human-readable identifier (``"nmos4"``, ``"cmos3"``).
    vdd:
        Supply voltage in volts.
    devices:
        Level-1 parameters per :class:`DeviceKind` present in the process.
    static_resistance:
        ``(kind, transition) -> StaticResistance`` map.  *transition* is the
        direction of the **output** transition the device is driving (a
        pulldown drives FALL, a pullup drives RISE, a pass device both).
    lambda_units:
        Scale factor from netlist geometry units to metres (netlists store
        W/L in these units; defaults to 1 µm).
    default_width / default_length:
        Geometry assumed when a netlist omits it.
    temperature:
        Kelvin; informational only for the level-1 model.
    """

    name: str
    vdd: float
    devices: Dict[DeviceKind, DeviceParams]
    static_resistance: Dict[tuple, StaticResistance] = field(default_factory=dict)
    lambda_units: float = 1e-6
    default_width: float = 4e-6
    default_length: float = 2e-6
    temperature: float = 300.0
    slope_tables: Optional[object] = None  # SlopeTableSet, set by tech modules

    def params(self, kind: DeviceKind) -> DeviceParams:
        try:
            return self.devices[kind]
        except KeyError:
            raise TechnologyError(
                f"technology {self.name!r} has no {kind.name} devices"
            ) from None

    def has_kind(self, kind: DeviceKind) -> bool:
        return kind in self.devices

    def resistance(self, kind: DeviceKind, transition: Transition,
                   width: float, length: float) -> float:
        """Static effective resistance of a device for an output transition."""
        try:
            entry = self.static_resistance[(kind, transition)]
        except KeyError:
            raise TechnologyError(
                f"technology {self.name!r} has no static resistance for "
                f"{kind.name}/{transition.value}"
            ) from None
        return entry.resistance(width, length)

    def with_slope_tables(self, tables: object) -> "Technology":
        """Return a copy of this technology carrying the given slope tables."""
        return replace(self, slope_tables=tables)

    # -- convenience -------------------------------------------------------

    def logic_threshold(self) -> float:
        """The 50% voltage used for delay measurements."""
        return 0.5 * self.vdd

    def describe(self) -> str:
        lines = [f"technology {self.name}: Vdd={self.vdd:g}V"]
        for kind, params in sorted(self.devices.items(), key=lambda kv: kv[0].value):
            lines.append(
                f"  {kind.name:9s} VT0={params.vt0:+.2f}V KP={params.kp * 1e6:.1f}uA/V^2 "
                f"lambda={params.lam:g}"
            )
        return "\n".join(lines)


def analytic_static_resistance(params: DeviceParams, vdd: float) -> float:
    """Derive a first-cut square-device effective resistance analytically.

    The effective resistance of a switching device is approximated by the
    average of the large-signal resistance at the start of the transition
    (saturation at full gate drive) and at the midpoint.  For a square
    device discharging from ``vdd``:

        ``R ~ 3/4 * vdd / Idsat(W/L = 1)``

    which is the classic back-of-the-envelope used before tables are
    characterized.  The characterization engine
    (:mod:`repro.core.models.characterize`) replaces these numbers with
    fitted ones; they only serve as sane defaults.
    """
    if params.kind is DeviceKind.NMOS_DEP:
        # Depletion load with gate tied to source: constant drive |VT0|.
        over = abs(params.vt0)
    else:
        over = vdd - abs(params.vt0)
    if over <= 0:
        raise TechnologyError(
            f"{params.kind.name}: no gate overdrive at Vdd={vdd:g}V"
        )
    idsat = 0.5 * params.kp * over * over
    return 0.75 * vdd / idsat


def ratio_check(pulldown_beta: float, load_beta: float, minimum: float = 3.0) -> bool:
    """nMOS ratioed-logic sanity check: pulldown must overpower the load.

    Returns True when ``pulldown_beta / load_beta >= minimum`` (the classic
    4:1 rule uses ``minimum=4`` for inverters driven from full levels).
    """
    if load_beta <= 0:
        raise TechnologyError("non-positive load beta")
    return pulldown_beta / load_beta >= minimum - 1e-12


def thermal_voltage(temperature: float = 300.0) -> float:
    """kT/q in volts — occasionally useful for sanity checks."""
    return 1.380649e-23 * temperature / 1.602176634e-19


def subthreshold_leakage_estimate(params: DeviceParams, width: float,
                                  length: float, temperature: float = 300.0) -> float:
    """Crude subthreshold current estimate (A) at VGS=0 — used only by
    validation heuristics that flag nodes relying on charge storage for
    longer than a refresh interval."""
    vt = thermal_voltage(temperature)
    beta = params.beta(width, length)
    # I0 * exp(-VT0 / (n kT/q)) with n ~ 1.5 and I0 ~ beta * vt^2
    n_factor = 1.5
    return beta * vt * vt * math.exp(-abs(params.vt0) / (n_factor * vt))
