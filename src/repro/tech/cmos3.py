"""Generic 3 µm CMOS technology (1984-era magnitudes).

Complementary logic: an inverter pairs a 6/2 nMOS with a 12/2 pMOS (the pMOS
is widened to compensate for its lower mobility).  Absolute values are
representative, not a real fab's.
"""

from __future__ import annotations

from .parameters import (
    DeviceKind,
    DeviceParams,
    StaticResistance,
    Technology,
    Transition,
    analytic_static_resistance,
)
from .tables import analytic_default_tables

#: Standard inverter geometries (metres).
NMOS_W = 6e-6
NMOS_L = 2e-6
PMOS_W = 12e-6
PMOS_L = 2e-6
PASS_W = 4e-6
PASS_L = 2e-6

_NMOS = DeviceParams(
    kind=DeviceKind.NMOS_ENH,
    vt0=0.8,
    kp=30e-6,
    lam=0.02,
    cox=6.9e-4,
    cj_per_width=1.0e-9,
)

_PMOS = DeviceParams(
    kind=DeviceKind.PMOS,
    vt0=-0.8,
    kp=12e-6,
    lam=0.02,
    cox=6.9e-4,
    cj_per_width=1.0e-9,
)


def _build() -> Technology:
    vdd = 5.0
    r_n = analytic_static_resistance(_NMOS, vdd)
    r_p = analytic_static_resistance(_PMOS, vdd)
    tech = Technology(
        name="cmos3",
        vdd=vdd,
        devices={DeviceKind.NMOS_ENH: _NMOS, DeviceKind.PMOS: _PMOS},
        static_resistance={
            (DeviceKind.NMOS_ENH, Transition.FALL): StaticResistance(r_n),
            # nMOS passing a rising level is degraded by its threshold.
            (DeviceKind.NMOS_ENH, Transition.RISE): StaticResistance(1.8 * r_n),
            (DeviceKind.PMOS, Transition.RISE): StaticResistance(r_p),
            (DeviceKind.PMOS, Transition.FALL): StaticResistance(1.8 * r_p),
        },
        default_width=PASS_W,
        default_length=PASS_L,
    )
    return tech.with_slope_tables(analytic_default_tables(tech.devices))


#: The shared immutable-by-convention instance.
CMOS3 = _build()
