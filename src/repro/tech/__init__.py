"""Technology models: device parameters, capacitance rules, slope tables."""

from .parameters import (
    DeviceKind,
    DeviceParams,
    StaticResistance,
    Technology,
    Transition,
    analytic_static_resistance,
    ratio_check,
)
from .tables import (
    SlopeTable,
    SlopeTableSet,
    analytic_default_tables,
    logarithmic_ratio_grid,
)
from .nmos4 import NMOS4
from .cmos3 import CMOS3
from .io import (
    load_technology,
    save_technology,
    technologies_equivalent,
    technology_from_dict,
    technology_to_dict,
)

__all__ = [
    "load_technology",
    "save_technology",
    "technologies_equivalent",
    "technology_from_dict",
    "technology_to_dict",
    "DeviceKind",
    "DeviceParams",
    "StaticResistance",
    "Technology",
    "Transition",
    "analytic_static_resistance",
    "ratio_check",
    "SlopeTable",
    "SlopeTableSet",
    "analytic_default_tables",
    "logarithmic_ratio_grid",
    "NMOS4",
    "CMOS3",
]
