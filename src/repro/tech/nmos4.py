"""Generic 4 µm depletion-load nMOS technology (1984-era magnitudes).

Ratioed logic: a standard inverter uses an 8/2 enhancement pulldown against
a 2/8 depletion load (beta ratio 16:1 across the two geometries, i.e. the
classic 4:1 in W/L terms on each side).  Absolute values are representative,
not a real fab's.
"""

from __future__ import annotations

from .parameters import (
    DeviceKind,
    DeviceParams,
    StaticResistance,
    Technology,
    Transition,
    analytic_static_resistance,
)
from .tables import analytic_default_tables

#: Standard inverter geometries (metres): enhancement pulldown and
#: depletion load of a minimum ratioed nMOS inverter.
PULLDOWN_W = 8e-6
PULLDOWN_L = 2e-6
LOAD_W = 2e-6
LOAD_L = 8e-6
PASS_W = 4e-6
PASS_L = 2e-6

_ENH = DeviceParams(
    kind=DeviceKind.NMOS_ENH,
    vt0=1.0,
    kp=25e-6,
    lam=0.02,
    cox=6.9e-4,
    cj_per_width=1.0e-9,
)

_DEP = DeviceParams(
    kind=DeviceKind.NMOS_DEP,
    vt0=-3.0,
    kp=25e-6,
    lam=0.02,
    cox=6.9e-4,
    cj_per_width=1.0e-9,
)


def _build() -> Technology:
    vdd = 5.0
    r_enh = analytic_static_resistance(_ENH, vdd)
    r_dep = analytic_static_resistance(_DEP, vdd)
    tech = Technology(
        name="nmos4",
        vdd=vdd,
        devices={DeviceKind.NMOS_ENH: _ENH, DeviceKind.NMOS_DEP: _DEP},
        static_resistance={
            # Enhancement devices discharge nodes and also pass signals in
            # both directions; rising transfer through an nMOS is degraded
            # (the device turns itself off near Vdd - VT), hence the 1.8x.
            (DeviceKind.NMOS_ENH, Transition.FALL): StaticResistance(r_enh),
            (DeviceKind.NMOS_ENH, Transition.RISE): StaticResistance(1.8 * r_enh),
            # Depletion loads only ever pull nodes up.
            (DeviceKind.NMOS_DEP, Transition.RISE): StaticResistance(r_dep),
            (DeviceKind.NMOS_DEP, Transition.FALL): StaticResistance(r_dep),
        },
        default_width=PASS_W,
        default_length=PASS_L,
    )
    return tech.with_slope_tables(analytic_default_tables(tech.devices))


#: The shared immutable-by-convention instance.
NMOS4 = _build()
