"""``repro-crystal`` — the command-line face of the reproduction.

Crystal was an interactive tool fed with a ``.sim`` netlist and a handful
of commands; this CLI reproduces that workflow non-interactively:

.. code-block:: sh

    repro-crystal validate  adder.sim --tech cmos3
    repro-crystal switch    adder.sim --tech cmos3 --set a0=1 --set b0=0
    repro-crystal timing    adder.sim --tech cmos3 --input "cin=0" \
                            --model slope --report cout
    repro-crystal sweep     adder.sim --tech cmos3 --vectors vecs.txt \
                            --profile
    repro-crystal hazards   datapath.sim --tech nmos4
    repro-crystal characterize --tech nmos4 --output tables.json

Timing ``--input`` syntax: ``name=TIME`` (both edges),
``name=TIME:rise`` (rising edge only), ``name=TIME:fall`` (falling only),
``name=-`` (static side input, no events).  Times accept engineering
suffixes (``2n``, ``500p``).

The ``sweep`` subcommand runs many input vectors through **one** shared
analyzer (cache-sharing batch mode, see DESIGN.md §5b).  Vectors come
from a ``--vectors`` file (one scenario per line of ``name=TIME``
tokens, optional leading ``@label``), from repeated
``--sweep name=T1,T2,…`` cartesian axes over a ``--input`` base, or
from ``--random N --seed S`` samples.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import sys
from typing import Dict, List, Optional

from .batch import (
    VECTOR_ORDERS,
    CartesianSweep,
    RandomVectors,
    format_sweep_profile,
    format_sweep_summary,
    load_vector_file,
    parse_timing_token,
    run_sweep,
)
from .batch.vectors import with_default_slope
from .core.models import (
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    characterize_technology,
)
from .core.models.characterize import table_summary
from .core.timing import (
    TimingAnalyzer,
    arrival_table,
    find_charge_sharing_hazards,
    format_critical_path,
    format_hazard_report,
    format_worst_paths,
)
from .errors import ReproError
from .netlist import Network, sim_format, spice_format, validate_network
from .switchlevel import Logic, SwitchSimulator
from .tech import CMOS3, NMOS4, Technology, Transition
from .units import parse_value

TECHNOLOGIES: Dict[str, Technology] = {"nmos4": NMOS4, "cmos3": CMOS3}

MODELS = {
    "lumped-rc": LumpedRCModel,
    "rc-tree": RCTreeModel,
    "slope": SlopeModel,
}


def _tech(name: str, characterized: bool) -> Technology:
    try:
        base = TECHNOLOGIES[name]
    except KeyError:
        raise ReproError(
            f"unknown technology {name!r}; choose from "
            f"{', '.join(sorted(TECHNOLOGIES))}"
        ) from None
    return characterize_technology(base) if characterized else base


def _load(path: str, tech: Technology) -> Network:
    if path.endswith((".sp", ".spi", ".spice", ".cir")):
        network, _ = spice_format.load(path, tech)
        return network
    return sim_format.load(path, tech)


def _parse_timing_input(token: str) -> tuple:
    """``name=TIME``, ``name=TIME:rise``, ``name=TIME:fall`` or ``name=-``.

    Shared with the vector-file format — see
    :func:`repro.batch.parse_timing_token`.
    """
    return parse_timing_token(token)


def _parse_set(token: str) -> tuple:
    if "=" not in token:
        raise ReproError(f"bad --set {token!r}; expected name=0|1|x")
    name, value = token.split("=", 1)
    mapping = {"0": Logic.ZERO, "1": Logic.ONE, "x": Logic.X, "X": Logic.X}
    try:
        return name, mapping[value.strip()]
    except KeyError:
        raise ReproError(f"bad logic value {value!r} in --set") from None


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_validate(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=False)
    network = _load(args.netlist, tech)
    print(network.summary())
    findings = validate_network(network)
    if not findings:
        print("validation: clean")
        return 0
    for finding in findings:
        print(finding)
    errors = [f for f in findings if f.severity.value == "error"]
    return 1 if errors else 0


def cmd_switch(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=False)
    network = _load(args.netlist, tech)
    sim = SwitchSimulator(network)
    for token in args.set or []:
        name, value = _parse_set(token)
        sim.set_input(name, value)
    sim.settle()
    names = args.show or sorted(
        n.name for n in network.signal_nodes)
    for name in names:
        print(f"{name} = {sim.value(name)}")
    return 0


def _check_jobs(jobs: int) -> None:
    if jobs < 1:
        raise ReproError(f"--jobs must be at least 1, got {jobs}")


@contextlib.contextmanager
def _traced_run(args: argparse.Namespace):
    """Install a run tracer when ``--trace``/``--trace-summary`` ask for
    one, and flush it in the ``finally`` — an aborted run still writes
    the partial trace collected up to the failure (DESIGN.md §7)."""
    from .trace import spans as trace_spans
    from .trace.export import format_trace_summary, write_chrome_trace

    if not (args.trace or args.trace_summary):
        yield None
        return
    tracer = trace_spans.Tracer()
    trace_spans.install(tracer)
    try:
        yield tracer
    finally:
        trace_spans.uninstall()
        if args.trace:
            count = write_chrome_trace(tracer, args.trace,
                                       parent_pid=os.getpid())
            print(f"trace: {count} event(s) written to {args.trace}")
        if args.trace_summary:
            print(format_trace_summary(tracer.records))
            print()


def cmd_timing(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=not args.no_characterize)
    network = _load(args.netlist, tech)
    model = MODELS[args.model]()
    slope = parse_value(args.slope) if args.slope else 0.0
    inputs = {}
    for token in args.input or []:
        name, spec = _parse_timing_input(token)
        inputs[name] = with_default_slope(spec, slope)
    analyzer = TimingAnalyzer(network, model=model,
                              slope_quantum=args.slope_quantum,
                              kernel=args.kernel)
    _check_jobs(args.jobs)
    result = None
    try:
        with _traced_run(args):
            if args.jobs > 1:
                from .parallel import parallel_analyze
                result = parallel_analyze(network, inputs, jobs=args.jobs,
                                          analyzer=analyzer)
            else:
                result = analyzer.analyze(inputs)
    finally:
        # An aborted analysis (timing loop, worker error) still merged
        # its run counters into the analyzer's cumulative set — flush
        # them so --profile shows how far the run got.
        if args.profile and result is None:
            print(analyzer.perf.format_table("analysis perf counters "
                                             "(partial: run aborted)"))
            print()

    if args.profile and result.perf is not None:
        print(result.perf.format_table("analysis perf counters"))
        print()

    if args.report:
        for node in args.report:
            for transition in Transition:
                if result.has_arrival(node, transition):
                    print(format_critical_path(result, node, transition))
                    print()
    else:
        print(format_worst_paths(result, count=args.count))
        print()
        print(arrival_table(result))
    return 0


def _sweep_source(args: argparse.Namespace, network: Network, slope: float):
    """Build the vector source from the mutually exclusive sweep flags."""
    chosen = [flag for flag, given in (
        ("--vectors", args.vectors),
        ("--sweep", args.sweep),
        ("--random", args.random),
    ) if given]
    if len(chosen) != 1:
        raise ReproError(
            "sweep needs exactly one vector source: a --vectors file, "
            "one or more --sweep axes, or --random N"
        )
    if args.vectors:
        return load_vector_file(args.vectors, default_slope=slope)
    base = {}
    for token in args.input or []:
        name, spec = _parse_timing_input(token)
        base[name] = with_default_slope(spec, slope)
    if args.sweep:
        axes = {}
        for token in args.sweep:
            if "=" not in token:
                raise ReproError(
                    f"bad --sweep {token!r}; expected name=T1,T2,…")
            name, values = token.split("=", 1)
            specs = []
            for value in values.split(","):
                _, spec = _parse_timing_input(f"{name}={value.strip()}")
                specs.append(with_default_slope(spec, slope))
            axes[name] = specs
        return CartesianSweep(base=base, axes=axes)
    free = [n.name for n in network.inputs() if n.name not in base]
    if not free:
        raise ReproError("--random has no free inputs to randomize "
                         "(every primary input is pinned by --input)")
    span = parse_value(args.span) if args.span else 1e-9
    source = RandomVectors(input_names=free, count=args.random,
                           seed=args.seed, span=span, slope=slope)
    if not base:
        return source
    return ([type(v)(label=v.label, inputs={**base, **v.inputs})
             for v in source])


def cmd_sweep(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=not args.no_characterize)
    network = _load(args.netlist, tech)
    model = MODELS[args.model]()
    slope = parse_value(args.slope) if args.slope else 0.0
    _check_jobs(args.jobs)
    source = _sweep_source(args, network, slope)
    analyzer = TimingAnalyzer(network, model=model,
                              slope_quantum=args.slope_quantum,
                              kernel=args.kernel)
    sweep = None
    try:
        with _traced_run(args):
            sweep = run_sweep(network, source, watch=args.watch,
                              analyzer=analyzer, jobs=args.jobs,
                              delta=args.delta, order=args.order)
    finally:
        # Scenarios analyzed before an abort already merged their run
        # counters into the analyzer's cumulative set — flush them.
        if args.profile and sweep is None:
            print(analyzer.perf.format_table("sweep perf counters "
                                             "(partial: run aborted)"))
            print()
    if args.profile:
        print(format_sweep_profile(sweep))
        print()
    print(format_sweep_summary(sweep, count=args.count,
                               critical_path=not args.no_critical_path))
    return 0


def cmd_hazards(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=False)
    network = _load(args.netlist, tech)
    states = dict(_parse_set(t) for t in args.set or []) or None
    hazards = find_charge_sharing_hazards(network, states,
                                          threshold=args.threshold)
    print(format_hazard_report(hazards))
    return 1 if hazards and args.strict else 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .perf import PerfCounters
    from .verify import (ConformanceConfig, ConformanceRunner, check_case,
                         format_verify_report, load_reproducer, parse_modes)

    tech = _tech(args.tech, characterized=False)
    perf = PerfCounters()
    completed = False
    try:
        with _traced_run(args):
            if args.replay:
                case, modes, model_name, manifest = load_reproducer(
                    args.replay, tech)
                findings = check_case(case, modes, model_name, perf)
                expected = len(manifest.get("discrepancies", []))
                print(f"replay {case.name}: {len(findings)} "
                      f"discrepancy(ies) (manifest recorded {expected})")
                for finding in findings:
                    print(f"  {finding}")
                completed = True
                if args.profile:
                    print()
                    print(perf.format_table("verify perf counters"))
                return 1 if findings else 0

            if args.cases < 1:
                raise ReproError(
                    f"--cases must be at least 1, got {args.cases}")
            modes = parse_modes(args.modes)
            config = ConformanceConfig(
                tech=tech, tech_name=args.tech, model_name=args.model,
                seed=args.seed, cases=args.cases, max_size=args.max_size,
                vectors_per_case=args.vectors, modes=modes,
                invariants=not args.no_invariants, shrink=not args.no_shrink,
                out_dir=args.out)
            report = ConformanceRunner(config, perf=perf).run()
            print(format_verify_report(report, modes))
            completed = True
            if args.profile:
                print()
                print(perf.format_table("verify perf counters"))
            return 0 if report.ok else 1
    finally:
        # Cases checked before an abort already counted — flush them.
        if args.profile and not completed:
            print(perf.format_table("verify perf counters "
                                    "(partial: run aborted)"))
            print()


def cmd_trend(args: argparse.Namespace) -> int:
    import time as _time

    from .trace.trends import (HISTORY_FILE, TrendEntry, collect_metrics,
                               format_trend_report, load_history,
                               record_entry)

    bench_dir = pathlib.Path(args.bench_dir)
    metrics = collect_metrics(bench_dir)
    if not metrics:
        raise ReproError(f"no BENCH_*.json metrics under {bench_dir}")
    history_path = (pathlib.Path(args.history) if args.history
                    else bench_dir / HISTORY_FILE)
    history = load_history(history_path)
    previous = history[-1] if history else None
    if args.no_record:
        current = TrendEntry(
            timestamp=_time.strftime("%Y-%m-%dT%H:%M:%S"),
            metrics=metrics)
    else:
        current = record_entry(history_path, metrics)
    print(format_trend_report(previous, current, show_all=args.all))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import ServiceConfig, serve

    if args.pool_size < 1:
        raise ReproError(f"--pool-size must be at least 1, "
                         f"got {args.pool_size}")
    if args.queue_limit < 1:
        raise ReproError(f"--queue-limit must be at least 1, "
                         f"got {args.queue_limit}")
    if args.timeout <= 0:
        raise ReproError(f"--timeout must be positive, got {args.timeout}")
    return serve(ServiceConfig(
        host=args.host, port=args.port, pool_size=args.pool_size,
        queue_limit=args.queue_limit, timeout=args.timeout,
        trace=args.trace))


def cmd_characterize(args: argparse.Namespace) -> int:
    tech = _tech(args.tech, characterized=True)
    print(table_summary(tech))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(tech.slope_tables.to_dict(), handle, indent=2)
        print(f"tables written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-crystal",
        description="Switch-level delay analysis (Ousterhout, DAC 1984)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, netlist=True):
        if netlist:
            p.add_argument("netlist", help=".sim or SPICE-subset file")
        p.add_argument("--tech", default="cmos3",
                       choices=sorted(TECHNOLOGIES),
                       help="technology (default: cmos3)")

    def add_tracing(p):
        p.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace_event JSON of the run "
                            "(open in chrome://tracing or "
                            "ui.perfetto.dev); worker spans included")
        p.add_argument("--trace-summary", action="store_true",
                       help="print the flat per-span time table "
                            "(count, total, self) after the run")

    p = sub.add_parser("validate", help="netlist sanity checks")
    add_common(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("switch", help="switch-level steady state")
    add_common(p)
    p.add_argument("--set", action="append", metavar="NODE=0|1|x",
                   help="force an input (repeatable)")
    p.add_argument("--show", action="append", metavar="NODE",
                   help="nodes to print (default: all signals)")
    p.set_defaults(func=cmd_switch)

    p = sub.add_parser("timing", help="static timing analysis")
    add_common(p)
    p.add_argument("--input", action="append", metavar="NODE=TIME[r|f]|-",
                   help="primary input timing (repeatable)")
    p.add_argument("--model", default="slope", choices=sorted(MODELS))
    p.add_argument("--slope", metavar="TIME",
                   help="input transition time (e.g. 500p)")
    p.add_argument("--report", action="append", metavar="NODE",
                   help="print the critical path to NODE")
    p.add_argument("--count", type=int, default=5,
                   help="worst arrivals to list (default 5)")
    p.add_argument("--no-characterize", action="store_true",
                   help="use analytic default tables (fast, less accurate)")
    p.add_argument("--profile", action="store_true",
                   help="print engine perf counters (stage visits, model "
                        "evaluations, cache hits, worklist traffic)")
    p.add_argument("--slope-quantum", type=float, default=0.0,
                   metavar="FRACTION",
                   help="relative slope quantization for the delay-model "
                        "memo cache (e.g. 0.05; default 0 = exact)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for level-front stage sharding "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--kernel", default="numpy",
                   choices=("numpy", "python"),
                   help="RC-tree delay kernel: vectorized tree templates "
                        "(numpy, default) or the scalar dict-tree "
                        "reference (python); results agree to 1e-9")
    add_tracing(p)
    p.set_defaults(func=cmd_timing)

    p = sub.add_parser(
        "sweep", help="batch scenario sweep through one shared analyzer")
    add_common(p)
    p.add_argument("--vectors", metavar="FILE",
                   help="vector file: one scenario per line of NODE=TIME "
                        "tokens (optional leading @label)")
    p.add_argument("--input", action="append", metavar="NODE=TIME[r|f]|-",
                   help="base input timing for --sweep/--random "
                        "(repeatable)")
    p.add_argument("--sweep", action="append", metavar="NODE=T1,T2,…",
                   help="cartesian axis: sweep NODE over the listed times "
                        "(repeatable; crossed with other axes)")
    p.add_argument("--random", type=int, metavar="N",
                   help="N seeded-random vectors over the unpinned inputs")
    p.add_argument("--seed", type=int, default=0,
                   help="random-vector seed (default 0)")
    p.add_argument("--span", metavar="TIME", default="1n",
                   help="random arrival window [0, SPAN] (default 1n)")
    p.add_argument("--model", default="slope", choices=sorted(MODELS))
    p.add_argument("--slope", metavar="TIME",
                   help="input transition time applied to every vector")
    p.add_argument("--watch", action="append", metavar="NODE",
                   help="rank scenarios by these nodes only (repeatable)")
    p.add_argument("--count", type=int, default=20,
                   help="scenarios listed in the summary table (default 20)")
    p.add_argument("--no-critical-path", action="store_true",
                   help="skip the worst vector's critical-path report")
    p.add_argument("--no-characterize", action="store_true",
                   help="use analytic default tables (fast, less accurate)")
    p.add_argument("--profile", action="store_true",
                   help="print per-scenario and batch perf counters "
                        "(cross-scenario cache hit rate)")
    p.add_argument("--slope-quantum", type=float, default=0.0,
                   metavar="FRACTION",
                   help="relative slope quantization for the delay-model "
                        "memo cache (e.g. 0.05; default 0 = exact)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for scenario sharding (default "
                        "1 = serial; reports are byte-identical)")
    p.add_argument("--kernel", default="numpy",
                   choices=("numpy", "python"),
                   help="RC-tree delay kernel: vectorized tree templates "
                        "(numpy, default) or the scalar dict-tree "
                        "reference (python); results agree to 1e-9")
    p.add_argument("--delta", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="dirty-cone delta re-analysis between consecutive "
                        "vectors (default on; results are bit-identical, "
                        "--no-delta re-analyzes every vector from scratch)")
    p.add_argument("--order", default="given", choices=VECTOR_ORDERS,
                   help="analysis order: given (source order), gray "
                        "(cartesian Gray code, minimal input deltas), or "
                        "greedy (nearest-neighbour Hamming); reports stay "
                        "in source order (default: given)")
    add_tracing(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("hazards", help="charge-sharing hazard scan")
    add_common(p)
    p.add_argument("--set", action="append", metavar="NODE=0|1|x")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="minimum level loss reported (default 0.25)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero when hazards are found")
    p.set_defaults(func=cmd_hazards)

    p = sub.add_parser(
        "verify",
        help="cross-engine conformance: differential fuzzing over "
             "generated netlists, metamorphic invariants, failure "
             "shrinking")
    add_common(p, netlist=False)
    p.add_argument("--seed", type=int, default=0,
                   help="case-stream seed (default 0)")
    p.add_argument("--cases", type=int, default=20, metavar="N",
                   help="generated conformance cases (default 20)")
    p.add_argument("--modes", metavar="M1,M2,…",
                   help="engine modes to cross-check (default: all); see "
                        "DESIGN.md §6 for the matrix")
    p.add_argument("--max-size", type=int, default=24, metavar="N",
                   help="max transistors per generated case (default 24)")
    p.add_argument("--vectors", type=int, default=4, metavar="N",
                   help="input vectors per case (default 4)")
    p.add_argument("--model", default="rc-tree", choices=sorted(MODELS),
                   help="delay model under test (default rc-tree — the "
                        "only model with distinct kernel backends)")
    p.add_argument("--no-invariants", action="store_true",
                   help="skip the metamorphic invariant checks")
    p.add_argument("--no-shrink", action="store_true",
                   help="report failures without delta-debugging them")
    p.add_argument("--out", metavar="DIR",
                   help="write .sim/.vec/manifest reproducers for failing "
                        "cases into DIR")
    p.add_argument("--replay", metavar="MANIFEST.json",
                   help="re-run a previously emitted reproducer instead "
                        "of generating cases")
    p.add_argument("--profile", action="store_true",
                   help="print verify_* perf counters")
    add_tracing(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "trend",
        help="cross-run bench trend: deltas of every BENCH_*.json metric "
             "vs the previous recorded snapshot")
    p.add_argument("--bench-dir", default="benchmarks", metavar="DIR",
                   help="directory holding BENCH_*.json baselines "
                        "(default: benchmarks)")
    p.add_argument("--history", metavar="FILE",
                   help="history file (default: DIR/BENCH_history.jsonl)")
    p.add_argument("--no-record", action="store_true",
                   help="report without appending a snapshot to the "
                        "history file")
    p.add_argument("--all", action="store_true",
                   help="list unchanged metrics too (default: fold "
                        "changes under 0.5%% away)")
    p.set_defaults(func=cmd_trend)

    p = sub.add_parser(
        "serve",
        help="JSON-over-HTTP timing daemon: warm analyzer pool keyed by "
             "netlist content hash, cross-request delta coalescing "
             "(DESIGN.md §10)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8351,
                   help="TCP port; 0 picks a free one and prints it "
                        "(default 8351)")
    p.add_argument("--pool-size", type=int, default=4, metavar="N",
                   help="warm analyzers kept (LRU beyond this; default 4)")
    p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                   help="pending requests before 429 rejection "
                        "(default 64)")
    p.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                   help="per-request analysis timeout → 504 (default 30)")
    p.add_argument("--trace", metavar="FILE",
                   help="write the whole serving session as Chrome "
                        "trace_event JSON at shutdown (request spans "
                        "nest batch and engine spans)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("characterize", help="fit and dump slope tables")
    add_common(p, netlist=False)
    p.add_argument("--output", "-o", metavar="FILE.json")
    p.set_defaults(func=cmd_characterize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, dispatch, and turn engine failures into exit 2.

    Every subcommand funnels through this one handler: a
    :class:`ReproError` of any flavour (parse, timing, sweep, trace,
    service) or an :class:`OSError` that escaped the engine layers
    (unwritable ``--output``/``--trace`` targets, unreadable inputs)
    becomes a one-line ``error: …`` diagnostic on stderr and exit code
    2 — never a raw traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
