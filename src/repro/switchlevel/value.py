"""Ternary logic values and signal strengths for switch-level simulation.

The value system is the classic Bryant/MOSSIM one: three logic values
(0, 1, X for unknown/conflict) and a small ordered strength ladder —
driven (rails, inputs, enhancement paths), depletion-weak (nMOS pullup
loads), and charged (isolated node capacitance).  A stronger signal always
overrides a weaker one; equal-strength conflicts produce X.
"""

from __future__ import annotations

import enum
from typing import Iterable


class Logic(enum.Enum):
    """A ternary logic level."""

    ZERO = 0
    ONE = 1
    X = 2

    def __invert__(self) -> "Logic":
        if self is Logic.ZERO:
            return Logic.ONE
        if self is Logic.ONE:
            return Logic.ZERO
        return Logic.X

    def __and__(self, other: "Logic") -> "Logic":
        if Logic.ZERO in (self, other):
            return Logic.ZERO
        if self is Logic.ONE and other is Logic.ONE:
            return Logic.ONE
        return Logic.X

    def __or__(self, other: "Logic") -> "Logic":
        if Logic.ONE in (self, other):
            return Logic.ONE
        if self is Logic.ZERO and other is Logic.ZERO:
            return Logic.ZERO
        return Logic.X

    def __xor__(self, other: "Logic") -> "Logic":
        if Logic.X in (self, other):
            return Logic.X
        return Logic.ONE if self is not other else Logic.ZERO

    @property
    def is_known(self) -> bool:
        return self is not Logic.X

    @classmethod
    def from_bool(cls, value: bool) -> "Logic":
        return cls.ONE if value else cls.ZERO

    @classmethod
    def from_voltage(cls, voltage: float, vdd: float,
                     low_frac: float = 0.3, high_frac: float = 0.7) -> "Logic":
        """Classify an analog voltage with a noise-margin dead zone."""
        if voltage <= low_frac * vdd:
            return cls.ZERO
        if voltage >= high_frac * vdd:
            return cls.ONE
        return cls.X

    def to_voltage(self, vdd: float) -> float:
        """Nominal voltage of the level (X maps to midrail)."""
        if self is Logic.ZERO:
            return 0.0
        if self is Logic.ONE:
            return vdd
        return 0.5 * vdd

    def __str__(self) -> str:
        return {Logic.ZERO: "0", Logic.ONE: "1", Logic.X: "X"}[self]


class Strength(enum.IntEnum):
    """Signal strength ladder, strongest last so comparisons read naturally."""

    NONE = 0  #: no signal at all
    CHARGED = 1  #: stored charge on an isolated node
    DEPLETION = 2  #: a depletion pullup load
    DRIVEN = 3  #: a rail, a primary input, or an enhancement path to one


def resolve(values: Iterable[Logic]) -> Logic:
    """Wired resolution of equal-strength contributions."""
    result: Logic | None = None
    for value in values:
        if result is None:
            result = value
        elif result is not value:
            return Logic.X
    return result if result is not None else Logic.X
