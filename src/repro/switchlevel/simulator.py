"""Event-driven switch-level simulator.

Unit-delay event simulation over the stage decomposition: when a node
changes, every stage it gates (or feeds as a boundary) is re-solved; stages
settle to a fixed point or are reported as oscillating.  This is the
substrate the timing analyzer uses to establish steady-state node values,
and a usable logic simulator in its own right (see
``examples/switch_level_sim.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..errors import SimulationError
from ..netlist import GND, VDD, Network
from ..netlist.stages import Stage, StageMap
from .solver import solve_stage
from .value import Logic


@dataclass
class SimulationTrace:
    """Record of one settle() call: per-iteration node changes."""

    events: List[Tuple[int, str, Logic]] = field(default_factory=list)
    #: stage solves this settle() paid — the delta-sweep analogue for the
    #: simulator: re-driving few inputs keeps this near the cone size
    stages_solved: int = 0

    def changed_nodes(self) -> Set[str]:
        return {name for _, name, _ in self.events}


class SwitchSimulator:
    """Switch-level logic simulation of a :class:`~repro.netlist.Network`.

    Usage::

        sim = SwitchSimulator(network)
        sim.set_inputs(a=1, b=0)
        sim.settle()
        assert sim.value("y") is Logic.ONE
    """

    #: Safety valve: a stage re-evaluated more than this many times within
    #: one settle() call is assumed to oscillate.
    MAX_STAGE_VISITS = 200

    def __init__(self, network: Network,
                 initial: Optional[Mapping[str, Logic]] = None):
        self.network = network
        self.stage_map = StageMap.build(network)
        self._values: Dict[str, Logic] = {}
        for node in network.nodes:
            self._values[node.name] = Logic.X
        self._values[VDD] = Logic.ONE
        self._values[GND] = Logic.ZERO
        if initial:
            for name, value in initial.items():
                self._values[network.node(name).name] = value
        # Stages sensitive to each node (as gate or boundary input).
        self._sensitivity: Dict[str, List[Stage]] = {}
        for stage in self.stage_map.stages:
            for node in stage.gate_inputs | stage.boundary_nodes:
                self._sensitivity.setdefault(node, []).append(stage)
        self._dirty: Set[int] = set()
        self._stages_by_index = {s.index: s for s in self.stage_map.stages}
        # Everything is dirty until the first settle.
        self._dirty.update(self._stages_by_index)

    # ------------------------------------------------------------------

    def value(self, node: str) -> Logic:
        name = self.network.node(node).name
        return self._values[name]

    def values(self) -> Dict[str, Logic]:
        return dict(self._values)

    def set_input(self, node: str, value) -> None:
        """Force a primary input (or any externally driven node)."""
        name = self.network.node(node).name
        if name in (VDD, GND):
            raise SimulationError(f"cannot drive supply rail {name!r}")
        logic = self._coerce(value)
        if self._values[name] is logic:
            return
        self._values[name] = logic
        self._mark_dirty(name)

    def set_inputs(self, **assignments) -> None:
        for name, value in assignments.items():
            self.set_input(name, value)

    def set_vector(self, assignments: Mapping[str, object]) -> Set[str]:
        """Drive a whole input vector; returns the nodes that changed.

        The incremental companion to :meth:`set_inputs`: unchanged
        assignments mark nothing dirty, so the following
        :meth:`settle` only re-solves the changed inputs' fanout cone —
        the simulator-side mirror of the timing engine's delta sweeps.
        """
        changed: Set[str] = set()
        for name, value in assignments.items():
            canonical = self.network.node(name).name
            before = self._values[canonical]
            self.set_input(name, value)
            if self._values[canonical] is not before:
                changed.add(canonical)
        return changed

    def settle(self) -> SimulationTrace:
        """Propagate until no stage changes; returns the event trace.

        Raises :class:`~repro.errors.SimulationError` when a stage keeps
        toggling (a switch-level oscillation, e.g. an enabled ring
        oscillator).
        """
        trace = SimulationTrace()
        visits: Dict[int, int] = {}
        iteration = 0
        while self._dirty:
            iteration += 1
            index = min(self._dirty)  # deterministic order
            self._dirty.discard(index)
            stage = self._stages_by_index[index]
            visits[index] = visits.get(index, 0) + 1
            if visits[index] > self.MAX_STAGE_VISITS:
                nodes = ", ".join(sorted(stage.internal_nodes))
                raise SimulationError(
                    f"switch-level oscillation in stage [{nodes}]"
                )
            new_values = solve_stage(self.network, stage, self._values)
            trace.stages_solved += 1
            for node, value in new_values.items():
                if self._values[node] is not value:
                    self._values[node] = value
                    trace.events.append((iteration, node, value))
                    self._mark_dirty(node)
        return trace

    def run(self, **assignments) -> Dict[str, Logic]:
        """Set inputs, settle, and return all node values."""
        self.set_inputs(**assignments)
        self.settle()
        return self.values()

    # ------------------------------------------------------------------

    def _mark_dirty(self, node: str) -> None:
        if node not in self._values:
            raise SimulationError(
                f"cannot mark unknown node {node!r} dirty: not a node of "
                f"network {self.network.name!r}")
        for stage in self._sensitivity.get(node, ()):
            self._dirty.add(stage.index)

    @staticmethod
    def _coerce(value) -> Logic:
        if isinstance(value, Logic):
            return value
        if value in (0, False):
            return Logic.ZERO
        if value in (1, True):
            return Logic.ONE
        if value in ("x", "X", None):
            return Logic.X
        raise SimulationError(f"cannot interpret {value!r} as a logic level")


def exhaustive_truth_table(network: Network, inputs: Iterable[str],
                           outputs: Iterable[str]) -> List[Tuple[Tuple[int, ...], Dict[str, Logic]]]:
    """Evaluate the network for every input combination (small circuits).

    Returns ``[(input_bits, {output: value}), …]`` — handy for functional
    verification of generated circuits in tests.
    """
    input_list = list(inputs)
    output_list = list(outputs)
    if len(input_list) > 16:
        raise SimulationError("truth table limited to 16 inputs")
    rows = []
    for pattern in range(2 ** len(input_list)):
        sim = SwitchSimulator(network)
        bits = tuple((pattern >> i) & 1 for i in range(len(input_list)))
        for name, bit in zip(input_list, bits):
            sim.set_input(name, bit)
        sim.settle()
        rows.append((bits, {name: sim.value(name) for name in output_list}))
    return rows
