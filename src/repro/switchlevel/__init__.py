"""Switch-level (ternary, strength-based) logic simulation."""

from .value import Logic, Strength, resolve
from .solver import Conduction, conduction_state, solve_stage
from .simulator import SimulationTrace, SwitchSimulator, exhaustive_truth_table

__all__ = [
    "Logic",
    "Strength",
    "resolve",
    "Conduction",
    "conduction_state",
    "solve_stage",
    "SimulationTrace",
    "SwitchSimulator",
    "exhaustive_truth_table",
]
