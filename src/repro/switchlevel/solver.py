"""Per-stage steady-state solver.

Given the logic values of a stage's gate inputs and boundary nodes (rails
and primary inputs) plus the previous values of its internal nodes (their
stored charge), compute the new steady-state value of every internal node.

The algorithm is the interval/strength relaxation of MOSSIM II: for each
logic level ``v`` and node ``n`` it computes

* ``definite[v][n]`` — the strongest source of level ``v`` that reaches
  ``n`` through *definitely conducting* transistors, and
* ``possible[v][n]`` — the strongest source that *might* reach ``n`` when
  transistors with X gates are allowed to conduct.

A node settles to ``v`` only when its strongest definite ``v`` beats every
possible source of the opposite level; otherwise it is X.  Strength decays
through devices: a depletion load caps strength at DEPLETION; charge is
always CHARGED.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import SimulationError
from ..netlist import GND, VDD, Network
from ..netlist.stages import Stage
from ..tech import DeviceKind
from .value import Logic, Strength


@dataclass(frozen=True)
class Conduction:
    """A transistor's conduction state for given gate value."""

    definite: bool
    possible: bool


def conduction_state(kind: DeviceKind, gate_value: Logic,
                     is_load: bool) -> Conduction:
    """Whether a device conducts: definitely / possibly."""
    if kind is DeviceKind.NMOS_DEP:
        # VT is a few volts negative: the device conducts for any logic
        # level on its gate (loads have the gate tied anyway).
        del is_load
        return Conduction(definite=True, possible=True)
    if kind is DeviceKind.NMOS_ENH:
        on = gate_value is Logic.ONE
        off = gate_value is Logic.ZERO
    else:  # PMOS
        on = gate_value is Logic.ZERO
        off = gate_value is Logic.ONE
    if on:
        return Conduction(definite=True, possible=True)
    if off:
        return Conduction(definite=False, possible=False)
    return Conduction(definite=False, possible=True)


def _device_strength_limit(device, kind: DeviceKind) -> Strength:
    if device.is_load:
        return Strength.DEPLETION
    return Strength.DRIVEN


def solve_stage(network: Network, stage: Stage,
                signals: Mapping[str, Logic]) -> Dict[str, Logic]:
    """Steady-state values of *stage*'s internal nodes.

    *signals* must provide values for: every gate input of the stage, every
    boundary node, and the previous value of every internal node (the
    charge state).  Missing entries default to X, which is always safe.
    """
    internal = sorted(stage.internal_nodes)
    if not internal:
        return {}

    def sig(name: str) -> Logic:
        if name == VDD:
            return Logic.ONE
        if name == GND:
            return Logic.ZERO
        return signals.get(name, Logic.X)

    # strength[definite?][level][node]
    levels = (Logic.ZERO, Logic.ONE)
    definite: Dict[Logic, Dict[str, Strength]] = {
        v: {n: Strength.NONE for n in internal} for v in levels}
    possible: Dict[Logic, Dict[str, Strength]] = {
        v: {n: Strength.NONE for n in internal} for v in levels}

    # Seed with stored charge.
    for node in internal:
        previous = sig(node)
        if previous is Logic.X:
            possible[Logic.ZERO][node] = max(possible[Logic.ZERO][node],
                                             Strength.CHARGED)
            possible[Logic.ONE][node] = max(possible[Logic.ONE][node],
                                            Strength.CHARGED)
        else:
            definite[previous][node] = max(definite[previous][node],
                                           Strength.CHARGED)
            possible[previous][node] = max(possible[previous][node],
                                           Strength.CHARGED)

    # Prepare conduction + strength cap per device.
    prepared = []
    for device in stage.transistors:
        cond = conduction_state(device.kind, sig(device.gate), device.is_load)
        if not cond.possible:
            continue
        limit = _device_strength_limit(device, device.kind)
        prepared.append((device, cond, limit))
    # Explicit resistors conduct unconditionally at full strength.
    for res in stage.resistors:
        prepared.append((res, Conduction(True, True), Strength.DRIVEN))

    def boundary_strength(name: str, level: Logic) -> Strength:
        value = sig(name)
        if value is level:
            return Strength.DRIVEN
        if value is Logic.X:
            return Strength.NONE  # handled through `possible` below
        return Strength.NONE

    def boundary_possible(name: str, level: Logic) -> Strength:
        value = sig(name)
        if value is level or value is Logic.X:
            return Strength.DRIVEN
        return Strength.NONE

    # Relax to fixed point: small stages, so a simple sweep loop is fine.
    changed = True
    sweeps = 0
    while changed:
        changed = False
        sweeps += 1
        if sweeps > 4 * (len(internal) + len(prepared) + 2):
            raise SimulationError(
                f"stage {stage.index} strength relaxation did not settle"
            )
        for element, cond, limit in prepared:
            if hasattr(element, "channel"):
                a, b = element.channel
            else:
                a, b = element.node_a, element.node_b
            for src, dst in ((a, b), (b, a)):
                if dst not in stage.internal_nodes:
                    continue
                for level in levels:
                    if src in stage.internal_nodes:
                        src_def = definite[level][src]
                        src_pos = possible[level][src]
                    else:
                        src_def = boundary_strength(src, level)
                        src_pos = boundary_possible(src, level)
                    new_def = min(src_def, limit)
                    new_pos = min(src_pos, limit)
                    if cond.definite and new_def > definite[level][dst]:
                        definite[level][dst] = new_def
                        changed = True
                    if cond.possible and new_pos > possible[level][dst]:
                        possible[level][dst] = new_pos
                        changed = True

    result: Dict[str, Logic] = {}
    for node in internal:
        s0, s1 = definite[Logic.ZERO][node], definite[Logic.ONE][node]
        p0, p1 = possible[Logic.ZERO][node], possible[Logic.ONE][node]
        if s1 > Strength.NONE and s1 >= p0 and (p0 == Strength.NONE or s1 > p0):
            result[node] = Logic.ONE
        elif s0 > Strength.NONE and (p1 == Strength.NONE or s0 > p1):
            result[node] = Logic.ZERO
        else:
            result[node] = Logic.X
    return result
