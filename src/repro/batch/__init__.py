"""Batch scenario sweeps: many input vectors, one shared analyzer.

The subsystem behind the ``sweep`` CLI subcommand (see DESIGN.md §5b):
vector sources (:mod:`repro.batch.vectors`), the cache-sharing sweep
engine (:mod:`repro.batch.sweep`), and the summary/profile reports
(:mod:`repro.batch.report`).
"""

from .vectors import (
    CartesianSweep,
    ExplicitVectors,
    RandomVectors,
    Vector,
    VectorSource,
    load_vector_file,
    parse_timing_token,
    parse_vector_line,
)
from .sweep import ScenarioOutcome, SweepResult, run_scenarios, run_sweep
from .report import format_sweep_profile, format_sweep_summary

__all__ = [
    "CartesianSweep",
    "ExplicitVectors",
    "RandomVectors",
    "Vector",
    "VectorSource",
    "load_vector_file",
    "parse_timing_token",
    "parse_vector_line",
    "ScenarioOutcome",
    "SweepResult",
    "run_scenarios",
    "run_sweep",
    "format_sweep_profile",
    "format_sweep_summary",
]
