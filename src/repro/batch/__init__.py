"""Batch scenario sweeps: many input vectors, one shared analyzer.

The subsystem behind the ``sweep`` CLI subcommand (see DESIGN.md §5b):
vector sources (:mod:`repro.batch.vectors`), the cache-sharing sweep
engine (:mod:`repro.batch.sweep`), and the summary/profile reports
(:mod:`repro.batch.report`).
"""

from .vectors import (
    VECTOR_ORDERS,
    CartesianSweep,
    ExplicitVectors,
    RandomVectors,
    Vector,
    VectorSource,
    dump_vector_file,
    format_timing_token,
    format_vector_line,
    greedy_hamming_order,
    load_vector_file,
    order_vectors,
    pair_deltas,
    parse_timing_token,
    parse_vector_line,
    vector_delta,
)
from .sweep import (OrderStats, ScenarioOutcome, SweepResult, run_scenarios,
                    run_sweep)
from .report import format_sweep_profile, format_sweep_summary

__all__ = [
    "VECTOR_ORDERS",
    "CartesianSweep",
    "ExplicitVectors",
    "RandomVectors",
    "Vector",
    "VectorSource",
    "dump_vector_file",
    "format_timing_token",
    "format_vector_line",
    "greedy_hamming_order",
    "load_vector_file",
    "order_vectors",
    "pair_deltas",
    "parse_timing_token",
    "parse_vector_line",
    "vector_delta",
    "OrderStats",
    "ScenarioOutcome",
    "SweepResult",
    "run_scenarios",
    "run_sweep",
    "format_sweep_profile",
    "format_sweep_summary",
]
