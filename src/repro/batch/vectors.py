"""Input-vector sources for batch scenario sweeps.

A *vector* is one complete primary-input timing assignment — the same
``{node: InputSpec}`` mapping a single ``TimingAnalyzer.analyze()`` call
takes — plus a label for reports.  The sweep engine
(:mod:`repro.batch.sweep`) consumes any iterable of :class:`Vector`;
this module provides the three stock sources:

* :class:`ExplicitVectors` — a literal list (and the vector-file parser,
  :func:`load_vector_file`);
* :class:`CartesianSweep` — the cross product of per-node candidate
  timings over a base assignment;
* :class:`RandomVectors` — a seeded random sample, for differential
  testing against the reference engine.

Vector-file syntax (one scenario per line)::

    # comment / blank lines ignored
    @label  a=0 b=200p cin=1n:rise phi=0~500p/100p en=-

Each token is ``NODE=TIME`` (both edges), ``NODE=TIME:rise`` /
``NODE=TIME:fall`` (one edge), ``NODE=RISE~FALL`` (both edges at
different times — the shape of a clock phase; either side may be ``-``),
or ``NODE=-`` (static side input).  Any transitioning form takes an
optional ``/SLOPE`` suffix giving that input's transition time.  Times
accept engineering suffixes (``2n``, ``500p``).  The optional leading
``@label`` names the scenario; unlabeled lines are named ``v0``, ``v1``…
by position.

:func:`format_timing_token` / :func:`dump_vector_file` write the same
grammar back out, losslessly — the conformance shrinker
(:mod:`repro.verify`) depends on that round trip for its reproducer
artifacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from ..core.timing import InputSpec
from ..errors import SweepError
from ..units import parse_value

__all__ = [
    "Vector",
    "VectorSource",
    "ExplicitVectors",
    "CartesianSweep",
    "RandomVectors",
    "parse_timing_token",
    "parse_vector_line",
    "load_vector_file",
    "format_timing_token",
    "format_vector_line",
    "dump_vector_file",
    "vector_delta",
    "pair_deltas",
    "greedy_hamming_order",
    "order_vectors",
    "VECTOR_ORDERS",
]

#: Orders :func:`order_vectors` understands (also the CLI's ``--order``).
VECTOR_ORDERS = ("given", "gray", "greedy")


@dataclass(frozen=True)
class Vector:
    """One labeled input scenario."""

    label: str
    inputs: Mapping[str, InputSpec]


def _parse_time(value: str, token: str) -> float:
    try:
        return parse_value(value)
    except Exception as exc:
        raise SweepError(f"bad time {value!r} in {token!r}: {exc}") from None


def parse_timing_token(token: str) -> Tuple[str, InputSpec]:
    """``name=TIME``, ``name=TIME:rise``, ``name=TIME:fall``,
    ``name=RISE~FALL`` or ``name=-``; transitioning forms take an
    optional ``/SLOPE`` suffix."""
    if "=" not in token:
        raise SweepError(f"bad timing token {token!r}; expected name=TIME")
    name, value = token.split("=", 1)
    name = name.strip()
    value = value.strip()
    if not name:
        raise SweepError(f"bad timing token {token!r}; empty node name")
    if value == "-":
        return name, InputSpec(arrival_rise=None, arrival_fall=None)
    slope = 0.0
    if "/" in value:
        value, slope_text = value.rsplit("/", 1)
        try:
            slope = parse_value(slope_text)
        except Exception as exc:
            raise SweepError(
                f"bad slope {slope_text!r} in {token!r}: {exc}") from None
        if not value or value == "-":
            raise SweepError(
                f"slope on static token {token!r} is meaningless")
    if "~" in value:
        rise_text, fall_text = value.split("~", 1)
        rise = None if rise_text == "-" else _parse_time(rise_text, token)
        fall = None if fall_text == "-" else _parse_time(fall_text, token)
        return name, InputSpec(arrival_rise=rise, arrival_fall=fall,
                               slope=slope)
    edge = "both"
    if ":" in value:
        value, edge = value.rsplit(":", 1)
        if edge not in ("rise", "fall"):
            raise SweepError(
                f"bad edge tag {edge!r} in {token!r}; use :rise or :fall")
    time = _parse_time(value, token)
    if edge == "rise":
        return name, InputSpec(arrival_rise=time, arrival_fall=None,
                               slope=slope)
    if edge == "fall":
        return name, InputSpec(arrival_rise=None, arrival_fall=time,
                               slope=slope)
    return name, InputSpec(arrival_rise=time, arrival_fall=time, slope=slope)


def format_timing_token(name: str, spec: InputSpec) -> str:
    """The exact inverse of :func:`parse_timing_token`.

    Times and slopes are written as ``repr(float)`` — full precision, so
    ``parse_timing_token(format_timing_token(n, s)) == (n, s)`` holds
    bit-for-bit (the reproducer round-trip tests pin this down).
    """
    rise, fall = spec.arrival_rise, spec.arrival_fall
    if rise is None and fall is None:
        return f"{name}=-"
    if rise is not None and fall is not None:
        times = repr(rise) if rise == fall else f"{rise!r}~{fall!r}"
    elif rise is not None:
        times = f"{rise!r}:rise"
    else:
        times = f"{fall!r}:fall"
    slope = f"/{spec.slope!r}" if spec.slope else ""
    return f"{name}={times}{slope}"


def format_vector_line(vector: Vector) -> str:
    """One :class:`Vector` as a vector-file line (label included)."""
    tokens = [format_timing_token(name, spec)
              for name, spec in sorted(vector.inputs.items())]
    return " ".join([f"@{vector.label}"] + tokens)


def dump_vector_file(vectors: Iterable[Vector], path: str,
                     header: str = "") -> None:
    """Write *vectors* as a vector file :func:`load_vector_file` reads
    back identically (labels, times, edges, and slopes all survive)."""
    lines = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(format_vector_line(vector) for vector in vectors)
    try:
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as exc:
        raise SweepError(f"cannot write vector file: {exc}") from None


def with_default_slope(spec: InputSpec, slope: float) -> InputSpec:
    """Apply *slope* to a spec that has transitioning edges and no slope."""
    if slope <= 0.0 or spec.slope:
        return spec
    if spec.arrival_rise is None and spec.arrival_fall is None:
        return spec
    return InputSpec(arrival_rise=spec.arrival_rise,
                     arrival_fall=spec.arrival_fall, slope=slope)


def parse_vector_line(line: str, position: int,
                      default_slope: float = 0.0) -> Vector:
    """One vector-file line (already stripped of comments) → :class:`Vector`."""
    tokens = line.split()
    label = f"v{position}"
    if tokens and tokens[0].startswith("@"):
        label = tokens[0][1:]
        tokens = tokens[1:]
        if not label:
            raise SweepError(f"empty @label on vector line {line!r}")
    if not tokens:
        raise SweepError(f"vector line {line!r} has no timing tokens")
    inputs: Dict[str, InputSpec] = {}
    for token in tokens:
        name, spec = parse_timing_token(token)
        if name in inputs:
            raise SweepError(f"duplicate node {name!r} in vector {label!r}")
        inputs[name] = with_default_slope(spec, default_slope)
    return Vector(label=label, inputs=inputs)


def load_vector_file(path: str,
                     default_slope: float = 0.0) -> "ExplicitVectors":
    """Parse a vector file into an :class:`ExplicitVectors` source."""
    vectors: List[Vector] = []
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise SweepError(f"cannot read vector file: {exc}") from None
    labels: Dict[str, Tuple[int, int]] = {}
    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            vector = parse_vector_line(line, len(vectors),
                                       default_slope=default_slope)
        except SweepError as exc:
            raise SweepError(str(exc), filename=path, line=number) from None
        previous = labels.get(vector.label)
        if previous is not None:
            prev_index, prev_line = previous
            raise SweepError(
                f"duplicate vector label {vector.label!r}: vector "
                f"{len(vectors)} (line {number}) collides with vector "
                f"{prev_index} (line {prev_line})",
                filename=path, line=number)
        labels[vector.label] = (len(vectors), number)
        vectors.append(vector)
    if not vectors:
        raise SweepError(f"vector file {path!r} contains no vectors")
    return ExplicitVectors(vectors)


class VectorSource:
    """Iterable of :class:`Vector` — the sweep engine's input contract."""

    def vectors(self) -> Iterator[Vector]:  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self) -> Iterator[Vector]:
        return self.vectors()


@dataclass
class ExplicitVectors(VectorSource):
    """A literal scenario list."""

    items: List[Vector] = field(default_factory=list)

    @classmethod
    def from_mappings(cls, scenarios: Iterable[Mapping[str, object]],
                      prefix: str = "v") -> "ExplicitVectors":
        """Wrap raw ``{node: InputSpec | time}`` mappings with labels."""
        items = []
        for position, inputs in enumerate(scenarios):
            normalized = {name: _as_spec(spec)
                          for name, spec in inputs.items()}
            items.append(Vector(label=f"{prefix}{position}",
                                inputs=normalized))
        return cls(items)

    def vectors(self) -> Iterator[Vector]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class CartesianSweep(VectorSource):
    """Cross product of per-node timing candidates over a base vector.

    ``axes`` maps node names to candidate :class:`InputSpec` (or bare
    times); ``base`` supplies every other input.  Vectors are emitted in
    row-major order of the axes' declaration, labeled with the axis
    values (``a=0,b=1n``).
    """

    base: Mapping[str, object]
    axes: Mapping[str, List[object]]

    def _shape(self) -> Tuple[List[str], List[int]]:
        names = list(self.axes)
        if not names:
            raise SweepError("cartesian sweep needs at least one axis")
        for name in names:
            if not self.axes[name]:
                raise SweepError(f"sweep axis {name!r} has no values")
        return names, [len(self.axes[name]) for name in names]

    def _vector_at(self, names: List[str], counters: List[int]) -> Vector:
        inputs = {n: _as_spec(s) for n, s in self.base.items()}
        parts = []
        for name, position in zip(names, counters):
            value = self.axes[name][position]
            inputs[name] = _as_spec(value)
            parts.append(f"{name}={_axis_label(value)}")
        return Vector(label=",".join(parts), inputs=inputs)

    def vectors(self) -> Iterator[Vector]:
        names, radices = self._shape()
        counters = [0] * len(names)
        while True:
            yield self._vector_at(names, counters)
            for index in reversed(range(len(names))):
                counters[index] += 1
                if counters[index] < radices[index]:
                    break
                counters[index] = 0
            else:
                return

    def gray_permutation(self) -> List[int]:
        """Row-major positions in mixed-radix reflected-Gray visit order.

        Consecutive entries name vectors that differ in exactly **one**
        axis (by one step) — the minimum possible input Hamming delta
        between neighbours, which is what makes Gray ordering the ideal
        feed for the delta sweep engine.
        """
        _names, radices = self._shape()
        total = 1
        for radix in radices:
            total *= radix
        permutation = []
        for index in range(total):
            digits = _gray_digits(index, radices)
            position = 0
            for digit, radix in zip(digits, radices):
                position = position * radix + digit
            permutation.append(position)
        return permutation


@dataclass
class RandomVectors(VectorSource):
    """A seeded random sample of arrival-time assignments.

    Every node in ``input_names`` gets both edges at an arrival drawn
    uniformly from ``[0, span]`` (quantized to ``resolution`` so runs are
    human-readable), with the given ``slope``.  The same seed always
    produces the same vectors — **platform-deterministically**: draws go
    through a private ``random.Random(seed)`` (never the process-global
    RNG, which other code could have advanced) and are integer grid
    picks, so there is no float-rounding drift across OS/architecture.
    ``tests/test_delta_sweep.py`` pins exact values for a fixed seed.
    """

    input_names: List[str]
    count: int
    seed: int = 0
    span: float = 1e-9
    slope: float = 0.0
    resolution: float = 1e-12

    def vectors(self) -> Iterator[Vector]:
        if self.count <= 0:
            raise SweepError(f"random sample size {self.count} must be >= 1")
        if self.span < 0:
            raise SweepError(f"negative random span {self.span!r}")
        rng = random.Random(self.seed)
        steps = max(int(round(self.span / self.resolution)), 0)
        for position in range(self.count):
            inputs: Dict[str, InputSpec] = {}
            for name in self.input_names:
                time = rng.randint(0, steps) * self.resolution if steps \
                    else 0.0
                inputs[name] = InputSpec(arrival_rise=time,
                                         arrival_fall=time,
                                         slope=self.slope)
            yield Vector(label=f"r{position}", inputs=inputs)

    def __len__(self) -> int:
        return max(self.count, 0)


def _gray_digits(index: int, radices: List[int]) -> List[int]:
    """The *index*-th tuple of the mixed-radix reflected Gray code.

    Standard reflection: within odd-numbered blocks of a digit, the less
    significant digits run backwards, so advancing ``index`` by one
    changes exactly one digit by ±1.
    """
    total = 1
    for radix in radices:
        total *= radix
    digits = []
    remainder = index
    for radix in radices:
        total //= radix
        digit = remainder // total
        remainder %= total
        if digit % 2 == 1:
            remainder = total - 1 - remainder
        digits.append(digit)
    return digits


# ---------------------------------------------------------------------------
# Delta-minimizing vector ordering
# ---------------------------------------------------------------------------

def vector_delta(a: Vector, b: Vector) -> int:
    """Input Hamming distance: how many inputs have a different spec.

    This is exactly the number of primary inputs
    :meth:`~repro.core.timing.TimingAnalyzer.analyze_delta` will seed —
    the smaller it is between consecutive sweep vectors, the smaller the
    dirty cone each scenario re-evaluates.
    """
    count = 0
    for name, spec in a.inputs.items():
        if b.inputs.get(name) != spec:
            count += 1
    for name in b.inputs:
        if name not in a.inputs:
            count += 1
    return count


def pair_deltas(vectors: List[Vector]) -> List[int]:
    """Hamming delta between each vector and its predecessor (index 0
    has no predecessor and reports 0 — a cold start)."""
    deltas = [0] * len(vectors)
    for index in range(1, len(vectors)):
        deltas[index] = vector_delta(vectors[index - 1], vectors[index])
    return deltas


def greedy_hamming_order(vectors: List[Vector]) -> List[int]:
    """Nearest-neighbour ordering by input Hamming distance.

    Starts at the first vector and repeatedly appends the closest
    unvisited one (ties broken by original position, so the result is
    fully deterministic).  O(n²) spec comparisons — fine for the
    hundreds-of-vectors sweeps this engine targets.
    """
    count = len(vectors)
    if count <= 2:
        return list(range(count))
    remaining = set(range(1, count))
    order = [0]
    current = 0
    while remaining:
        nearest = min(remaining, key=lambda i: (
            vector_delta(vectors[current], vectors[i]), i))
        order.append(nearest)
        remaining.discard(nearest)
        current = nearest
    return order


def order_vectors(vectors: List[Vector], order: str,
                  source: object = None) -> List[int]:
    """Analysis-order permutation of *vectors* (original positions).

    * ``"given"`` — the source's own order;
    * ``"gray"`` — mixed-radix reflected Gray code when *source* is a
      :class:`CartesianSweep` (adjacent vectors differ in one axis);
      other sources have no axis structure, so this falls back to
      ``"greedy"``;
    * ``"greedy"`` — nearest-neighbour Hamming ordering.

    Labels stay attached to their vectors, and the sweep engine restores
    original order in reports — ordering only changes *analysis* order.
    """
    if order not in VECTOR_ORDERS:
        raise SweepError(
            f"unknown vector order {order!r} (expected one of "
            f"{', '.join(VECTOR_ORDERS)})")
    if order == "given":
        return list(range(len(vectors)))
    if order == "gray":
        if isinstance(source, CartesianSweep):
            permutation = source.gray_permutation()
            if len(permutation) == len(vectors):
                return permutation
        order = "greedy"
    return greedy_hamming_order(vectors)


def _as_spec(value: object) -> InputSpec:
    if isinstance(value, InputSpec):
        return value
    if isinstance(value, (int, float)):
        return InputSpec(arrival_rise=float(value),
                         arrival_fall=float(value))
    raise SweepError(f"bad input spec {value!r}; expected InputSpec or time")


def _axis_label(value: object) -> str:
    if isinstance(value, InputSpec):
        rise = "-" if value.arrival_rise is None else f"{value.arrival_rise:g}"
        fall = "-" if value.arrival_fall is None else f"{value.arrival_fall:g}"
        return rise if rise == fall else f"{rise}r/{fall}f"
    return f"{float(value):g}"
