"""Input-vector sources for batch scenario sweeps.

A *vector* is one complete primary-input timing assignment — the same
``{node: InputSpec}`` mapping a single ``TimingAnalyzer.analyze()`` call
takes — plus a label for reports.  The sweep engine
(:mod:`repro.batch.sweep`) consumes any iterable of :class:`Vector`;
this module provides the three stock sources:

* :class:`ExplicitVectors` — a literal list (and the vector-file parser,
  :func:`load_vector_file`);
* :class:`CartesianSweep` — the cross product of per-node candidate
  timings over a base assignment;
* :class:`RandomVectors` — a seeded random sample, for differential
  testing against the reference engine.

Vector-file syntax (one scenario per line)::

    # comment / blank lines ignored
    @label  a=0 b=200p cin=1n:rise en=-

Each token is ``NODE=TIME`` (both edges), ``NODE=TIME:rise`` /
``NODE=TIME:fall`` (one edge), or ``NODE=-`` (static side input).  Times
accept engineering suffixes (``2n``, ``500p``).  The optional leading
``@label`` names the scenario; unlabeled lines are named ``v0``, ``v1``…
by position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from ..core.timing import InputSpec
from ..errors import SweepError
from ..units import parse_value

__all__ = [
    "Vector",
    "VectorSource",
    "ExplicitVectors",
    "CartesianSweep",
    "RandomVectors",
    "parse_timing_token",
    "parse_vector_line",
    "load_vector_file",
]


@dataclass(frozen=True)
class Vector:
    """One labeled input scenario."""

    label: str
    inputs: Mapping[str, InputSpec]


def parse_timing_token(token: str) -> Tuple[str, InputSpec]:
    """``name=TIME``, ``name=TIME:rise``, ``name=TIME:fall`` or ``name=-``."""
    if "=" not in token:
        raise SweepError(f"bad timing token {token!r}; expected name=TIME")
    name, value = token.split("=", 1)
    name = name.strip()
    value = value.strip()
    if not name:
        raise SweepError(f"bad timing token {token!r}; empty node name")
    if value == "-":
        return name, InputSpec(arrival_rise=None, arrival_fall=None)
    edge = "both"
    if ":" in value:
        value, edge = value.rsplit(":", 1)
        if edge not in ("rise", "fall"):
            raise SweepError(
                f"bad edge tag {edge!r} in {token!r}; use :rise or :fall")
    try:
        time = parse_value(value)
    except Exception as exc:
        raise SweepError(f"bad time {value!r} in {token!r}: {exc}") from None
    if edge == "rise":
        return name, InputSpec(arrival_rise=time, arrival_fall=None)
    if edge == "fall":
        return name, InputSpec(arrival_rise=None, arrival_fall=time)
    return name, InputSpec(arrival_rise=time, arrival_fall=time)


def with_default_slope(spec: InputSpec, slope: float) -> InputSpec:
    """Apply *slope* to a spec that has transitioning edges and no slope."""
    if slope <= 0.0 or spec.slope:
        return spec
    if spec.arrival_rise is None and spec.arrival_fall is None:
        return spec
    return InputSpec(arrival_rise=spec.arrival_rise,
                     arrival_fall=spec.arrival_fall, slope=slope)


def parse_vector_line(line: str, position: int,
                      default_slope: float = 0.0) -> Vector:
    """One vector-file line (already stripped of comments) → :class:`Vector`."""
    tokens = line.split()
    label = f"v{position}"
    if tokens and tokens[0].startswith("@"):
        label = tokens[0][1:]
        tokens = tokens[1:]
        if not label:
            raise SweepError(f"empty @label on vector line {line!r}")
    if not tokens:
        raise SweepError(f"vector line {line!r} has no timing tokens")
    inputs: Dict[str, InputSpec] = {}
    for token in tokens:
        name, spec = parse_timing_token(token)
        if name in inputs:
            raise SweepError(f"duplicate node {name!r} in vector {label!r}")
        inputs[name] = with_default_slope(spec, default_slope)
    return Vector(label=label, inputs=inputs)


def load_vector_file(path: str,
                     default_slope: float = 0.0) -> "ExplicitVectors":
    """Parse a vector file into an :class:`ExplicitVectors` source."""
    vectors: List[Vector] = []
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise SweepError(f"cannot read vector file: {exc}") from None
    labels = set()
    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            vector = parse_vector_line(line, len(vectors),
                                       default_slope=default_slope)
        except SweepError as exc:
            raise SweepError(str(exc), filename=path, line=number) from None
        if vector.label in labels:
            raise SweepError(f"duplicate vector label {vector.label!r}",
                             filename=path, line=number)
        labels.add(vector.label)
        vectors.append(vector)
    if not vectors:
        raise SweepError(f"vector file {path!r} contains no vectors")
    return ExplicitVectors(vectors)


class VectorSource:
    """Iterable of :class:`Vector` — the sweep engine's input contract."""

    def vectors(self) -> Iterator[Vector]:  # pragma: no cover - interface
        raise NotImplementedError

    def __iter__(self) -> Iterator[Vector]:
        return self.vectors()


@dataclass
class ExplicitVectors(VectorSource):
    """A literal scenario list."""

    items: List[Vector] = field(default_factory=list)

    @classmethod
    def from_mappings(cls, scenarios: Iterable[Mapping[str, object]],
                      prefix: str = "v") -> "ExplicitVectors":
        """Wrap raw ``{node: InputSpec | time}`` mappings with labels."""
        items = []
        for position, inputs in enumerate(scenarios):
            normalized = {name: _as_spec(spec)
                          for name, spec in inputs.items()}
            items.append(Vector(label=f"{prefix}{position}",
                                inputs=normalized))
        return cls(items)

    def vectors(self) -> Iterator[Vector]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


@dataclass
class CartesianSweep(VectorSource):
    """Cross product of per-node timing candidates over a base vector.

    ``axes`` maps node names to candidate :class:`InputSpec` (or bare
    times); ``base`` supplies every other input.  Vectors are emitted in
    row-major order of the axes' declaration, labeled with the axis
    values (``a=0,b=1n``).
    """

    base: Mapping[str, object]
    axes: Mapping[str, List[object]]

    def vectors(self) -> Iterator[Vector]:
        names = list(self.axes)
        if not names:
            raise SweepError("cartesian sweep needs at least one axis")
        for name in names:
            if not self.axes[name]:
                raise SweepError(f"sweep axis {name!r} has no values")
        counters = [0] * len(names)
        while True:
            inputs = {n: _as_spec(s) for n, s in self.base.items()}
            parts = []
            for name, position in zip(names, counters):
                value = self.axes[name][position]
                inputs[name] = _as_spec(value)
                parts.append(f"{name}={_axis_label(value)}")
            yield Vector(label=",".join(parts), inputs=inputs)
            for index in reversed(range(len(names))):
                counters[index] += 1
                if counters[index] < len(self.axes[names[index]]):
                    break
                counters[index] = 0
            else:
                return


@dataclass
class RandomVectors(VectorSource):
    """A seeded random sample of arrival-time assignments.

    Every node in ``input_names`` gets both edges at an arrival drawn
    uniformly from ``[0, span]`` (quantized to ``resolution`` so runs are
    human-readable), with the given ``slope``.  The same seed always
    produces the same vectors — the property the differential tests and
    the batch bench rely on.
    """

    input_names: List[str]
    count: int
    seed: int = 0
    span: float = 1e-9
    slope: float = 0.0
    resolution: float = 1e-12

    def vectors(self) -> Iterator[Vector]:
        if self.count <= 0:
            raise SweepError(f"random sample size {self.count} must be >= 1")
        if self.span < 0:
            raise SweepError(f"negative random span {self.span!r}")
        rng = random.Random(self.seed)
        steps = max(int(round(self.span / self.resolution)), 0)
        for position in range(self.count):
            inputs: Dict[str, InputSpec] = {}
            for name in self.input_names:
                time = rng.randint(0, steps) * self.resolution if steps \
                    else 0.0
                inputs[name] = InputSpec(arrival_rise=time,
                                         arrival_fall=time,
                                         slope=self.slope)
            yield Vector(label=f"r{position}", inputs=inputs)

    def __len__(self) -> int:
        return max(self.count, 0)


def _as_spec(value: object) -> InputSpec:
    if isinstance(value, InputSpec):
        return value
    if isinstance(value, (int, float)):
        return InputSpec(arrival_rise=float(value),
                         arrival_fall=float(value))
    raise SweepError(f"bad input spec {value!r}; expected InputSpec or time")


def _axis_label(value: object) -> str:
    if isinstance(value, InputSpec):
        rise = "-" if value.arrival_rise is None else f"{value.arrival_rise:g}"
        fall = "-" if value.arrival_fall is None else f"{value.arrival_fall:g}"
        return rise if rise == fall else f"{rise}r/{fall}f"
    return f"{float(value):g}"
