"""The scenario-sweep engine: N vectors, one shared analyzer.

Ousterhout's models exist to answer *many* timing questions per chip
orders of magnitude faster than circuit simulation; this module is the
many-questions part.  :func:`run_sweep` pushes every vector of a
:class:`~repro.batch.vectors.VectorSource` through **one**
:class:`~repro.core.timing.TimingAnalyzer`, so the path enumerations, RC
trees, trigger indexes, and the delay-model memo built for the first
scenario are reused by all the rest — marginal model evaluations per
scenario approach zero (DESIGN.md §5b).  The results are bit-identical
to running each vector through a fresh analyzer; the differential tests
and ``benchmarks/bench_batch_sweep.py`` lock that equivalence down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from ..core.models import DelayModel
from ..core.timing import TimingAnalyzer, TimingResult
from ..core.timing.analyzer import Arrival, Event
from ..core.timing.paths import StateMap
from ..errors import SweepError
from ..netlist import Network
from ..perf import BatchPerf
from .vectors import ExplicitVectors, Vector, VectorSource

__all__ = ["ScenarioOutcome", "SweepResult", "run_sweep"]


@dataclass
class ScenarioOutcome:
    """One vector's analysis, reduced to what sweep reports need."""

    label: str
    vector: Vector
    result: TimingResult
    #: the latest event over the watched nodes (the scenario's headline)
    worst_event: Event
    worst_arrival: Arrival

    @property
    def worst_time(self) -> float:
        return self.worst_arrival.time


@dataclass
class SweepResult:
    """Complete output of one batch sweep."""

    network: Network
    model_name: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    #: per-scenario counters + cross-scenario aggregate (cache hit rate)
    batch_perf: BatchPerf = field(default_factory=BatchPerf)
    #: nodes the worst-arrival ranking was restricted to (None = all)
    watch: Optional[List[str]] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def outcome(self, label: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise SweepError(f"no scenario labeled {label!r} in this sweep")

    def worst(self) -> ScenarioOutcome:
        """The scenario with the latest watched arrival — the worst
        vector, the number a designer sizes the clock period against."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        return max(self.outcomes, key=lambda o: o.worst_time)

    def arrival_stats(self) -> "ArrivalStats":
        """Min/max/mean of the per-scenario worst arrivals."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        times = [outcome.worst_time for outcome in self.outcomes]
        return ArrivalStats(minimum=min(times), maximum=max(times),
                            mean=sum(times) / len(times),
                            scenarios=len(times))


@dataclass(frozen=True)
class ArrivalStats:
    minimum: float
    maximum: float
    mean: float
    scenarios: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def run_sweep(network: Network,
              source: Union[VectorSource, Iterable[Vector]],
              model: Optional[DelayModel] = None,
              states: Optional[StateMap] = None,
              initial_states: Optional[StateMap] = None,
              slope_quantum: float = 0.0,
              watch: Optional[List[str]] = None,
              analyzer: Optional[TimingAnalyzer] = None) -> SweepResult:
    """Run every vector of *source* through one shared analyzer.

    Pass an existing *analyzer* to extend a previous sweep with its
    caches already warm (its network/model settings win); otherwise one
    is built from the other arguments.  *watch* restricts the worst-
    arrival ranking to the named nodes (e.g. the outputs that matter).
    """
    if analyzer is None:
        analyzer = TimingAnalyzer(network, model=model, states=states,
                                  initial_states=initial_states,
                                  slope_quantum=slope_quantum)
    sweep = SweepResult(network=analyzer.network,
                        model_name=analyzer.model.name, watch=watch)
    vectors = list(source)
    if not vectors:
        raise SweepError("vector source produced no vectors")
    raw = [vector.inputs for vector in vectors]
    results = analyzer.analyze_many(raw)
    for vector, result in zip(vectors, results):
        worst_event, worst_arrival = result.worst(nodes=watch)
        sweep.outcomes.append(ScenarioOutcome(
            label=vector.label, vector=vector, result=result,
            worst_event=worst_event, worst_arrival=worst_arrival))
        if result.perf is not None:
            sweep.batch_perf.add(vector.label, result.perf)
    return sweep


def run_scenarios(network: Network, scenarios: Iterable, **kwargs
                  ) -> SweepResult:
    """Convenience: sweep raw ``{node: spec}`` mappings (auto-labeled)."""
    return run_sweep(network, ExplicitVectors.from_mappings(scenarios),
                     **kwargs)
