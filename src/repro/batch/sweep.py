"""The scenario-sweep engine: N vectors, one shared analyzer.

Ousterhout's models exist to answer *many* timing questions per chip
orders of magnitude faster than circuit simulation; this module is the
many-questions part.  :func:`run_sweep` pushes every vector of a
:class:`~repro.batch.vectors.VectorSource` through **one**
:class:`~repro.core.timing.TimingAnalyzer`, so the path enumerations, RC
trees, trigger indexes, and the delay-model memo built for the first
scenario are reused by all the rest — marginal model evaluations per
scenario approach zero (DESIGN.md §5b).  The results are bit-identical
to running each vector through a fresh analyzer; the differential tests
and ``benchmarks/bench_batch_sweep.py`` lock that equivalence down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from ..core.models import DelayModel
from ..core.timing import TimingAnalyzer, TimingResult
from ..core.timing.analyzer import Arrival, Event
from ..core.timing.paths import StateMap
from ..errors import ReproError, SweepError
from ..netlist import Network
from ..perf import BatchPerf, ParallelPerf, PerfCounters
from .vectors import ExplicitVectors, Vector, VectorSource

__all__ = ["ScenarioOutcome", "SweepResult", "run_sweep"]


@dataclass
class ScenarioOutcome:
    """One vector's analysis, reduced to what sweep reports need."""

    label: str
    vector: Vector
    result: TimingResult
    #: the latest event over the watched nodes (the scenario's headline)
    worst_event: Event
    worst_arrival: Arrival

    @property
    def worst_time(self) -> float:
        return self.worst_arrival.time


@dataclass
class SweepResult:
    """Complete output of one batch sweep."""

    network: Network
    model_name: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    #: per-scenario counters + cross-scenario aggregate (cache hit rate)
    batch_perf: BatchPerf = field(default_factory=BatchPerf)
    #: nodes the worst-arrival ranking was restricted to (None = all)
    watch: Optional[List[str]] = None
    #: stats of the scenario-sharded executor, when the sweep used one
    parallel: Optional[ParallelPerf] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def outcome(self, label: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise SweepError(f"no scenario labeled {label!r} in this sweep")

    def worst(self) -> ScenarioOutcome:
        """The scenario with the latest watched arrival — the worst
        vector, the number a designer sizes the clock period against."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        return max(self.outcomes, key=lambda o: o.worst_time)

    def arrival_stats(self) -> "ArrivalStats":
        """Min/max/mean of the per-scenario worst arrivals."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        times = [outcome.worst_time for outcome in self.outcomes]
        return ArrivalStats(minimum=min(times), maximum=max(times),
                            mean=sum(times) / len(times),
                            scenarios=len(times))


@dataclass(frozen=True)
class ArrivalStats:
    minimum: float
    maximum: float
    mean: float
    scenarios: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def _validate_vectors(analyzer: TimingAnalyzer,
                      vectors: List[Vector]) -> None:
    """Reject bad vectors before any analysis (or worker dispatch) runs.

    Every input name must resolve to a real, non-supply node and every
    primary input must be covered — checked up front so a typo in one
    ``.vec`` line fails fast with the offending vector named, instead of
    surfacing as a deep engine error (possibly from inside a worker
    process) after other vectors were already analyzed.
    """
    for vector in vectors:
        try:
            analyzer._normalize_inputs(vector.inputs)
        except ReproError as exc:
            raise SweepError(
                f"vector {vector.label!r}: {exc}") from exc


def run_sweep(network: Network,
              source: Union[VectorSource, Iterable[Vector]],
              model: Optional[DelayModel] = None,
              states: Optional[StateMap] = None,
              initial_states: Optional[StateMap] = None,
              slope_quantum: float = 0.0,
              watch: Optional[List[str]] = None,
              analyzer: Optional[TimingAnalyzer] = None,
              jobs: int = 1,
              parallel_config=None,
              kernel: str = "numpy") -> SweepResult:
    """Run every vector of *source* through one shared analyzer.

    Pass an existing *analyzer* to extend a previous sweep with its
    caches already warm (its network/model settings win); otherwise one
    is built from the other arguments.  *watch* restricts the worst-
    arrival ranking to the named nodes (e.g. the outputs that matter).

    ``jobs > 1`` shards the vectors across that many worker processes,
    each owning a warm analyzer clone (scenario sharding, DESIGN.md
    §5c); results and reports are byte-identical to ``jobs=1``, and the
    executor's stats land on :attr:`SweepResult.parallel`.
    """
    if analyzer is None:
        analyzer = TimingAnalyzer(network, model=model, states=states,
                                  initial_states=initial_states,
                                  slope_quantum=slope_quantum,
                                  kernel=kernel)
    sweep = SweepResult(network=analyzer.network,
                        model_name=analyzer.model.name, watch=watch)
    vectors = list(source)
    if not vectors:
        raise SweepError("vector source produced no vectors")
    _validate_vectors(analyzer, vectors)

    if jobs > 1 and len(vectors) > 1:
        results = _analyze_sharded(analyzer, vectors, jobs,
                                   parallel_config, sweep)
    else:
        raw = [vector.inputs for vector in vectors]
        results = analyzer.analyze_many(raw)
    for vector, result in zip(vectors, results):
        worst_event, worst_arrival = result.worst(nodes=watch)
        sweep.outcomes.append(ScenarioOutcome(
            label=vector.label, vector=vector, result=result,
            worst_event=worst_event, worst_arrival=worst_arrival))
        if result.perf is not None:
            sweep.batch_perf.add(vector.label, result.perf)
    return sweep


def _analyze_sharded(analyzer: TimingAnalyzer, vectors: List[Vector],
                     jobs: int, parallel_config,
                     sweep: SweepResult) -> List[TimingResult]:
    """Scenario-sharded analysis: contiguous vector blocks per worker."""
    from ..parallel import AnalyzerSpec, ParallelConfig, run_vectors_sharded

    config = parallel_config or ParallelConfig()
    config.jobs = jobs
    spec = AnalyzerSpec.from_analyzer(analyzer)
    items = [(position, vector.label, vector.inputs)
             for position, vector in enumerate(vectors)]
    with analyzer.perf.timer("analyze_batch"):
        outcomes, pperf = run_vectors_sharded(spec, items, config)
    sweep.parallel = pperf

    results: List[TimingResult] = []
    for position, arrivals, counters, timers in outcomes:
        perf = PerfCounters(counters=dict(counters), timers=dict(timers))
        analyzer.perf.merge(perf)
        results.append(TimingResult(network=analyzer.network,
                                    model_name=analyzer.model.name,
                                    arrivals=arrivals, perf=perf))
    analyzer.perf.incr("batch_scenarios", len(results))
    if analyzer.perf.parallel is None:
        analyzer.perf.parallel = ParallelPerf()
    analyzer.perf.parallel.merge(pperf)
    return results


def run_scenarios(network: Network, scenarios: Iterable, **kwargs
                  ) -> SweepResult:
    """Convenience: sweep raw ``{node: spec}`` mappings (auto-labeled)."""
    return run_sweep(network, ExplicitVectors.from_mappings(scenarios),
                     **kwargs)
