"""The scenario-sweep engine: N vectors, one shared analyzer.

Ousterhout's models exist to answer *many* timing questions per chip
orders of magnitude faster than circuit simulation; this module is the
many-questions part.  :func:`run_sweep` pushes every vector of a
:class:`~repro.batch.vectors.VectorSource` through **one**
:class:`~repro.core.timing.TimingAnalyzer`, so the path enumerations, RC
trees, trigger indexes, and the delay-model memo built for the first
scenario are reused by all the rest — marginal model evaluations per
scenario approach zero (DESIGN.md §5b).  The results are bit-identical
to running each vector through a fresh analyzer; the differential tests
and ``benchmarks/bench_batch_sweep.py`` lock that equivalence down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from ..core.models import DelayModel
from ..core.timing import TimingAnalyzer, TimingResult
from ..core.timing.analyzer import Arrival, Event
from ..core.timing.paths import StateMap
from ..errors import ReproError, SweepError
from ..netlist import Network
from ..perf import BatchPerf, ParallelPerf, PerfCounters
from ..trace.spans import span as _trace_span
from .vectors import (ExplicitVectors, Vector, VectorSource, order_vectors,
                      pair_deltas)

__all__ = ["OrderStats", "ScenarioOutcome", "SweepResult", "run_sweep"]


@dataclass
class ScenarioOutcome:
    """One vector's analysis, reduced to what sweep reports need."""

    label: str
    vector: Vector
    result: TimingResult
    #: the latest event over the watched nodes (the scenario's headline)
    worst_event: Event
    worst_arrival: Arrival

    @property
    def worst_time(self) -> float:
        return self.worst_arrival.time


@dataclass(frozen=True)
class OrderStats:
    """How the sweep's analysis order looked to the delta engine."""

    #: the requested ordering ("given" / "gray" / "greedy")
    order: str
    #: whether scenarios ran through dirty-cone delta re-analysis
    delta: bool
    #: Hamming delta between consecutive *analyzed* vectors (index 0 is
    #: the cold start and reports 0)
    deltas: Tuple[int, ...] = ()

    @property
    def mean_delta(self) -> Optional[float]:
        """Mean inputs changed between consecutive analyzed vectors."""
        if len(self.deltas) < 2:
            return None
        return sum(self.deltas[1:]) / (len(self.deltas) - 1)

    @property
    def max_delta(self) -> int:
        return max(self.deltas[1:], default=0)


@dataclass
class SweepResult:
    """Complete output of one batch sweep."""

    network: Network
    model_name: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    #: per-scenario counters + cross-scenario aggregate (cache hit rate)
    batch_perf: BatchPerf = field(default_factory=BatchPerf)
    #: nodes the worst-arrival ranking was restricted to (None = all)
    watch: Optional[List[str]] = None
    #: stats of the scenario-sharded executor, when the sweep used one
    parallel: Optional[ParallelPerf] = None
    #: analysis-order / delta-mode stats (None on pre-delta call paths)
    order_stats: Optional[OrderStats] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def outcome(self, label: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise SweepError(f"no scenario labeled {label!r} in this sweep")

    def worst(self) -> ScenarioOutcome:
        """The scenario with the latest watched arrival — the worst
        vector, the number a designer sizes the clock period against."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        return max(self.outcomes, key=lambda o: o.worst_time)

    def arrival_stats(self) -> "ArrivalStats":
        """Min/max/mean of the per-scenario worst arrivals."""
        if not self.outcomes:
            raise SweepError("sweep produced no scenarios")
        times = [outcome.worst_time for outcome in self.outcomes]
        return ArrivalStats(minimum=min(times), maximum=max(times),
                            mean=sum(times) / len(times),
                            scenarios=len(times))


@dataclass(frozen=True)
class ArrivalStats:
    minimum: float
    maximum: float
    mean: float
    scenarios: int

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def _validate_vectors(analyzer: TimingAnalyzer,
                      vectors: List[Vector]) -> None:
    """Reject bad vectors before any analysis (or worker dispatch) runs.

    Every input name must resolve to a real, non-supply node and every
    primary input must be covered — checked up front so a typo in one
    ``.vec`` line fails fast with the offending vector named, instead of
    surfacing as a deep engine error (possibly from inside a worker
    process) after other vectors were already analyzed.
    """
    labels: dict = {}
    for position, vector in enumerate(vectors):
        previous = labels.get(vector.label)
        if previous is not None:
            raise SweepError(
                f"duplicate vector label {vector.label!r} (vectors "
                f"{previous} and {position} collide); labels key reports "
                "and lookups, so every vector needs its own")
        labels[vector.label] = position
        try:
            analyzer._normalize_inputs(vector.inputs)
        except ReproError as exc:
            raise SweepError(
                f"vector {vector.label!r}: {exc}") from exc


def run_sweep(network: Network,
              source: Union[VectorSource, Iterable[Vector]],
              model: Optional[DelayModel] = None,
              states: Optional[StateMap] = None,
              initial_states: Optional[StateMap] = None,
              slope_quantum: float = 0.0,
              watch: Optional[List[str]] = None,
              analyzer: Optional[TimingAnalyzer] = None,
              jobs: int = 1,
              parallel_config=None,
              kernel: str = "numpy",
              delta: bool = False,
              order: str = "given") -> SweepResult:
    """Run every vector of *source* through one shared analyzer.

    Pass an existing *analyzer* to extend a previous sweep with its
    caches already warm (its network/model settings win); otherwise one
    is built from the other arguments.  *watch* restricts the worst-
    arrival ranking to the named nodes (e.g. the outputs that matter).

    ``delta=True`` analyzes consecutive vectors through
    :meth:`~repro.core.timing.TimingAnalyzer.analyze_delta`: only the
    stages inside the changed inputs' dirty cone are re-evaluated, the
    rest keep their committed arrivals (bit-identical, see DESIGN.md
    §5e).  *order* reorders the **analysis** sequence to minimize those
    deltas — ``"gray"`` (cartesian sources; falls back to greedy
    elsewhere) or ``"greedy"`` nearest-neighbour Hamming ordering —
    while outcomes, labels, and reports stay in the source's original
    order.

    ``jobs > 1`` shards the vectors across that many worker processes,
    each owning a warm analyzer clone (scenario sharding, DESIGN.md
    §5c); results and reports are byte-identical to ``jobs=1``, and the
    executor's stats land on :attr:`SweepResult.parallel`.  With
    ``delta=True`` the shard boundaries prefer high-delta cut points so
    low-Hamming runs stay on one worker, and each chunk cold-starts its
    first vector.
    """
    if analyzer is None:
        analyzer = TimingAnalyzer(network, model=model, states=states,
                                  initial_states=initial_states,
                                  slope_quantum=slope_quantum,
                                  kernel=kernel)
    sweep = SweepResult(network=analyzer.network,
                        model_name=analyzer.model.name, watch=watch)
    vectors = list(source)
    if not vectors:
        raise SweepError("vector source produced no vectors")
    _validate_vectors(analyzer, vectors)

    permutation = order_vectors(vectors, order, source)
    ordered = [vectors[position] for position in permutation]
    sweep.order_stats = OrderStats(order=order, delta=delta,
                                   deltas=tuple(pair_deltas(ordered)))

    with _trace_span("sweep", vectors=len(vectors), jobs=jobs,
                     delta=delta, order=order):
        if jobs > 1 and len(vectors) > 1:
            results = _analyze_sharded(analyzer, ordered, permutation, jobs,
                                       parallel_config, sweep, delta)
        else:
            raw = [vector.inputs for vector in ordered]
            in_order = analyzer.analyze_many(raw, delta=delta)
            results = [None] * len(vectors)
            for position, result in zip(permutation, in_order):
                results[position] = result
    for vector, result in zip(vectors, results):
        worst_event, worst_arrival = result.worst(nodes=watch)
        sweep.outcomes.append(ScenarioOutcome(
            label=vector.label, vector=vector, result=result,
            worst_event=worst_event, worst_arrival=worst_arrival))
        if result.perf is not None:
            sweep.batch_perf.add(vector.label, result.perf)
    return sweep


def _analyze_sharded(analyzer: TimingAnalyzer, ordered: List[Vector],
                     permutation: List[int], jobs: int, parallel_config,
                     sweep: SweepResult, delta: bool) -> List[TimingResult]:
    """Scenario-sharded analysis: contiguous vector blocks per worker.

    *ordered* is the analysis sequence; each item ships tagged with its
    original source position, so the position-sorted outcomes slot
    straight back into source order regardless of ordering or sharding.
    """
    from ..parallel import AnalyzerSpec, ParallelConfig, run_vectors_sharded

    config = parallel_config or ParallelConfig()
    config.jobs = jobs
    spec = AnalyzerSpec.from_analyzer(analyzer)
    items = [(position, vector.label, vector.inputs)
             for position, vector in zip(permutation, ordered)]
    boundary_deltas = (list(sweep.order_stats.deltas)
                       if sweep.order_stats is not None else None)
    with analyzer.perf.timer("analyze_batch"):
        outcomes, pperf = run_vectors_sharded(
            spec, items, config, delta=delta,
            boundary_deltas=boundary_deltas if delta else None)
    sweep.parallel = pperf

    results: List[TimingResult] = []
    for position, arrivals, counters, timers in outcomes:
        perf = PerfCounters(counters=dict(counters), timers=dict(timers))
        analyzer.perf.merge(perf)
        results.append(TimingResult(network=analyzer.network,
                                    model_name=analyzer.model.name,
                                    arrivals=arrivals, perf=perf))
    analyzer.perf.incr("batch_scenarios", len(results))
    if analyzer.perf.parallel is None:
        analyzer.perf.parallel = ParallelPerf()
    analyzer.perf.parallel.merge(pperf)
    return results


def run_scenarios(network: Network, scenarios: Iterable, **kwargs
                  ) -> SweepResult:
    """Convenience: sweep raw ``{node: spec}`` mappings (auto-labeled)."""
    return run_sweep(network, ExplicitVectors.from_mappings(scenarios),
                     **kwargs)
