"""Text reports for batch sweeps, in the Crystal report idiom.

:func:`format_sweep_summary` is what the ``sweep`` CLI subcommand
prints: a per-scenario table (worst event, arrival, delta against the
batch mean), the min/max/mean arrival statistics, and the worst vector's
critical path.  :func:`format_sweep_profile` renders the per-batch perf
counters (cross-scenario cache hit rate) for ``--profile``.
"""

from __future__ import annotations

from ..core.timing.report import format_critical_path
from ..units import format_value
from .sweep import SweepResult

__all__ = ["format_sweep_summary", "format_sweep_profile"]


def format_sweep_summary(sweep: SweepResult, count: int = 20,
                         critical_path: bool = True) -> str:
    """The sweep's headline report.

    *count* caps the per-scenario table (latest first); the statistics
    and worst vector always cover the whole batch.
    """
    stats = sweep.arrival_stats()
    worst = sweep.worst()
    watched = ", ".join(sweep.watch) if sweep.watch else "all nodes"
    lines = [
        f"sweep summary: {len(sweep)} scenario(s) on "
        f"{sweep.network.name} (model: {sweep.model_name}, "
        f"watching {watched})",
    ]
    stats_line = _order_line(sweep)
    if stats_line:
        lines.append(stats_line)
    lines += [
        "",
        f"{'scenario':<24} {'worst event':>14} {'arrival':>12} "
        f"{'vs mean':>10}",
    ]
    ranked = sorted(sweep.outcomes, key=lambda o: o.worst_time,
                    reverse=True)
    for outcome in ranked[:count]:
        delta = outcome.worst_time - stats.mean
        lines.append(
            f"{outcome.label:<24} {str(outcome.worst_event):>14} "
            f"{format_value(outcome.worst_time, 's'):>12} "
            f"{'+' if delta >= 0 else '-'}"
            f"{format_value(abs(delta), 's'):>9}")
    if len(ranked) > count:
        lines.append(f"  … {len(ranked) - count} more scenario(s)")
    lines += [
        "",
        f"arrival over batch:  min {format_value(stats.minimum, 's')}"
        f"  mean {format_value(stats.mean, 's')}"
        f"  max {format_value(stats.maximum, 's')}"
        f"  spread {format_value(stats.spread, 's')}",
        f"worst vector: {worst.label}  ({worst.worst_event} at "
        f"{format_value(worst.worst_time, 's')})",
    ]
    if critical_path:
        lines += ["", format_critical_path(
            worst.result, worst.worst_event.node,
            worst.worst_event.transition)]
    return "\n".join(lines)


def _order_line(sweep: SweepResult) -> str:
    """One line describing delta mode and analysis order, or ''."""
    stats = sweep.order_stats
    if stats is None or (not stats.delta and stats.order == "given"):
        return ""
    mode = "delta (dirty-cone)" if stats.delta else "full re-analysis"
    line = f"analysis: {mode}, order {stats.order}"
    mean = stats.mean_delta
    if mean is not None:
        line += (f", input delta mean {mean:.2f} / max {stats.max_delta} "
                 "between consecutive vectors")
    return line


def format_sweep_profile(sweep: SweepResult) -> str:
    """Per-scenario and batch-aggregate perf counters."""
    table = sweep.batch_perf.format_table(
        f"batch perf ({len(sweep)} scenario(s), shared analyzer)")
    if sweep.parallel is not None:
        table += "\n" + "\n".join(sweep.parallel.format_lines())
    return table
