"""The :class:`Network` container — a transistor-level circuit.

A ``Network`` is the common substrate every analysis in the library works
on: the analog reference simulator, the switch-level simulator, and the
timing analyzer all consume the same object.  It owns:

* nodes (:class:`repro.netlist.node.Node`), including the two supply rails,
* transistors, explicit resistors and capacitors,
* the technology the devices belong to,
* connectivity indexes (which devices touch a node, by which terminal).

Construction is incremental (``add_transistor`` etc.); names are validated
eagerly so errors point at the offending element.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import NetlistError
from ..tech import DeviceKind, Technology
from .node import GND, VDD, Node, NodeRole, canonical_name
from .transistor import Capacitor, Resistor, Transistor


class Network:
    """A transistor-level circuit tied to a :class:`~repro.tech.Technology`."""

    def __init__(self, tech: Technology, name: str = "network"):
        self.tech = tech
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._transistors: Dict[str, Transistor] = {}
        self._resistors: Dict[str, Resistor] = {}
        self._capacitors: Dict[str, Capacitor] = {}
        # Connectivity indexes, maintained incrementally.
        self._gate_index: Dict[str, List[str]] = {}
        self._channel_index: Dict[str, List[str]] = {}
        self._resistor_index: Dict[str, List[str]] = {}
        self._capacitor_index: Dict[str, List[str]] = {}
        self._counter = 0
        self.add_node(VDD, role=NodeRole.POWER)
        self.add_node(GND, role=NodeRole.GROUND)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def add_node(self, name: str, role: NodeRole = NodeRole.SIGNAL,
                 capacitance: float = 0.0) -> Node:
        """Add (or fetch) a node.  Re-adding an existing node with a
        compatible role returns the existing object; extra capacitance
        accumulates."""
        cname = canonical_name(name)
        existing = self._nodes.get(cname)
        if existing is not None:
            if role is not NodeRole.SIGNAL and existing.role is not role:
                if existing.role is NodeRole.SIGNAL:
                    existing.role = role
                else:
                    raise NetlistError(
                        f"node {cname!r} already exists with role "
                        f"{existing.role.value}, cannot redeclare as {role.value}"
                    )
            existing.capacitance += capacitance
            return existing
        if cname == VDD:
            role = NodeRole.POWER
        elif cname == GND:
            role = NodeRole.GROUND
        node = Node(name=cname, role=role, capacitance=capacitance)
        self._nodes[cname] = node
        return node

    def node(self, name: str) -> Node:
        cname = canonical_name(name)
        try:
            return self._nodes[cname]
        except KeyError:
            raise NetlistError(f"unknown node {cname!r}") from None

    def has_node(self, name: str) -> bool:
        return canonical_name(name) in self._nodes

    def mark_input(self, *names: str) -> None:
        """Declare nodes as primary inputs (externally driven)."""
        for name in names:
            node = self.node(name)
            if node.is_supply:
                raise NetlistError(f"cannot mark supply {node.name!r} as input")
            node.role = NodeRole.INPUT

    def add_transistor(self, kind: DeviceKind, gate: str, source: str,
                       drain: str, width: Optional[float] = None,
                       length: Optional[float] = None,
                       name: Optional[str] = None) -> Transistor:
        if not self.tech.has_kind(kind):
            raise NetlistError(
                f"technology {self.tech.name!r} has no {kind.name} devices"
            )
        if name is None:
            name = self._fresh_name("m")
        if name in self._transistors:
            raise NetlistError(f"duplicate transistor name {name!r}")
        gate_n = self.add_node(gate).name
        source_n = self.add_node(source).name
        drain_n = self.add_node(drain).name
        if source_n == drain_n:
            raise NetlistError(
                f"transistor {name!r}: source and drain are the same node "
                f"{source_n!r}"
            )
        device = Transistor(
            name=name,
            kind=kind,
            gate=gate_n,
            source=source_n,
            drain=drain_n,
            width=self.tech.default_width if width is None else width,
            length=self.tech.default_length if length is None else length,
        )
        self._transistors[name] = device
        self._gate_index.setdefault(gate_n, []).append(name)
        self._channel_index.setdefault(source_n, []).append(name)
        self._channel_index.setdefault(drain_n, []).append(name)
        return device

    def resize_transistor(self, name: str, width: Optional[float] = None,
                          length: Optional[float] = None) -> Transistor:
        """Replace a transistor's geometry in place (terminals unchanged).

        The in-place edit the sizing workflows use between analyses.
        Analyses cache state derived from device geometry (RC trees,
        memoized stage delays): any live
        :class:`~repro.core.timing.TimingAnalyzer` on this network must
        have ``invalidate_caches()`` called afterwards or it will keep
        answering for the old geometry.
        """
        old = self.transistor(name)
        device = Transistor(
            name=old.name,
            kind=old.kind,
            gate=old.gate,
            source=old.source,
            drain=old.drain,
            width=old.width if width is None else float(width),
            length=old.length if length is None else float(length),
        )
        self._transistors[name] = device
        return device

    def add_resistor(self, node_a: str, node_b: str, resistance: float,
                     name: Optional[str] = None) -> Resistor:
        if name is None:
            name = self._fresh_name("r")
        if name in self._resistors:
            raise NetlistError(f"duplicate resistor name {name!r}")
        a = self.add_node(node_a).name
        b = self.add_node(node_b).name
        if a == b:
            raise NetlistError(f"resistor {name!r} shorts node {a!r} to itself")
        element = Resistor(name=name, node_a=a, node_b=b, resistance=resistance)
        self._resistors[name] = element
        self._resistor_index.setdefault(a, []).append(name)
        self._resistor_index.setdefault(b, []).append(name)
        return element

    def add_capacitor(self, node_a: str, node_b: str, capacitance: float,
                      name: Optional[str] = None) -> Optional[Capacitor]:
        """Add a capacitor.  Caps with one terminal on a supply rail are
        folded into the signal node's grounded capacitance (and ``None`` is
        returned); true floating caps are kept as elements."""
        a = self.add_node(node_a)
        b = self.add_node(node_b)
        if capacitance <= 0:
            raise NetlistError(f"non-positive capacitance {capacitance}")
        if a.is_supply and b.is_supply:
            raise NetlistError("capacitor between two supply rails is meaningless")
        if a.is_supply or b.is_supply:
            target = b if a.is_supply else a
            target.capacitance += capacitance
            return None
        if name is None:
            name = self._fresh_name("c")
        if name in self._capacitors:
            raise NetlistError(f"duplicate capacitor name {name!r}")
        element = Capacitor(name=name, node_a=a.name, node_b=b.name,
                            capacitance=capacitance)
        self._capacitors[name] = element
        self._capacitor_index.setdefault(a.name, []).append(name)
        self._capacitor_index.setdefault(b.name, []).append(name)
        return element

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    @property
    def signal_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if not n.is_supply]

    @property
    def transistors(self) -> List[Transistor]:
        return list(self._transistors.values())

    @property
    def resistors(self) -> List[Resistor]:
        return list(self._resistors.values())

    @property
    def capacitors(self) -> List[Capacitor]:
        """Floating (node-to-node) capacitors only; grounded caps live on
        the nodes."""
        return list(self._capacitors.values())

    def transistor(self, name: str) -> Transistor:
        try:
            return self._transistors[name]
        except KeyError:
            raise NetlistError(f"unknown transistor {name!r}") from None

    def transistors_gated_by(self, node: str) -> List[Transistor]:
        """Devices whose gate is *node*."""
        cname = canonical_name(node)
        return [self._transistors[n] for n in self._gate_index.get(cname, [])]

    def transistors_touching(self, node: str) -> List[Transistor]:
        """Devices with a channel terminal on *node*."""
        cname = canonical_name(node)
        return [self._transistors[n] for n in self._channel_index.get(cname, [])]

    def resistors_touching(self, node: str) -> List[Resistor]:
        cname = canonical_name(node)
        return [self._resistors[n] for n in self._resistor_index.get(cname, [])]

    def capacitors_touching(self, node: str) -> List[Capacitor]:
        cname = canonical_name(node)
        return [self._capacitors[n] for n in self._capacitor_index.get(cname, [])]

    def channel_neighbors(self, node: str) -> Iterator[Tuple[str, Transistor]]:
        """Yield ``(other_node, device)`` for each channel edge at *node*."""
        for device in self.transistors_touching(node):
            yield device.other_channel_terminal(canonical_name(node)), device

    # ------------------------------------------------------------------
    # Derived electrical quantities
    # ------------------------------------------------------------------

    def node_capacitance(self, name: str) -> float:
        """Total grounded capacitance at a node: explicit + gate caps of
        devices gated by it + diffusion caps of devices touching it.

        Floating node-to-node capacitors are *not* included (the analog
        simulator handles them exactly; the switch-level delay models treat
        them via the stage extractor, which decides how to lump them).
        """
        node = self.node(name)
        total = node.capacitance
        for device in self.transistors_gated_by(node.name):
            params = self.tech.params(device.kind)
            total += params.gate_capacitance(device.width, device.length)
        for device in self.transistors_touching(node.name):
            params = self.tech.params(device.kind)
            total += params.diffusion_capacitance(device.width)
        return total

    def inputs(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.role is NodeRole.INPUT]

    def summary(self) -> str:
        return (
            f"network {self.name!r} ({self.tech.name}): "
            f"{len(self._nodes)} nodes, {len(self._transistors)} transistors, "
            f"{len(self._resistors)} resistors, "
            f"{len(self._capacitors)} floating caps"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.summary()}>"

    # ------------------------------------------------------------------
    # Iteration helpers used by the analyses
    # ------------------------------------------------------------------

    def conduction_edges(self) -> Iterator[Tuple[str, str, Transistor]]:
        """All channel edges as ``(node_a, node_b, device)``."""
        for device in self._transistors.values():
            yield device.source, device.drain, device

    def externally_driven(self) -> List[str]:
        """Names of nodes driven from outside (supplies + primary inputs)."""
        return [n.name for n in self._nodes.values() if n.is_driven_externally]

    def merge_from(self, other: "Network", prefix: str = "") -> Dict[str, str]:
        """Copy *other*'s elements into this network, optionally prefixing
        signal-node and element names.  Returns the node-name mapping.
        Supplies map onto supplies.  Both networks must share a technology.
        """
        if other.tech is not self.tech:
            raise NetlistError("cannot merge networks with different technologies")

        def map_name(name: str) -> str:
            node = other.node(name)
            if node.is_supply:
                return node.name
            return f"{prefix}{name}" if prefix else name

        mapping: Dict[str, str] = {}
        for node in other.nodes:
            new_name = map_name(node.name)
            mapping[node.name] = new_name
            if not node.is_supply:
                self.add_node(new_name, role=node.role,
                              capacitance=node.capacitance)
        for device in other.transistors:
            self.add_transistor(
                device.kind, map_name(device.gate), map_name(device.source),
                map_name(device.drain), device.width, device.length,
                name=f"{prefix}{device.name}" if prefix else device.name,
            )
        for res in other.resistors:
            self.add_resistor(map_name(res.node_a), map_name(res.node_b),
                              res.resistance,
                              name=f"{prefix}{res.name}" if prefix else res.name)
        for cap in other.capacitors:
            self.add_capacitor(map_name(cap.node_a), map_name(cap.node_b),
                               cap.capacitance,
                               name=f"{prefix}{cap.name}" if prefix else cap.name)
        return mapping
