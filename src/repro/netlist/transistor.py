"""Transistors and passive elements of a switch-level netlist."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import NetlistError
from ..tech import DeviceKind


@dataclass(frozen=True)
class Transistor:
    """A MOS transistor viewed as a switch with a resistive channel.

    ``source`` and ``drain`` are interchangeable for switch-level purposes
    (the channel is bidirectional); the names are kept for netlist fidelity.
    Geometry is in metres.
    """

    name: str
    kind: DeviceKind
    gate: str
    source: str
    drain: str
    width: float
    length: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise NetlistError(
                f"transistor {self.name!r}: non-positive geometry "
                f"W={self.width}, L={self.length}"
            )

    @property
    def channel(self) -> Tuple[str, str]:
        """The two channel terminals."""
        return (self.source, self.drain)

    def other_channel_terminal(self, node: str) -> str:
        """The channel terminal opposite *node*."""
        if node == self.source:
            return self.drain
        if node == self.drain:
            return self.source
        raise NetlistError(
            f"node {node!r} is not a channel terminal of {self.name!r}"
        )

    @property
    def is_load(self) -> bool:
        """True for a depletion device wired as a load (gate tied to a
        channel terminal) — it conducts unconditionally."""
        return self.kind is DeviceKind.NMOS_DEP and self.gate in self.channel

    def shape_factor(self) -> float:
        """W/L — proportional to drive strength."""
        return self.width / self.length


@dataclass(frozen=True)
class Resistor:
    """An explicit resistor (wire/poly resistance in RC interconnect)."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise NetlistError(
                f"resistor {self.name!r}: non-positive value {self.resistance}"
            )

    def other_terminal(self, node: str) -> str:
        if node == self.node_a:
            return self.node_b
        if node == self.node_b:
            return self.node_a
        raise NetlistError(f"node {node!r} is not a terminal of {self.name!r}")


@dataclass(frozen=True)
class Capacitor:
    """An explicit two-terminal capacitor.

    Capacitors to a supply rail are folded into the node's grounded
    capacitance by :class:`repro.netlist.Network`; floating (node-to-node)
    capacitors — e.g. the bootstrap capacitor of an nMOS driver — are kept
    as two-terminal elements and honoured by the analog simulator.
    """

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise NetlistError(
                f"capacitor {self.name!r}: non-positive value {self.capacitance}"
            )
