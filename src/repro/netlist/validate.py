"""Netlist sanity checks.

``validate_network`` runs a battery of structural rules and returns a list
of :class:`Diagnostic` records (empty when the netlist is clean).  The
``strict`` entry point raises on the first error-severity finding.  These
are the same classes of checks Crystal performed on chip netlists before
timing them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import ValidationError
from ..tech import DeviceKind
from .network import Network
from .node import GND, VDD
from .stages import decompose_stages


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity.value}: [{self.code}] {self.message}"


def validate_network(network: Network) -> List[Diagnostic]:
    """Run all checks; return diagnostics sorted errors-first."""
    findings: List[Diagnostic] = []
    findings.extend(_check_floating_gates(network))
    findings.extend(_check_undriven_stages(network))
    findings.extend(_check_supply_shorts(network))
    findings.extend(_check_depletion_usage(network))
    findings.extend(_check_isolated_nodes(network))
    findings.sort(key=lambda d: (d.severity is not Severity.ERROR, d.code))
    return findings


def validate_strict(network: Network) -> None:
    """Raise :class:`~repro.errors.ValidationError` on the first error."""
    findings = validate_network(network)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if errors:
        raise ValidationError("; ".join(str(e) for e in errors))


def _check_floating_gates(network: Network) -> List[Diagnostic]:
    """A gate net must be a supply, an input, or resistively connected to
    something that can drive it (i.e. belong to a stage)."""
    findings = []
    stage_nodes = set()
    for stage in decompose_stages(network):
        stage_nodes |= stage.internal_nodes
    for device in network.transistors:
        gate = network.node(device.gate)
        if gate.is_driven_externally or gate.name in stage_nodes:
            continue
        findings.append(Diagnostic(
            Severity.ERROR, "floating-gate",
            f"gate of {device.name!r} (net {gate.name!r}) is never driven",
        ))
    return findings


def _check_undriven_stages(network: Network) -> List[Diagnostic]:
    """Every stage should touch at least one externally driven node;
    otherwise its nodes can only ever hold stale charge."""
    findings = []
    for stage in decompose_stages(network):
        if not stage.boundary_nodes and stage.internal_nodes:
            nodes = ", ".join(sorted(stage.internal_nodes))
            findings.append(Diagnostic(
                Severity.WARNING, "undriven-stage",
                f"stage [{nodes}] has no path to a supply or input",
            ))
    return findings


def _check_supply_shorts(network: Network) -> List[Diagnostic]:
    """Flag unconditional resistive paths between Vdd and GND: chains of
    always-on devices (depletion loads, explicit resistors) that bridge the
    rails.  Gated devices are fine — whether they short depends on inputs."""
    findings = []
    always_on_adjacency = {}

    def connect(a: str, b: str, label: str) -> None:
        always_on_adjacency.setdefault(a, []).append((b, label))
        always_on_adjacency.setdefault(b, []).append((a, label))

    for device in network.transistors:
        if device.is_load:
            connect(device.source, device.drain, device.name)
    for res in network.resistors:
        connect(res.node_a, res.node_b, res.name)

    # BFS from Vdd through always-on edges; reaching GND is a hard short.
    seen = {VDD}
    frontier = [VDD]
    while frontier:
        current = frontier.pop()
        for neighbor, _ in always_on_adjacency.get(current, ()):
            if neighbor == GND:
                findings.append(Diagnostic(
                    Severity.ERROR, "supply-short",
                    "unconditional resistive path between vdd and gnd",
                ))
                return findings
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return findings


def _check_depletion_usage(network: Network) -> List[Diagnostic]:
    """Depletion devices not wired as loads are unusual enough to warn."""
    findings = []
    for device in network.transistors:
        if device.kind is DeviceKind.NMOS_DEP and not device.is_load:
            findings.append(Diagnostic(
                Severity.WARNING, "depletion-switch",
                f"depletion device {device.name!r} is not wired as a load "
                "(gate not tied to a channel terminal); it conducts for "
                "almost all gate voltages",
            ))
    return findings


def _check_isolated_nodes(network: Network) -> List[Diagnostic]:
    """Signal nodes that touch nothing at all are probably typos."""
    findings = []
    for node in network.signal_nodes:
        touches = (
            network.transistors_touching(node.name)
            or network.transistors_gated_by(node.name)
            or network.resistors_touching(node.name)
            or network.capacitors_touching(node.name)
        )
        if not touches and node.capacitance == 0.0:
            findings.append(Diagnostic(
                Severity.WARNING, "isolated-node",
                f"node {node.name!r} is connected to nothing",
            ))
    return findings
