"""Circuit nodes.

A :class:`Node` is a named electrical net.  The two supply nets have fixed
well-known names (:data:`VDD` and :data:`GND`); everything else is a signal
net.  Nodes carry the *explicit* capacitance attached to them (wire and
drawn capacitors to ground); device capacitance is computed from the
transistors by :class:`repro.netlist.Network`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Canonical supply net names.  Parsers normalize aliases onto these.
VDD = "vdd"
GND = "gnd"

#: Aliases accepted on input (case-insensitive).
SUPPLY_ALIASES = {
    "vdd": VDD,
    "vcc": VDD,
    "vdd!": VDD,
    "gnd": GND,
    "vss": GND,
    "gnd!": GND,
    "0": GND,
}


class NodeRole(enum.Enum):
    """What a node is, structurally."""

    SIGNAL = "signal"
    POWER = "power"  #: the Vdd rail
    GROUND = "ground"  #: the GND rail
    INPUT = "input"  #: primary input (driven from outside the network)

    @property
    def is_supply(self) -> bool:
        return self in (NodeRole.POWER, NodeRole.GROUND)


def canonical_name(name: str) -> str:
    """Normalize a net name: strip, lowercase supply aliases."""
    stripped = name.strip()
    if not stripped:
        raise ValueError("empty node name")
    alias = SUPPLY_ALIASES.get(stripped.lower())
    return alias if alias is not None else stripped


@dataclass
class Node:
    """One electrical net.

    Attributes
    ----------
    name:
        Canonical net name.
    role:
        Structural role; supplies and primary inputs are "driven from
        outside" for every analysis in the library.
    capacitance:
        Explicit capacitance to ground (farads) from wires and drawn
        capacitors; device capacitance is *not* included here.
    """

    name: str
    role: NodeRole = NodeRole.SIGNAL
    capacitance: float = 0.0
    attributes: dict = field(default_factory=dict)

    @property
    def is_supply(self) -> bool:
        return self.role.is_supply

    @property
    def is_driven_externally(self) -> bool:
        return self.role.is_supply or self.role is NodeRole.INPUT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
