"""Channel-connected region (stage) decomposition.

The paper's delay models operate on *stages*: maximal sets of signal nodes
connected through transistor channels (and explicit wire resistors).  The
supply rails and primary inputs are *boundaries* — an edge may touch them,
but regions never merge across them, because those nodes are voltage
sources as far as a stage is concerned.

The decomposition is the same one Crystal and the switch-level simulators
of the era (MOSSIM II) use, and it is shared here by the switch-level
simulator, the delay models, and the timing analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..errors import NetlistError
from .network import Network
from .transistor import Resistor, Transistor


@dataclass
class Stage:
    """One channel-connected region.

    Attributes
    ----------
    index:
        Stable ordinal of the stage within its network.
    internal_nodes:
        Signal nodes belonging to the region (storage nodes).
    transistors / resistors:
        Elements whose channel (or body) lies in the region.
    boundary_nodes:
        Supply rails and primary inputs touched by the region's elements.
    gate_inputs:
        Gate nets of the region's transistors — the signals that control
        the stage.  A gate net may simultaneously be an internal node of
        the same stage (e.g. bootstrap circuits); such stages are flagged
        ``self_loop``.
    """

    index: int
    internal_nodes: FrozenSet[str]
    transistors: Tuple[Transistor, ...]
    resistors: Tuple[Resistor, ...]
    boundary_nodes: FrozenSet[str]
    gate_inputs: FrozenSet[str]

    @property
    def self_loop(self) -> bool:
        return bool(self.gate_inputs & self.internal_nodes)

    @property
    def all_nodes(self) -> FrozenSet[str]:
        return self.internal_nodes | self.boundary_nodes

    def contains(self, node: str) -> bool:
        return node in self.internal_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nodes = ",".join(sorted(self.internal_nodes))
        return f"<stage {self.index}: [{nodes}]>"


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        # Iterative with full path compression: long pass-transistor
        # chains otherwise recurse past Python's stack limit.
        parent = self._parent.setdefault(item, item)
        root = item
        while parent != root:
            root = parent
            parent = self._parent[root]
        while item != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def decompose_stages(network: Network) -> List[Stage]:
    """Partition *network* into channel-connected regions.

    Every signal node that touches a transistor channel or a resistor
    belongs to exactly one stage.  Isolated signal nodes (gate-only nets,
    primary inputs that drive nothing resistively) do not form stages.
    """
    driven = set(network.externally_driven())
    uf = _UnionFind()

    # Pass 1: union internal nodes across channels/resistors.
    for device in network.transistors:
        a, b = device.source, device.drain
        if a not in driven and b not in driven:
            uf.union(a, b)
    for res in network.resistors:
        a, b = res.node_a, res.node_b
        if a not in driven and b not in driven:
            uf.union(a, b)

    # Pass 2: bucket every device and resistor under its region's root in
    # one sweep (the old build rescanned all devices once per stage, an
    # O(stages x devices) cost that dominated on decoder/PLA topologies).
    group_nodes: Dict[str, Set[str]] = {}
    group_transistors: Dict[str, List[Transistor]] = {}
    group_resistors: Dict[str, List[Resistor]] = {}
    group_boundary: Dict[str, Set[str]] = {}
    group_gates: Dict[str, Set[str]] = {}
    # An edge entirely between boundary nodes (e.g. a pass transistor
    # directly bridging two primary inputs) forms a degenerate stage with
    # no internal nodes; collect those separately, in device order.
    degenerate: List[Tuple[str, str]] = []
    pair_transistors: Dict[FrozenSet[str], List[Transistor]] = {}
    pair_resistors: Dict[FrozenSet[str], List[Resistor]] = {}

    def bucket(nodes: Tuple[str, str]):
        internal = [n for n in nodes if n not in driven]
        if not internal:
            return None
        root = uf.find(internal[0])
        group_nodes.setdefault(root, set()).update(internal)
        if len(internal) < 2:
            boundary = group_boundary.setdefault(root, set())
            for node in nodes:
                if node in driven:
                    boundary.add(node)
        return root

    for device in network.transistors:
        channel = device.channel
        root = bucket(channel)
        if root is None:
            degenerate.append(channel)
            pair_transistors.setdefault(frozenset(channel), []).append(device)
            continue
        group_transistors.setdefault(root, []).append(device)
        group_gates.setdefault(root, set()).add(device.gate)
    for res in network.resistors:
        ends = (res.node_a, res.node_b)
        root = bucket(ends)
        if root is None:
            degenerate.append(ends)
            pair_resistors.setdefault(frozenset(ends), []).append(res)
            continue
        group_resistors.setdefault(root, []).append(res)

    stages: List[Stage] = []
    for root in sorted(group_nodes, key=lambda r: min(group_nodes[r])):
        stages.append(Stage(
            index=len(stages),
            internal_nodes=frozenset(group_nodes[root]),
            transistors=tuple(sorted(group_transistors.get(root, ()),
                                     key=lambda d: d.name)),
            resistors=tuple(sorted(group_resistors.get(root, ()),
                                   key=lambda r: r.name)),
            boundary_nodes=frozenset(group_boundary.get(root, ())),
            gate_inputs=frozenset(group_gates.get(root, ())),
        ))

    for a, b in degenerate:
        pair = frozenset((a, b))
        devices = tuple(pair_transistors.get(pair, ()))
        stages.append(Stage(
            index=len(stages),
            internal_nodes=frozenset(),
            transistors=devices,
            resistors=tuple(pair_resistors.get(pair, ())),
            boundary_nodes=frozenset((a, b)),
            gate_inputs=frozenset(d.gate for d in devices),
        ))
    return stages


def stage_of(stages: List[Stage], node: str) -> Stage:
    """The unique stage whose internal nodes include *node*."""
    for stage in stages:
        if stage.contains(node):
            return stage
    raise NetlistError(f"node {node!r} is not an internal node of any stage")


@dataclass
class StageMap:
    """Index from node names to their stage, built once per network."""

    stages: List[Stage]
    by_node: Dict[str, Stage] = field(default_factory=dict)

    @classmethod
    def build(cls, network: Network) -> "StageMap":
        stages = decompose_stages(network)
        by_node: Dict[str, Stage] = {}
        for stage in stages:
            for node in stage.internal_nodes:
                by_node[node] = stage
        return cls(stages=stages, by_node=by_node)

    def get(self, node: str) -> Stage:
        try:
            return self.by_node[node]
        except KeyError:
            raise NetlistError(
                f"node {node!r} is not an internal node of any stage"
            ) from None

    def maybe(self, node: str):
        return self.by_node.get(node)
