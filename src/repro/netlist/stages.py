"""Channel-connected region (stage) decomposition.

The paper's delay models operate on *stages*: maximal sets of signal nodes
connected through transistor channels (and explicit wire resistors).  The
supply rails and primary inputs are *boundaries* — an edge may touch them,
but regions never merge across them, because those nodes are voltage
sources as far as a stage is concerned.

The decomposition is the same one Crystal and the switch-level simulators
of the era (MOSSIM II) use, and it is shared here by the switch-level
simulator, the delay models, and the timing analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..errors import NetlistError
from .network import Network
from .transistor import Resistor, Transistor


@dataclass
class Stage:
    """One channel-connected region.

    Attributes
    ----------
    index:
        Stable ordinal of the stage within its network.
    internal_nodes:
        Signal nodes belonging to the region (storage nodes).
    transistors / resistors:
        Elements whose channel (or body) lies in the region.
    boundary_nodes:
        Supply rails and primary inputs touched by the region's elements.
    gate_inputs:
        Gate nets of the region's transistors — the signals that control
        the stage.  A gate net may simultaneously be an internal node of
        the same stage (e.g. bootstrap circuits); such stages are flagged
        ``self_loop``.
    """

    index: int
    internal_nodes: FrozenSet[str]
    transistors: Tuple[Transistor, ...]
    resistors: Tuple[Resistor, ...]
    boundary_nodes: FrozenSet[str]
    gate_inputs: FrozenSet[str]

    @property
    def self_loop(self) -> bool:
        return bool(self.gate_inputs & self.internal_nodes)

    @property
    def all_nodes(self) -> FrozenSet[str]:
        return self.internal_nodes | self.boundary_nodes

    def contains(self, node: str) -> bool:
        return node in self.internal_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nodes = ",".join(sorted(self.internal_nodes))
        return f"<stage {self.index}: [{nodes}]>"


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def decompose_stages(network: Network) -> List[Stage]:
    """Partition *network* into channel-connected regions.

    Every signal node that touches a transistor channel or a resistor
    belongs to exactly one stage.  Isolated signal nodes (gate-only nets,
    primary inputs that drive nothing resistively) do not form stages.
    """
    driven = set(network.externally_driven())
    uf = _UnionFind()

    def is_boundary(node: str) -> bool:
        return node in driven

    edges: List[Tuple[str, str]] = []
    for device in network.transistors:
        edges.append((device.source, device.drain))
    for res in network.resistors:
        edges.append((res.node_a, res.node_b))

    for a, b in edges:
        if not is_boundary(a):
            uf.find(a)
        if not is_boundary(b):
            uf.find(b)
        if not is_boundary(a) and not is_boundary(b):
            uf.union(a, b)

    # Group internal nodes by root.
    groups: Dict[str, Set[str]] = {}
    for device in network.transistors:
        for node in device.channel:
            if not is_boundary(node):
                groups.setdefault(uf.find(node), set()).add(node)
    for res in network.resistors:
        for node in (res.node_a, res.node_b):
            if not is_boundary(node):
                groups.setdefault(uf.find(node), set()).add(node)

    # An edge entirely between boundary nodes (e.g. a pass transistor
    # directly bridging two primary inputs) forms a degenerate stage with
    # no internal nodes; collect those separately.
    degenerate: List[Tuple[str, str]] = [
        (a, b) for a, b in edges if is_boundary(a) and is_boundary(b)
    ]

    stages: List[Stage] = []
    for root in sorted(groups, key=lambda r: sorted(groups[r])[0]):
        members = groups[root]
        transistors = []
        resistors = []
        boundary: Set[str] = set()
        gates: Set[str] = set()
        for device in network.transistors:
            touched = [n for n in device.channel if n in members]
            if touched:
                transistors.append(device)
                gates.add(device.gate)
                for node in device.channel:
                    if is_boundary(node):
                        boundary.add(node)
        for res in network.resistors:
            touched = [n for n in (res.node_a, res.node_b) if n in members]
            if touched:
                resistors.append(res)
                for node in (res.node_a, res.node_b):
                    if is_boundary(node):
                        boundary.add(node)
        stages.append(Stage(
            index=len(stages),
            internal_nodes=frozenset(members),
            transistors=tuple(sorted(transistors, key=lambda d: d.name)),
            resistors=tuple(sorted(resistors, key=lambda r: r.name)),
            boundary_nodes=frozenset(boundary),
            gate_inputs=frozenset(gates),
        ))

    for a, b in degenerate:
        devices = tuple(
            d for d in network.transistors
            if frozenset(d.channel) == frozenset((a, b))
        )
        ress = tuple(
            r for r in network.resistors
            if frozenset((r.node_a, r.node_b)) == frozenset((a, b))
        )
        stages.append(Stage(
            index=len(stages),
            internal_nodes=frozenset(),
            transistors=devices,
            resistors=ress,
            boundary_nodes=frozenset((a, b)),
            gate_inputs=frozenset(d.gate for d in devices),
        ))
    return stages


def stage_of(stages: List[Stage], node: str) -> Stage:
    """The unique stage whose internal nodes include *node*."""
    for stage in stages:
        if stage.contains(node):
            return stage
    raise NetlistError(f"node {node!r} is not an internal node of any stage")


@dataclass
class StageMap:
    """Index from node names to their stage, built once per network."""

    stages: List[Stage]
    by_node: Dict[str, Stage] = field(default_factory=dict)

    @classmethod
    def build(cls, network: Network) -> "StageMap":
        stages = decompose_stages(network)
        by_node: Dict[str, Stage] = {}
        for stage in stages:
            for node in stage.internal_nodes:
                by_node[node] = stage
        return cls(stages=stages, by_node=by_node)

    def get(self, node: str) -> Stage:
        try:
            return self.by_node[node]
        except KeyError:
            raise NetlistError(
                f"node {node!r} is not an internal node of any stage"
            ) from None

    def maybe(self, node: str):
        return self.by_node.get(node)
