"""Transistor-level netlist substrate: nodes, devices, stages, file formats."""

from .node import GND, VDD, Node, NodeRole, canonical_name
from .transistor import Capacitor, Resistor, Transistor
from .network import Network
from .stages import Stage, StageMap, decompose_stages, stage_of
from .validate import Diagnostic, Severity, validate_network, validate_strict
from . import sim_format, spice_format

__all__ = [
    "GND",
    "VDD",
    "Node",
    "NodeRole",
    "canonical_name",
    "Capacitor",
    "Resistor",
    "Transistor",
    "Network",
    "Stage",
    "StageMap",
    "decompose_stages",
    "stage_of",
    "Diagnostic",
    "Severity",
    "validate_network",
    "validate_strict",
    "sim_format",
    "spice_format",
]
