""".sim-format reader/writer.

The ``.sim`` format is the Berkeley switch-level netlist interchange format
used by the tools of the paper's era (esim, Crystal, MOSSIM).  This module
implements the commonly used subset plus one extension:

* ``e g s d [L W]`` — n-channel enhancement transistor
* ``d g s d [L W]`` — n-channel depletion transistor
* ``p g s d [L W]`` — p-channel transistor
* ``C a b value``   — capacitor, value in **femtofarads** (per tradition)
* ``R a b value``   — resistor, value in ohms
* ``i node [node…]``— (extension) declare primary inputs
* ``| …``           — comment line

Geometry is given in units of ``Technology.lambda_units`` (µm by default);
omitted geometry falls back to the technology defaults.  Supply aliases
(``vdd``/``vcc``, ``gnd``/``vss``/``0``) are normalized.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..errors import ParseError
from ..tech import DeviceKind, Technology
from ..units import parse_value
from .network import Network

_KIND_LETTERS = {
    "e": DeviceKind.NMOS_ENH,
    "n": DeviceKind.NMOS_ENH,
    "d": DeviceKind.NMOS_DEP,
    "p": DeviceKind.PMOS,
}


def loads(text: str, tech: Technology, name: str = "sim",
          filename: str = "<string>") -> Network:
    """Parse ``.sim`` text into a :class:`~repro.netlist.Network`."""
    network = Network(tech, name=name)
    scale = tech.lambda_units
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("|") or line.startswith("#"):
            continue
        fields = line.split()
        code = fields[0].lower()
        try:
            if code in _KIND_LETTERS:
                _parse_transistor(network, code, fields, scale, filename, lineno)
            elif code == "c":
                _expect(len(fields) == 4, "C needs: C a b value", filename, lineno)
                value = parse_value(fields[3]) * 1e-15
                network.add_capacitor(fields[1], fields[2], value)
            elif code == "r":
                _expect(len(fields) == 4, "R needs: R a b value", filename, lineno)
                network.add_resistor(fields[1], fields[2], parse_value(fields[3]))
            elif code == "i":
                _expect(len(fields) >= 2, "i needs at least one node", filename, lineno)
                for node in fields[1:]:
                    network.add_node(node)
                network.mark_input(*fields[1:])
            else:
                raise ParseError(f"unknown record type {fields[0]!r}",
                                 filename, lineno)
        except ParseError:
            raise
        except Exception as exc:  # re-wrap construction errors with location
            raise ParseError(str(exc), filename, lineno) from exc
    return network


def load(path: str, tech: Technology) -> Network:
    """Parse a ``.sim`` file from disk.

    A missing or unreadable file raises :class:`ParseError` naming the
    path — CLI callers turn that into a clean exit-2 diagnostic instead
    of an ``OSError`` traceback.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ParseError(f"cannot read netlist {path!r}: {exc}") from exc
    return loads(text, tech, name=path, filename=path)


def dumps(network: Network) -> str:
    """Serialize a network back to ``.sim`` text (lossless for the subset
    this module understands, except merged grounded capacitors which come
    back as caps to gnd).

    Values are written with 12 significant digits — enough that the
    parse → dump → parse cycle reproduces geometries and element values
    to better than 1e-9 relative, which keeps re-analyzed reproducer
    netlists (:mod:`repro.verify`) on the same arrivals.
    """
    scale = network.tech.lambda_units
    lines: List[str] = [f"| {network.summary()}"]
    inputs = [n.name for n in network.inputs()]
    if inputs:
        lines.append("i " + " ".join(sorted(inputs)))
    for device in network.transistors:
        letter = {
            DeviceKind.NMOS_ENH: "e",
            DeviceKind.NMOS_DEP: "d",
            DeviceKind.PMOS: "p",
        }[device.kind]
        lines.append(
            f"{letter} {device.gate} {device.source} {device.drain} "
            f"{device.length / scale:.12g} {device.width / scale:.12g}"
        )
    for res in network.resistors:
        lines.append(f"R {res.node_a} {res.node_b} {res.resistance:.12g}")
    for cap in network.capacitors:
        lines.append(
            f"C {cap.node_a} {cap.node_b} {cap.capacitance / 1e-15:.12g}")
    # Sorted by name so the text is independent of node creation order
    # (parsing re-creates nodes in line order, which would otherwise make
    # dump → parse → dump shuffle these lines).
    for node in sorted(network.signal_nodes, key=lambda n: n.name):
        if node.capacitance > 0:
            lines.append(
                f"C {node.name} gnd {node.capacitance / 1e-15:.12g}")
    return "\n".join(lines) + "\n"


def dump(network: Network, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dumps(network))


def _expect(condition: bool, message: str, filename: str, lineno: int) -> None:
    if not condition:
        raise ParseError(message, filename, lineno)


def _parse_transistor(network: Network, code: str, fields: List[str],
                      scale: float, filename: str, lineno: int) -> None:
    _expect(len(fields) in (4, 6),
            f"{code} needs: {code} gate source drain [length width]",
            filename, lineno)
    kind = _KIND_LETTERS[code]
    length: Optional[float] = None
    width: Optional[float] = None
    if len(fields) == 6:
        length = parse_value(fields[4]) * scale
        width = parse_value(fields[5]) * scale
    network.add_transistor(kind, fields[1], fields[2], fields[3],
                           width=width, length=length)
