"""SPICE-subset netlist reader/writer.

Supports the subset needed to exchange the paper's test circuits with a
conventional circuit simulator:

* ``.model NAME NMOS|PMOS (VTO=… KP=… LAMBDA=…)`` — model cards; an NMOS
  model with negative VTO is a depletion device,
* ``Mxxx drain gate source bulk MODEL [W=…] [L=…]`` — transistors,
* ``Rxxx a b value`` / ``Cxxx a b value`` — passives,
* ``Vxxx n+ n- DC value`` or ``Vxxx n+ n- PULSE(v1 v2 td tr tf pw per)``
  or ``PWL(t1 v1 t2 v2 …)`` — sources; a DC source equal to the rails is
  folded into them, any other source marks its node as a primary input and
  its waveform is recorded as a :class:`StimulusSpec`,
* ``*`` comments, ``+`` continuation lines, ``.end``.

``loads`` returns ``(network, stimuli)`` where *stimuli* maps node names to
specs the analog simulator can turn into drive waveforms
(:func:`repro.analog.sources.from_spec`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..tech import DeviceKind, Technology
from ..units import parse_value
from .network import Network
from .node import GND, VDD, canonical_name


@dataclass(frozen=True)
class StimulusSpec:
    """A parsed source waveform: ``kind`` is ``dc``, ``pulse`` or ``pwl``."""

    kind: str
    values: Tuple[float, ...] = field(default_factory=tuple)

    @property
    def dc_value(self) -> float:
        if self.kind != "dc":
            raise ParseError(f"stimulus is {self.kind!r}, not dc")
        return self.values[0]


@dataclass
class _ModelCard:
    name: str
    kind: DeviceKind
    vto: Optional[float]


def _join_continuations(text: str) -> List[Tuple[int, str]]:
    """Fold ``+`` continuation lines into their parent, keeping line numbers."""
    out: List[Tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not out:
                raise ParseError("continuation with no previous line",
                                 "<string>", lineno)
            prev_no, prev = out[-1]
            out[-1] = (prev_no, prev + " " + stripped[1:])
        else:
            out.append((lineno, line))
    return out


_PAREN = re.compile(r"\(([^)]*)\)")


def _parse_model(fields: List[str], line: str, filename: str,
                 lineno: int) -> _ModelCard:
    if len(fields) < 3:
        raise ParseError(".model needs a name and a type", filename, lineno)
    name = fields[1].lower()
    mtype = fields[2].split("(")[0].lower()
    params: Dict[str, float] = {}
    match = _PAREN.search(line)
    body = match.group(1) if match else " ".join(fields[3:])
    for assignment in re.split(r"[\s,]+", body.strip()):
        if not assignment:
            continue
        if "=" not in assignment:
            raise ParseError(f"bad model parameter {assignment!r}",
                             filename, lineno)
        key, value = assignment.split("=", 1)
        params[key.lower()] = parse_value(value)
    vto = params.get("vto")
    if mtype == "pmos":
        kind = DeviceKind.PMOS
    elif mtype == "nmos":
        kind = DeviceKind.NMOS_DEP if (vto is not None and vto < 0) else (
            DeviceKind.NMOS_ENH)
    else:
        raise ParseError(f"unsupported model type {mtype!r}", filename, lineno)
    return _ModelCard(name=name, kind=kind, vto=vto)


def loads(text: str, tech: Technology, name: str = "spice",
          filename: str = "<string>") -> Tuple[Network, Dict[str, StimulusSpec]]:
    """Parse SPICE-subset text; see module docstring."""
    network = Network(tech, name=name)
    stimuli: Dict[str, StimulusSpec] = {}
    models: Dict[str, _ModelCard] = {}
    lines = _join_continuations(text)

    for lineno, line in lines:
        fields = line.split()
        head = fields[0].lower()
        try:
            if head.startswith(".model"):
                card = _parse_model(fields, line, filename, lineno)
                models[card.name] = card
            elif head in (".end", ".ends"):
                break
            elif head.startswith((".tran", ".op", ".options", ".ic",
                                  ".print", ".plot", ".title")):
                continue  # analysis cards are the simulator's business
            elif head.startswith("."):
                raise ParseError(f"unsupported card {fields[0]!r}",
                                 filename, lineno)
            elif head[0] == "m":
                _parse_mosfet(network, fields, models, filename, lineno)
            elif head[0] == "r":
                _need(len(fields) == 4, "R needs 2 nodes and a value",
                      filename, lineno)
                network.add_resistor(fields[1], fields[2],
                                     parse_value(fields[3]), name=fields[0])
            elif head[0] == "c":
                _need(len(fields) == 4, "C needs 2 nodes and a value",
                      filename, lineno)
                network.add_capacitor(fields[1], fields[2],
                                      parse_value(fields[3]), name=fields[0])
            elif head[0] == "v":
                _parse_vsource(network, stimuli, fields, line, filename, lineno)
            else:
                raise ParseError(f"unsupported element {fields[0]!r}",
                                 filename, lineno)
        except ParseError:
            raise
        except Exception as exc:
            raise ParseError(str(exc), filename, lineno) from exc
    return network, stimuli


def load(path: str, tech: Technology) -> Tuple[Network, Dict[str, StimulusSpec]]:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ParseError(f"cannot read netlist {path!r}: {exc}") from exc
    return loads(text, tech, name=path, filename=path)


def _need(condition: bool, message: str, filename: str, lineno: int) -> None:
    if not condition:
        raise ParseError(message, filename, lineno)


def _parse_mosfet(network: Network, fields: List[str],
                  models: Dict[str, _ModelCard], filename: str,
                  lineno: int) -> None:
    _need(len(fields) >= 6, "M needs: Mname d g s b model [W=] [L=]",
          filename, lineno)
    drain, gate, source = fields[1], fields[2], fields[3]
    model_name = fields[5].lower()
    card = models.get(model_name)
    if card is None:
        raise ParseError(f"unknown model {fields[5]!r}", filename, lineno)
    width: Optional[float] = None
    length: Optional[float] = None
    for token in fields[6:]:
        if "=" not in token:
            raise ParseError(f"bad device parameter {token!r}", filename, lineno)
        key, value = token.split("=", 1)
        key = key.lower()
        if key == "w":
            width = parse_value(value)
        elif key == "l":
            length = parse_value(value)
        # other instance parameters (AD, AS, …) are irrelevant here
    network.add_transistor(card.kind, gate, source, drain,
                           width=width, length=length, name=fields[0])


_SRC_FUNC = re.compile(r"(pulse|pwl)\s*\(([^)]*)\)", re.IGNORECASE)


def _parse_vsource(network: Network, stimuli: Dict[str, StimulusSpec],
                   fields: List[str], line: str, filename: str,
                   lineno: int) -> None:
    _need(len(fields) >= 4, "V needs: Vname n+ n- value", filename, lineno)
    plus = canonical_name(fields[1])
    minus = canonical_name(fields[2])
    match = _SRC_FUNC.search(line)
    if match:
        kind = match.group(1).lower()
        values = tuple(parse_value(tok) for tok in
                       re.split(r"[\s,]+", match.group(2).strip()) if tok)
        spec = StimulusSpec(kind=kind, values=values)
    else:
        tail = [f for f in fields[3:] if f.lower() != "dc"]
        _need(len(tail) == 1, "V needs a single DC value or PULSE/PWL",
              filename, lineno)
        spec = StimulusSpec(kind="dc", values=(parse_value(tail[0]),))

    if minus != GND:
        raise ParseError("only ground-referenced sources are supported",
                         filename, lineno)
    if plus in (VDD, GND):
        return  # the rails are implicit; the value is taken from the tech
    network.add_node(plus)
    network.mark_input(plus)
    stimuli[plus] = spec


def dumps(network: Network, stimuli: Optional[Dict[str, StimulusSpec]] = None,
          title: str = "repro netlist") -> str:
    """Serialize a network (and optional stimuli) as SPICE-subset text."""
    tech = network.tech
    lines = [f"* {title} ({tech.name})"]
    model_names: Dict[DeviceKind, str] = {}
    for kind, params in tech.devices.items():
        mname = {"e": "men", "d": "mdep", "p": "mp"}[kind.value]
        model_names[kind] = mname
        mtype = "PMOS" if kind is DeviceKind.PMOS else "NMOS"
        lines.append(
            f".model {mname} {mtype} (VTO={params.vt0:g} KP={params.kp:g} "
            f"LAMBDA={params.lam:g})"
        )
    lines.append(f"Vdd vdd gnd DC {tech.vdd:g}")
    for device in network.transistors:
        lines.append(
            f"M{device.name} {device.drain} {device.gate} {device.source} "
            f"gnd {model_names[device.kind]} W={device.width:g} "
            f"L={device.length:g}"
        )
    for res in network.resistors:
        lines.append(f"R{res.name} {res.node_a} {res.node_b} {res.resistance:g}")
    for cap in network.capacitors:
        lines.append(f"C{cap.name} {cap.node_a} {cap.node_b} {cap.capacitance:g}")
    for node in network.signal_nodes:
        if node.capacitance > 0:
            lines.append(f"Cn_{node.name} {node.name} gnd {node.capacitance:g}")
    for node, spec in (stimuli or {}).items():
        if spec.kind == "dc":
            lines.append(f"V{node} {node} gnd DC {spec.dc_value:g}")
        else:
            args = " ".join(f"{v:g}" for v in spec.values)
            lines.append(f"V{node} {node} gnd {spec.kind.upper()}({args})")
    lines.append(".end")
    return "\n".join(lines) + "\n"
