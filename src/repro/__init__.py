"""repro — Switch-Level Delay Models for Digital MOS VLSI.

A full reproduction of J. K. Ousterhout, "Switch-Level Delay Models for
Digital MOS VLSI", Proc. 21st Design Automation Conference, 1984 (the
delay models behind the Crystal timing analyzer), including every substrate
the paper depends on:

* :mod:`repro.netlist` — transistor-level netlists, `.sim`/SPICE formats,
  channel-connected-region (stage) decomposition;
* :mod:`repro.analog` — an MNA/level-1 transient simulator, the accuracy
  reference standing in for SPICE;
* :mod:`repro.switchlevel` — a ternary, strength-based switch-level logic
  simulator;
* :mod:`repro.rctree` — Elmore delay, Penfield-Rubinstein-Horowitz bounds,
  exact step responses;
* :mod:`repro.core.models` — the paper's three delay models (lumped RC,
  RC tree, slope) and the table characterization engine;
* :mod:`repro.core.timing` — a Crystal-style static timing analyzer;
* :mod:`repro.circuits` — the evaluation's benchmark circuits;
* :mod:`repro.bench` — the harness regenerating the paper's tables/figures.

Quick start::

    from repro import CMOS3, Transition, analyze, inverter_chain

    chain = inverter_chain(CMOS3, stages=4, fanout=2)
    result = analyze(chain, inputs={"in": 0.0})
    print(result.arrival("out", Transition.RISE).time)

See ``examples/`` for runnable walkthroughs and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .errors import (
    AnalysisError,
    ConvergenceError,
    MeasurementError,
    NetlistError,
    ParseError,
    ReproError,
    SimulationError,
    SweepError,
    TechnologyError,
    TimingError,
    ValidationError,
)
from .tech import CMOS3, NMOS4, DeviceKind, Technology, Transition
from .netlist import Network, decompose_stages, validate_network
from .analog import Waveform, delay_between, operating_point, simulate
from .switchlevel import Logic, SwitchSimulator
from .rctree import RCTree, delay_bounds, elmore_delay, exact_delay
from .core import (
    InputSpec,
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    TimingAnalyzer,
    TimingResult,
    analyze,
    characterize_technology,
    standard_models,
)
from .circuits import (
    Gates,
    bootstrap_driver,
    full_adder,
    inverter_chain,
    nand_gate,
    nor_gate,
    pass_chain,
    precharged_bus,
    ripple_carry_adder,
    xor_gate,
)
from .batch import (
    CartesianSweep,
    ExplicitVectors,
    RandomVectors,
    SweepResult,
    Vector,
    load_vector_file,
    run_scenarios,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "AnalysisError", "ConvergenceError", "MeasurementError", "NetlistError",
    "ParseError", "ReproError", "SimulationError", "SweepError",
    "TechnologyError", "TimingError", "ValidationError",
    # tech
    "CMOS3", "NMOS4", "DeviceKind", "Technology", "Transition",
    # netlist
    "Network", "decompose_stages", "validate_network",
    # analog
    "Waveform", "delay_between", "operating_point", "simulate",
    # switch level
    "Logic", "SwitchSimulator",
    # rc tree
    "RCTree", "delay_bounds", "elmore_delay", "exact_delay",
    # core
    "InputSpec", "LumpedRCModel", "RCTreeModel", "SlopeModel",
    "TimingAnalyzer", "TimingResult", "analyze", "characterize_technology",
    "standard_models",
    # circuits
    "Gates", "bootstrap_driver", "full_adder", "inverter_chain",
    "nand_gate", "nor_gate", "pass_chain", "precharged_bus",
    "ripple_carry_adder", "xor_gate",
    # batch sweeps
    "CartesianSweep", "ExplicitVectors", "RandomVectors", "SweepResult",
    "Vector", "load_vector_file", "run_scenarios", "run_sweep",
    "__version__",
]
