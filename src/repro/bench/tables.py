"""Table formatting in the layout of the paper's results tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..units import format_value
from .harness import ComparisonRow, ErrorSummary, RuntimeRow


def format_comparison_table(rows: Sequence[ComparisonRow], title: str,
                            model_order: Optional[List[str]] = None) -> str:
    """Rows: circuit | reference | per-model "delay (err%)" columns."""
    if not rows:
        return f"{title}\n(no rows)"
    if model_order is None:
        model_order = [est.model for est in rows[0].estimates]
    header = f"{'circuit':<18s} {'reference':>10s}"
    for model in model_order:
        header += f" | {model:>20s}"
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        line = f"{row.scenario:<18s} {format_value(row.reference, 's'):>10s}"
        for model in model_order:
            est = row.estimate(model)
            cell = (f"{format_value(est.delay, 's'):>10s} "
                    f"({est.error * 100:+6.1f}%)")
            line += f" | {cell:>20s}"
        lines.append(line)
    lines.append(rule)
    return "\n".join(lines)


def format_error_summary(summaries: Sequence[ErrorSummary],
                         title: str) -> str:
    """Table T3: aggregate error statistics per model."""
    header = (f"{'model':<12s} {'rows':>5s} {'mean |err|':>11s} "
              f"{'max |err|':>10s} {'mean err':>9s}")
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for s in summaries:
        lines.append(
            f"{s.model:<12s} {s.rows:>5d} {s.mean_abs_error * 100:>10.1f}% "
            f"{s.max_abs_error * 100:>9.1f}% {s.mean_signed_error * 100:>8.1f}%"
        )
    lines.append(rule)
    return "\n".join(lines)


def format_runtime_table(rows: Sequence[RuntimeRow], title: str) -> str:
    """Table T4: analyzer vs simulator wall clock and speedup."""
    header = (f"{'circuit':<14s} {'devices':>8s} {'analyzer':>10s} "
              f"{'simulator':>10s} {'speedup':>9s}")
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        sim = (format_value(row.simulator_seconds, 's')
               if row.simulator_seconds is not None else "(skipped)")
        speedup = (f"{row.speedup:8.0f}x" if row.speedup is not None
                   else "-")
        lines.append(
            f"{row.circuit:<14s} {row.transistors:>8d} "
            f"{format_value(row.analyzer_seconds, 's'):>10s} "
            f"{sim:>10s} {speedup:>9s}"
        )
    lines.append(rule)
    return "\n".join(lines)


def format_series(header_cols: Sequence[str],
                  rows: Sequence[Sequence[object]], title: str) -> str:
    """Generic aligned numeric series table (figure data dumps)."""
    widths = [max(len(str(c)), 12) for c in header_cols]
    header = "  ".join(f"{c:>{w}s}" for c, w in zip(header_cols, widths))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{width}.4g}")
            else:
                cells.append(f"{str(value):>{width}s}")
        lines.append("  ".join(cells))
    lines.append(rule)
    return "\n".join(lines)
