"""Benchmark harness: scenarios, comparison runner, table formatting."""

from .harness import (
    BatchRuntimeRow,
    ComparisonRow,
    DeltaSweepRow,
    ErrorSummary,
    ModelEstimate,
    RuntimeRow,
    Scenario,
    batch_runtime_comparison,
    delta_sweep_comparison,
    model_delay,
    reference_delay,
    run_scenario,
    run_suite,
    runtime_comparison,
    summarize_errors,
    time_callable,
)
from .scenarios import cmos_scenarios, nmos_scenarios
from .tables import (
    format_comparison_table,
    format_error_summary,
    format_runtime_table,
    format_series,
)

__all__ = [
    "BatchRuntimeRow",
    "batch_runtime_comparison",
    "ComparisonRow",
    "DeltaSweepRow",
    "delta_sweep_comparison",
    "ErrorSummary",
    "ModelEstimate",
    "RuntimeRow",
    "Scenario",
    "model_delay",
    "reference_delay",
    "run_scenario",
    "run_suite",
    "runtime_comparison",
    "summarize_errors",
    "time_callable",
    "cmos_scenarios",
    "nmos_scenarios",
    "format_comparison_table",
    "format_error_summary",
    "format_runtime_table",
    "format_series",
]
