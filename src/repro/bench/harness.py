"""Model-versus-reference comparison harness.

A :class:`Scenario` bundles everything needed to measure one circuit both
ways: the netlist, the analog drive waveforms (for the reference
simulator), the timing-analyzer input specs, and which input/output edge
pair defines the delay.  :func:`run_scenario` produces a
:class:`ComparisonRow`; :func:`run_suite` maps a scenario list through all
three models, which is exactly how the T1/T2 tables are generated.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analog import delay_between, simulate
from ..core.models import DelayModel, standard_models
from ..core.timing import InputSpec, TimingAnalyzer
from ..errors import AnalysisError
from ..netlist import Network
from ..switchlevel import Logic
from ..tech import Technology, Transition


@dataclass
class Scenario:
    """One measurable circuit + stimulus + observed edge."""

    name: str
    network: Network
    #: analog drives: node -> DriveWaveform / voltage
    drives: Mapping[str, object]
    #: timing-analyzer inputs: node -> InputSpec / time
    timing_inputs: Mapping[str, object]
    input_node: str
    input_edge: Transition
    output_node: str
    output_edge: Transition
    t_stop: float
    steps: int = 2500
    initial_conditions: Optional[Mapping[str, float]] = None
    #: sensitization states handed to the analyzer; computed automatically
    #: from the switch-level simulator when left None and auto_states is on
    states: Optional[Mapping[str, Logic]] = None
    initial_states: Optional[Mapping[str, Logic]] = None
    auto_states: bool = True
    notes: str = ""

    @property
    def tech(self) -> Technology:
        return self.network.tech


@dataclass
class ModelEstimate:
    model: str
    delay: float
    error: float  # signed fraction vs reference
    lower: Optional[float] = None
    upper: Optional[float] = None


@dataclass
class ComparisonRow:
    scenario: str
    reference: float
    estimates: List[ModelEstimate] = field(default_factory=list)

    def estimate(self, model_name: str) -> ModelEstimate:
        for est in self.estimates:
            if est.model == model_name:
                return est
        raise AnalysisError(f"no estimate for model {model_name!r}")


def reference_delay(scenario: Scenario) -> float:
    """Measure the scenario with the analog reference simulator."""
    result = simulate(
        scenario.network, scenario.drives, t_stop=scenario.t_stop,
        steps=scenario.steps,
        initial_conditions=scenario.initial_conditions,
    )
    return delay_between(
        result.waveform(scenario.input_node),
        result.waveform(scenario.output_node),
        scenario.tech.vdd,
        scenario.input_edge,
        scenario.output_edge,
    )


def scenario_states(scenario: Scenario) -> Tuple[Dict[str, Logic],
                                                 Dict[str, Logic]]:
    """Pre- and post-transition node states from the switch-level
    simulator — the sensitization data the timing analyzer prunes with
    (Crystal took the same information from esim or from the designer)."""
    from ..analog.sources import as_drive
    from ..switchlevel import SwitchSimulator

    vdd = scenario.tech.vdd

    def logic_of(voltage: float) -> Logic:
        return Logic.ONE if voltage >= 0.5 * vdd else Logic.ZERO

    overrides = {
        name: logic_of(value)
        for name, value in (scenario.initial_conditions or {}).items()
    }
    sim = SwitchSimulator(scenario.network, initial=overrides)
    for node, drive in scenario.drives.items():
        sim.set_input(node, logic_of(as_drive(drive).voltage(0.0)))
    sim.settle()
    pre = sim.values()
    for node, drive in scenario.drives.items():
        sim.set_input(node, logic_of(as_drive(drive).voltage(scenario.t_stop)))
    sim.settle()
    post = sim.values()
    return pre, post


def model_delay(scenario: Scenario, model: DelayModel) -> Tuple[float, object]:
    """Measure the scenario with one switch-level model."""
    states = scenario.states
    initial_states = scenario.initial_states
    if states is None and scenario.auto_states:
        initial_states, states = scenario_states(scenario)
    analyzer = TimingAnalyzer(scenario.network, model=model,
                              states=states, initial_states=initial_states)
    result = analyzer.analyze(scenario.timing_inputs)
    out = result.arrival(scenario.output_node, scenario.output_edge)
    start = result.arrival(scenario.input_node, scenario.input_edge)
    return out.time - start.time, out


def run_scenario(scenario: Scenario,
                 models: Optional[Sequence[DelayModel]] = None
                 ) -> ComparisonRow:
    """Reference + all models for one scenario."""
    if models is None:
        models = standard_models()
    reference = reference_delay(scenario)
    row = ComparisonRow(scenario=scenario.name, reference=reference)
    for model in models:
        delay, arrival = model_delay(scenario, model)
        stage = arrival.stage_delay
        row.estimates.append(ModelEstimate(
            model=model.name,
            delay=delay,
            error=(delay - reference) / reference if reference else math.inf,
            lower=stage.lower if stage else None,
            upper=stage.upper if stage else None,
        ))
    return row


def run_suite(scenarios: Sequence[Scenario],
              models: Optional[Sequence[DelayModel]] = None
              ) -> List[ComparisonRow]:
    return [run_scenario(s, models) for s in scenarios]


@dataclass
class ErrorSummary:
    """Aggregate statistics of one model over a suite (table T3)."""

    model: str
    mean_abs_error: float
    max_abs_error: float
    mean_signed_error: float
    rows: int


def summarize_errors(rows: Sequence[ComparisonRow]) -> List[ErrorSummary]:
    if not rows:
        return []
    by_model: Dict[str, List[float]] = {}
    for row in rows:
        for est in row.estimates:
            by_model.setdefault(est.model, []).append(est.error)
    summaries = []
    for model, errors in by_model.items():
        magnitudes = [abs(e) for e in errors]
        summaries.append(ErrorSummary(
            model=model,
            mean_abs_error=sum(magnitudes) / len(magnitudes),
            max_abs_error=max(magnitudes),
            mean_signed_error=sum(errors) / len(errors),
            rows=len(errors),
        ))
    return summaries


# ---------------------------------------------------------------------------
# Runtime comparison (table T4)
# ---------------------------------------------------------------------------

@dataclass
class RuntimeRow:
    circuit: str
    transistors: int
    analyzer_seconds: float
    simulator_seconds: Optional[float]  # None when too large to simulate
    #: perf counters of the timed analysis (stage visits, model evals,
    #: cache hits, worklist traffic) — see :mod:`repro.perf`
    perf: Optional[Dict[str, int]] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.simulator_seconds is None or self.analyzer_seconds <= 0:
            return None
        return self.simulator_seconds / self.analyzer_seconds


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    best = math.inf
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class BatchRuntimeRow:
    """Shared-analyzer sweep vs N fresh analyzers over the same vectors.

    The acceptance number of the batching work: ``eval_ratio`` is how
    many times fewer delay-model evaluations per scenario the shared
    analyzer needs, and ``identical`` certifies the speedup changed no
    answer (per-scenario arrivals bit-identical).
    """

    circuit: str
    scenarios: int
    shared_seconds: float
    fresh_seconds: float
    shared_model_evals: int
    fresh_model_evals: int
    identical: bool
    #: batch-aggregate counters of the shared run (cache hit rate, …)
    shared_counters: Optional[Dict[str, int]] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.shared_seconds <= 0:
            return None
        return self.fresh_seconds / self.shared_seconds

    @property
    def eval_ratio(self) -> Optional[float]:
        """Fresh-per-scenario evals over shared-per-scenario evals."""
        if self.shared_model_evals <= 0:
            return math.inf if self.fresh_model_evals else None
        return self.fresh_model_evals / self.shared_model_evals

    @property
    def shared_evals_per_scenario(self) -> float:
        return self.shared_model_evals / max(self.scenarios, 1)

    @property
    def fresh_evals_per_scenario(self) -> float:
        return self.fresh_model_evals / max(self.scenarios, 1)


def _results_identical(shared, fresh) -> bool:
    if set(shared.arrivals) != set(fresh.arrivals):
        return False
    for event, arrival in shared.arrivals.items():
        other = fresh.arrivals[event]
        if (arrival.time != other.time or arrival.slope != other.slope
                or arrival.cause != other.cause):
            return False
    return True


def batch_runtime_comparison(network: Network,
                             vectors: Sequence[Mapping[str, object]],
                             model: Optional[DelayModel] = None
                             ) -> BatchRuntimeRow:
    """Measure one shared ``analyze_many()`` against N fresh analyzers.

    Both sides analyze the same vectors with the same model; the fresh
    side pays full path/RC/memo setup per scenario (the pre-batching
    workflow), the shared side pays it once.  Per-scenario arrivals are
    compared event by event (times, slopes, causal links) and any
    difference clears ``identical``.
    """
    shared_analyzer = TimingAnalyzer(network, model=model)
    start = time.perf_counter()
    shared_results = shared_analyzer.analyze_many(vectors)
    shared_seconds = time.perf_counter() - start

    fresh_results = []
    start = time.perf_counter()
    for inputs in vectors:
        fresh_results.append(
            TimingAnalyzer(network, model=model).analyze(inputs))
    fresh_seconds = time.perf_counter() - start

    identical = all(
        _results_identical(shared, fresh)
        for shared, fresh in zip(shared_results, fresh_results))
    shared_evals = sum(r.perf.get("model_evals")
                       for r in shared_results if r.perf)
    fresh_evals = sum(r.perf.get("model_evals")
                      for r in fresh_results if r.perf)
    return BatchRuntimeRow(
        circuit=network.name,
        scenarios=len(shared_results),
        shared_seconds=shared_seconds,
        fresh_seconds=fresh_seconds,
        shared_model_evals=shared_evals,
        fresh_model_evals=fresh_evals,
        identical=identical,
        shared_counters=dict(shared_analyzer.perf.counters),
    )


@dataclass
class DeltaSweepRow:
    """Dirty-cone delta sweep vs the full shared-analyzer batch.

    The acceptance number of the delta work: ``visit_ratio`` is how many
    times fewer stage visits per scenario delta re-analysis needs on the
    same (low input-delta) vector sequence, and ``identical`` certifies
    the skipped work changed no answer.
    """

    circuit: str
    scenarios: int
    delta_seconds: float
    full_seconds: float
    delta_stage_visits: int
    full_stage_visits: int
    identical: bool
    #: cumulative counters of the delta run (cone sizes, skips, reuse)
    delta_counters: Optional[Dict[str, int]] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.delta_seconds <= 0:
            return None
        return self.full_seconds / self.delta_seconds

    @property
    def visit_ratio(self) -> Optional[float]:
        """Full-batch stage visits over delta-sweep stage visits."""
        if self.delta_stage_visits <= 0:
            return math.inf if self.full_stage_visits else None
        return self.full_stage_visits / self.delta_stage_visits

    @property
    def skip_rate(self) -> Optional[float]:
        counters = self.delta_counters or {}
        cone = counters.get("cone_stages", 0)
        skipped = counters.get("stages_skipped", 0)
        seen = cone + skipped
        return (skipped / seen) if seen else None


def delta_sweep_comparison(network: Network,
                           vectors: Sequence[Mapping[str, object]],
                           model: Optional[DelayModel] = None,
                           kernel: str = "numpy") -> DeltaSweepRow:
    """Measure ``analyze_many(delta=True)`` against the full batch.

    Both sides share one warm analyzer apiece and see the vectors in the
    same order, so the only difference is dirty-cone re-analysis versus
    a full worklist per scenario — the ratio isolates the delta engine.
    Per-scenario arrivals are compared event by event (times, slopes,
    causal links) and any difference clears ``identical``.
    """
    full_analyzer = TimingAnalyzer(network, model=model, kernel=kernel)
    start = time.perf_counter()
    full_results = full_analyzer.analyze_many(vectors)
    full_seconds = time.perf_counter() - start

    delta_analyzer = TimingAnalyzer(network, model=model, kernel=kernel)
    start = time.perf_counter()
    delta_results = delta_analyzer.analyze_many(vectors, delta=True)
    delta_seconds = time.perf_counter() - start

    identical = all(
        _results_identical(delta, full)
        for delta, full in zip(delta_results, full_results))
    delta_visits = sum(r.perf.get("stage_visits")
                       for r in delta_results if r.perf)
    full_visits = sum(r.perf.get("stage_visits")
                      for r in full_results if r.perf)
    return DeltaSweepRow(
        circuit=network.name,
        scenarios=len(delta_results),
        delta_seconds=delta_seconds,
        full_seconds=full_seconds,
        delta_stage_visits=delta_visits,
        full_stage_visits=full_visits,
        identical=identical,
        delta_counters=dict(delta_analyzer.perf.counters),
    )


def runtime_comparison(network: Network,
                       timing_inputs: Mapping[str, object],
                       drives: Optional[Mapping[str, object]] = None,
                       t_stop: float = 0.0,
                       model: Optional[DelayModel] = None,
                       simulate_reference: bool = True) -> RuntimeRow:
    """Wall-clock of one full timing analysis vs one transient run.

    Each timed run builds a fresh :class:`TimingAnalyzer` (cold caches) so
    the number reflects an end-to-end analysis, not a warm re-query.  The
    perf counters of the last timed run ride along on the row.
    """
    last_perf: Dict[str, object] = {}

    def run_analyzer():
        result = TimingAnalyzer(network, model=model).analyze(timing_inputs)
        if result.perf is not None:
            last_perf.clear()
            last_perf.update(result.perf.counters)

    analyzer_seconds = time_callable(run_analyzer)
    simulator_seconds = None
    if simulate_reference and drives is not None and t_stop > 0:
        simulator_seconds = time_callable(
            lambda: simulate(network, drives, t_stop=t_stop, steps=600))
    return RuntimeRow(
        circuit=network.name,
        transistors=len(network.transistors),
        analyzer_seconds=analyzer_seconds,
        simulator_seconds=simulator_seconds,
        perf=dict(last_perf) or None,
    )


@dataclass
class TraceOverheadRow:
    """Cost of the tracing subsystem on one analysis workload.

    Two numbers matter (DESIGN.md §7):

    * ``disabled_overhead_est`` — the deterministic estimate of what the
      *disabled* span sites cost the untraced run: the number of span
      records an enabled run produces times the microbenchmarked
      per-site disabled cost, over the untraced wall time.  This is what
      the <2 % budget gates on — a wall-clock A/B at that scale would be
      pure timing noise.
    * ``enabled_overhead`` — the measured wall ratio of the traced run
      over the untraced run, recorded for the record (not gated: tracing
      is opt-in, so its cost only has to be acceptable, not invisible).
    """

    circuit: str
    scenarios: int
    off_seconds: float
    on_seconds: float
    #: span + instant records one traced run emits
    span_records: int
    #: microbenchmarked per-call cost of a disabled span site (seconds)
    site_cost: float

    @property
    def disabled_overhead_est(self) -> Optional[float]:
        if self.off_seconds <= 0:
            return None
        return self.span_records * self.site_cost / self.off_seconds

    @property
    def enabled_overhead(self) -> Optional[float]:
        if self.off_seconds <= 0:
            return None
        return self.on_seconds / self.off_seconds - 1.0


def trace_overhead_comparison(network: Network,
                              vectors: Sequence[Mapping[str, object]],
                              model: Optional[DelayModel] = None,
                              kernel: str = "numpy") -> TraceOverheadRow:
    """Measure one workload untraced, traced, and per-site.

    Both runs use a fresh analyzer apiece over the same vectors, so the
    only difference is whether a tracer is installed.  The untraced run
    goes first (and its span count comes from the traced run), so the
    estimate is conservative: cold-cache work lands on the untraced
    side.
    """
    from ..trace import spans as trace_spans

    assert trace_spans.current() is None, \
        "trace_overhead_comparison needs tracing off at entry"

    off_analyzer = TimingAnalyzer(network, model=model, kernel=kernel)
    start = time.perf_counter()
    off_analyzer.analyze_many(vectors)
    off_seconds = time.perf_counter() - start

    tracer = trace_spans.Tracer()
    on_analyzer = TimingAnalyzer(network, model=model, kernel=kernel)
    with trace_spans.activate(tracer):
        start = time.perf_counter()
        on_analyzer.analyze_many(vectors)
        on_seconds = time.perf_counter() - start

    site_cost = trace_spans.disabled_site_cost()
    return TraceOverheadRow(
        circuit=network.name,
        scenarios=len(vectors),
        off_seconds=off_seconds,
        on_seconds=on_seconds,
        span_records=len(tracer.records),
        site_cost=site_cost,
    )
