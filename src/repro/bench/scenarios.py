"""The paper's test-circuit scenarios (tables T1 and T2).

Each function returns fully-wired :class:`~repro.bench.harness.Scenario`
objects for one technology: the circuit, the analog stimulus, the timing
specs, and the observed edge.  The circuit list reconstructs the DAC'84
evaluation set (see DESIGN.md): inverter chains with fanout, NAND/NOR,
pass chains, a precharged bus, the nMOS bootstrap driver, and an XOR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analog import sources
from ..core.timing import InputSpec
from ..circuits import (
    bootstrap_driver,
    inverter_chain,
    mux_tree,
    nand_gate,
    nor_gate,
    pass_chain,
    precharged_bus,
    xor_gate,
)
from ..tech import Technology, Transition
from .harness import Scenario

#: Input edge transition times used for the table scenarios.
CMOS_EDGE = 0.3e-9
NMOS_EDGE = 1.0e-9
#: Edge launch time (the DC state settles instantly at t=0).
T0 = 2e-9

_STATIC = InputSpec(arrival_rise=None, arrival_fall=None)


def _edge_spec(edge: Transition, slope: float) -> InputSpec:
    if edge is Transition.RISE:
        return InputSpec(arrival_rise=0.0, arrival_fall=None, slope=slope)
    return InputSpec(arrival_rise=None, arrival_fall=0.0, slope=slope)


def _scenario(name: str, network, switching: str, edge: Transition,
              output: str, output_edge: Transition, slope: float,
              t_stop: float, static_high: Optional[List[str]] = None,
              static_low: Optional[List[str]] = None,
              initial_conditions: Optional[Dict[str, float]] = None,
              notes: str = "") -> Scenario:
    tech = network.tech
    drives: Dict[str, object] = {
        switching: sources.edge(tech.vdd, rising=edge is Transition.RISE,
                                at=T0, transition_time=slope),
    }
    timing: Dict[str, object] = {switching: _edge_spec(edge, slope)}
    for node in static_high or []:
        drives[node] = tech.vdd
        timing[node] = _STATIC
    for node in static_low or []:
        drives[node] = 0.0
        timing[node] = _STATIC
    return Scenario(
        name=name,
        network=network,
        drives=drives,
        timing_inputs=timing,
        input_node=switching,
        input_edge=edge,
        output_node=output,
        output_edge=output_edge,
        t_stop=t_stop,
        initial_conditions=initial_conditions,
        notes=notes,
    )


def nmos_scenarios(tech: Technology) -> List[Scenario]:
    """Table T1: the nMOS test circuits (expects a characterized NMOS4)."""
    slope = NMOS_EDGE
    out: List[Scenario] = []

    out.append(_scenario(
        "inverter+100fF", inverter_chain(tech, 1, load_cap=100e-15),
        "in", Transition.RISE, "out", Transition.FALL, slope, 60e-9,
        notes="single ratioed inverter discharging a wire load"))

    out.append(_scenario(
        "inv-chain-4", inverter_chain(tech, 4),
        "in", Transition.RISE, "out", Transition.RISE, slope, 200e-9))

    out.append(_scenario(
        "inv-chain-4-fo4", inverter_chain(tech, 4, fanout=4),
        "in", Transition.RISE, "out", Transition.RISE, slope, 400e-9,
        notes="every stage drives four gate loads"))

    out.append(_scenario(
        "nand2", nand_gate(tech, 2), "a0", Transition.RISE,
        "out", Transition.FALL, slope, 60e-9, static_high=["a1"]))

    out.append(_scenario(
        "nand3", nand_gate(tech, 3), "a0", Transition.RISE,
        "out", Transition.FALL, slope, 60e-9, static_high=["a1", "a2"],
        notes="three-high series pulldown"))

    out.append(_scenario(
        "nor2", nor_gate(tech, 2), "a0", Transition.RISE,
        "out", Transition.FALL, slope, 60e-9, static_low=["a1"]))

    out.append(_scenario(
        "pass-chain-4", pass_chain(tech, 4), "in", Transition.FALL,
        "out", Transition.RISE, slope, 400e-9, static_high=["en"],
        notes="distributed RC: inverter driving 4 pass devices"))

    out.append(_scenario(
        "pass-chain-8", pass_chain(tech, 8), "in", Transition.FALL,
        "out", Transition.RISE, slope, 700e-9, static_high=["en"]))

    bus = precharged_bus(tech, drivers=2)
    out.append(_scenario(
        "bus-discharge", bus, "en0", Transition.RISE,
        "bus", Transition.FALL, slope, 80e-9,
        static_high=["d0"], static_low=["phi", "d1", "en1"],
        initial_conditions={"bus": tech.vdd},
        notes="precharged 400fF bus pulled down by one driver"))

    out.append(_scenario(
        "bootstrap", bootstrap_driver(tech), "in", Transition.FALL,
        "out", Transition.RISE, slope, 250e-9,
        notes="bootstrapped super-buffer driving 200fF"))

    out.append(_scenario(
        "xor", xor_gate(tech), "a", Transition.RISE,
        "out", Transition.RISE, slope, 250e-9, static_low=["b"]))
    return out


def cmos_scenarios(tech: Technology) -> List[Scenario]:
    """Table T2: the CMOS test circuits (expects a characterized CMOS3)."""
    slope = CMOS_EDGE
    out: List[Scenario] = []

    out.append(_scenario(
        "inverter+100fF", inverter_chain(tech, 1, load_cap=100e-15),
        "in", Transition.RISE, "out", Transition.FALL, slope, 25e-9))

    out.append(_scenario(
        "inv-chain-4", inverter_chain(tech, 4),
        "in", Transition.RISE, "out", Transition.RISE, slope, 30e-9))

    out.append(_scenario(
        "inv-chain-4-fo4", inverter_chain(tech, 4, fanout=4),
        "in", Transition.RISE, "out", Transition.RISE, slope, 60e-9))

    out.append(_scenario(
        "nand2", nand_gate(tech, 2), "a0", Transition.RISE,
        "out", Transition.FALL, slope, 25e-9, static_high=["a1"]))

    out.append(_scenario(
        "nor2", nor_gate(tech, 2), "a0", Transition.RISE,
        "out", Transition.FALL, slope, 25e-9, static_low=["a1"]))

    out.append(_scenario(
        "pass-chain-4", pass_chain(tech, 4), "in", Transition.FALL,
        "out", Transition.RISE, slope, 80e-9, static_high=["en"]))

    out.append(_scenario(
        "pass-chain-8", pass_chain(tech, 8), "in", Transition.FALL,
        "out", Transition.RISE, slope, 150e-9, static_high=["en"]))

    mux = mux_tree(tech, select_bits=1)
    out.append(_scenario(
        "tgate-mux", mux, "d0", Transition.RISE,
        "out", Transition.RISE, slope, 40e-9,
        static_low=["s0"], static_high=["s0n", "d1"],
        notes="transmission-gate mux, data propagates through"))

    bus = precharged_bus(tech, drivers=2)
    out.append(_scenario(
        "bus-discharge", bus, "en0", Transition.RISE,
        "bus", Transition.FALL, slope, 50e-9,
        static_high=["d0", "phi"], static_low=["d1", "en1"],
        initial_conditions={"bus": tech.vdd},
        notes="pMOS-precharged 400fF bus"))

    out.append(_scenario(
        "xor", xor_gate(tech), "a", Transition.RISE,
        "out", Transition.RISE, slope, 50e-9, static_low=["b"]))
    return out
