"""Engineering-unit helpers.

Circuit people write ``2.5k``, ``10u``, ``0.05p``; this module converts such
strings to floats and formats floats back into engineering notation.  All
internal quantities in :mod:`repro` are plain SI floats (ohms, farads,
seconds, volts, metres); these helpers only live at the I/O boundary
(netlist parsers, reports).
"""

from __future__ import annotations

from .errors import ParseError

#: SPICE-style scale suffixes, longest first so ``meg`` wins over ``m``.
_SUFFIXES = [
    ("meg", 1e6),
    ("mil", 25.4e-6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_FORMAT_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    # SPICE tradition: "M" means milli, so a megaunit must be spelled out.
    (1e6, "meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_value(text: str) -> float:
    """Parse a SPICE-style number such as ``4.7k``, ``100n`` or ``1e-9``.

    Trailing unit letters after the scale suffix are ignored, as in SPICE
    (``10pF`` == ``10p``).  Raises :class:`~repro.errors.ParseError` on
    malformed input.
    """
    token = text.strip().lower()
    if not token:
        raise ParseError("empty numeric value")
    # Split the leading numeric part from any suffix.
    end = 0
    seen_digit = False
    while end < len(token):
        ch = token[end]
        if ch.isdigit():
            seen_digit = True
            end += 1
        elif ch in "+-.":
            end += 1
        elif ch == "e" and seen_digit and end + 1 < len(token) and (
            token[end + 1].isdigit() or token[end + 1] in "+-"
        ):
            end += 1
        else:
            break
    number, suffix = token[:end], token[end:]
    if not number or not seen_digit:
        raise ParseError(f"malformed numeric value {text!r}")
    try:
        base = float(number)
    except ValueError as exc:
        raise ParseError(f"malformed numeric value {text!r}") from exc
    if not suffix:
        return base
    for name, scale in _SUFFIXES:
        if suffix.startswith(name):
            # Anything after the scale must be unit letters ("pF", "kohm"),
            # never digits ("1k2" is not a number in this dialect).
            trailing = suffix[len(name):]
            if trailing and not trailing.isalpha():
                raise ParseError(f"malformed numeric value {text!r}")
            return base * scale
    # Unknown suffix letters are unit names ("v", "ohm", "hz"): scale of 1.
    if suffix.isalpha():
        return base
    raise ParseError(f"malformed numeric value {text!r}")


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* in engineering notation: ``format_value(2.2e-12, 'F')``
    returns ``'2.2pF'``.
    """
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    # Smaller than atto: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"
