"""Waveforms and the measurements the paper's evaluation needs.

A :class:`Waveform` is a sampled voltage-vs-time trace with linear
interpolation between samples.  The measurement helpers implement the
standard definitions:

* **delay** — time between the 50% crossing of an input edge and the 50%
  crossing of the resulting output edge;
* **transition time** — the 10%–90% (configurable) crossing interval,
  rescaled to the full swing.  The rescaled number is the "slope" the slope
  model propagates: a linear ramp of transition time ``t`` takes exactly
  ``t`` to traverse the full swing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import MeasurementError
from ..tech import Transition


@dataclass(frozen=True)
class Waveform:
    """A sampled signal.  ``times`` must be strictly increasing."""

    times: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)
        if times.ndim != 1 or times.shape != values.shape:
            raise MeasurementError("waveform arrays must be 1-D and equal length")
        if len(times) < 2:
            raise MeasurementError("waveform needs at least two samples")
        if not np.all(np.diff(times) > 0):
            raise MeasurementError("waveform times must be strictly increasing")

    # -- basic access -----------------------------------------------------

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_stop(self) -> float:
        return float(self.times[-1])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value; clamped outside the time range."""
        return float(np.interp(t, self.times, self.values))

    def final_value(self) -> float:
        return float(self.values[-1])

    def initial_value(self) -> float:
        return float(self.values[0])

    def window(self, t0: float, t1: float) -> "Waveform":
        """The sub-waveform on [t0, t1], with interpolated end samples."""
        if not (self.t_start <= t0 < t1 <= self.t_stop):
            raise MeasurementError(
                f"window [{t0:g}, {t1:g}] outside waveform span "
                f"[{self.t_start:g}, {self.t_stop:g}]"
            )
        mask = (self.times > t0) & (self.times < t1)
        times = np.concatenate(([t0], self.times[mask], [t1]))
        values = np.concatenate((
            [self.value_at(t0)], self.values[mask], [self.value_at(t1)]))
        return Waveform(times, values, name=self.name)

    # -- crossings ----------------------------------------------------------

    def crossings(self, threshold: float,
                  direction: Optional[Transition] = None) -> List[float]:
        """All times where the waveform crosses *threshold*, linearly
        interpolated.  *direction* restricts to rising or falling crossings.
        """
        v = self.values
        t = self.times
        out: List[float] = []
        below = v[:-1] < threshold
        above = v[1:] >= threshold
        rising = np.nonzero(below & above)[0]
        falling = np.nonzero(~below & ~above)[0]  # v[i] >= thr > v[i+1]
        candidates = []
        if direction in (None, Transition.RISE):
            candidates.extend((i, Transition.RISE) for i in rising)
        if direction in (None, Transition.FALL):
            candidates.extend((i, Transition.FALL) for i in falling)
        for i, _ in sorted(candidates):
            v0, v1 = v[i], v[i + 1]
            if v1 == v0:
                out.append(float(t[i]))
            else:
                frac = (threshold - v0) / (v1 - v0)
                out.append(float(t[i] + frac * (t[i + 1] - t[i])))
        return sorted(out)

    def first_crossing(self, threshold: float,
                       direction: Optional[Transition] = None,
                       after: float = -np.inf) -> float:
        """The first crossing at or after *after*; raises if none."""
        for time in self.crossings(threshold, direction):
            if time >= after:
                return time
        kind = direction.value if direction else "any"
        raise MeasurementError(
            f"waveform {self.name or '?'}: no {kind} crossing of "
            f"{threshold:g}V after t={after:g}s"
        )

    def last_crossing(self, threshold: float,
                      direction: Optional[Transition] = None) -> float:
        times = self.crossings(threshold, direction)
        if not times:
            kind = direction.value if direction else "any"
            raise MeasurementError(
                f"waveform {self.name or '?'}: no {kind} crossing of "
                f"{threshold:g}V"
            )
        return times[-1]

    # -- standard measurements ---------------------------------------------

    def transition_time(self, swing_low: float, swing_high: float,
                        direction: Transition, after: float = -np.inf,
                        low_frac: float = 0.1, high_frac: float = 0.9) -> float:
        """Full-swing-equivalent transition time of the first *direction*
        edge after *after*.

        Measures the ``low_frac``→``high_frac`` crossing interval and divides
        by ``high_frac - low_frac`` so a perfect ramp reports its true
        duration.
        """
        span = swing_high - swing_low
        if span <= 0:
            raise MeasurementError("swing_high must exceed swing_low")
        lo = swing_low + low_frac * span
        hi = swing_low + high_frac * span
        if direction is Transition.RISE:
            t_first = self.first_crossing(lo, Transition.RISE, after)
            t_second = self.first_crossing(hi, Transition.RISE, t_first)
        else:
            t_first = self.first_crossing(hi, Transition.FALL, after)
            t_second = self.first_crossing(lo, Transition.FALL, t_first)
        return (t_second - t_first) / (high_frac - low_frac)

    def settles_to(self, target: float, tolerance: float) -> bool:
        """True when the final value is within *tolerance* of *target*."""
        return abs(self.final_value() - target) <= tolerance


def delay_between(input_wf: Waveform, output_wf: Waveform, vdd: float,
                  input_edge: Transition, output_edge: Transition,
                  threshold_frac: float = 0.5,
                  after: float = -np.inf) -> float:
    """50%-to-50% propagation delay from an input edge to the output edge it
    causes.  The output crossing is searched *from the input crossing
    backwards by one input transition* so that negative delays (possible with
    skewed thresholds and slow inputs) are still found."""
    threshold = threshold_frac * vdd
    t_in = input_wf.first_crossing(threshold, input_edge, after)
    # Allow the output to have switched slightly before the input midpoint.
    search_from = max(input_wf.t_start, t_in - (t_in - input_wf.t_start))
    t_out = output_wf.first_crossing(threshold, output_edge, search_from)
    return t_out - t_in


def ramp_waveform(t_start: float, duration: float, v_from: float, v_to: float,
                  t_stop: float, name: str = "ramp") -> Waveform:
    """A piecewise-linear ramp waveform (useful in tests and fitting)."""
    if duration <= 0:
        times = [min(t_start - 1e-15, 0.0), t_start, t_start + 1e-15, t_stop]
        values = [v_from, v_from, v_to, v_to]
        return Waveform(np.array(times), np.array(values), name=name)
    times = [0.0, t_start, t_start + duration, t_stop]
    values = [v_from, v_from, v_to, v_to]
    if t_start == 0.0:
        times = times[1:]
        values = values[1:]
    return Waveform(np.array(times), np.array(values), name=name)


def sample_uniform(times: Sequence[float], values: Sequence[float],
                   name: str = "") -> Waveform:
    """Convenience constructor from Python sequences."""
    return Waveform(np.asarray(times, dtype=float),
                    np.asarray(values, dtype=float), name=name)
