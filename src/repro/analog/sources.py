"""Drive waveforms for externally driven nodes.

Every primary input of a simulation is driven by a :class:`DriveWaveform`:
an object that returns the forced voltage at any time and exposes its
*breakpoints* (times where the waveform has corners) so the transient
engine can land timesteps exactly on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

from ..errors import SimulationError
from ..netlist.spice_format import StimulusSpec


class DriveWaveform:
    """Interface: a forced node voltage as a function of time."""

    def voltage(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self) -> Tuple[float, ...]:
        """Times at which the waveform's derivative is discontinuous."""
        return ()


@dataclass(frozen=True)
class DC(DriveWaveform):
    """A constant level."""

    value: float

    def voltage(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class Ramp(DriveWaveform):
    """A single linear edge from *v_from* to *v_to*.

    ``duration == 0`` is accepted and treated as an ideal step at
    ``t_start``.
    """

    v_from: float
    v_to: float
    t_start: float = 0.0
    duration: float = 0.0

    def voltage(self, t: float) -> float:
        if t <= self.t_start:
            return self.v_from
        if self.duration <= 0 or t >= self.t_start + self.duration:
            return self.v_to
        frac = (t - self.t_start) / self.duration
        return self.v_from + frac * (self.v_to - self.v_from)

    def breakpoints(self) -> Tuple[float, ...]:
        if self.duration <= 0:
            return (self.t_start,)
        return (self.t_start, self.t_start + self.duration)


@dataclass(frozen=True)
class Pulse(DriveWaveform):
    """SPICE PULSE: v1 → v2 with delay, rise, fall, width and period.

    A period of 0 (or None) gives a single pulse.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 0.0
    fall: float = 0.0
    width: float = 0.0
    period: float = 0.0

    def _phase(self, t: float) -> float:
        local = t - self.delay
        if local < 0:
            return -1.0
        if self.period > 0:
            return local % self.period
        return local

    def voltage(self, t: float) -> float:
        local = self._phase(t)
        if local < 0:
            return self.v1
        if local < self.rise:
            if self.rise <= 0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v2
        local -= self.width
        if local < self.fall:
            if self.fall <= 0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * local / self.fall
        return self.v1

    def breakpoints(self) -> Tuple[float, ...]:
        corners = [self.delay,
                   self.delay + self.rise,
                   self.delay + self.rise + self.width,
                   self.delay + self.rise + self.width + self.fall]
        if self.period > 0:
            expanded = []
            for cycle in range(16):  # enough periods for any test window
                expanded.extend(c + cycle * self.period for c in corners)
            corners = expanded
        return tuple(corners)


@dataclass(frozen=True)
class PWL(DriveWaveform):
    """Piecewise-linear waveform from ``(time, voltage)`` points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise SimulationError("PWL needs at least one point")
        previous = -float("inf")
        for time, _ in self.points:
            if time <= previous:
                raise SimulationError("PWL times must be strictly increasing")
            previous = time

    def voltage(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if t <= t1:
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return points[-1][1]

    def breakpoints(self) -> Tuple[float, ...]:
        return tuple(t for t, _ in self.points)


AnyDrive = Union[DriveWaveform, float, int]


def as_drive(value: AnyDrive) -> DriveWaveform:
    """Coerce a plain number to a DC drive."""
    if isinstance(value, DriveWaveform):
        return value
    if isinstance(value, (int, float)):
        return DC(float(value))
    raise SimulationError(f"cannot interpret {value!r} as a drive waveform")


def from_spec(spec: StimulusSpec) -> DriveWaveform:
    """Build a drive waveform from a parsed SPICE stimulus spec."""
    if spec.kind == "dc":
        return DC(spec.values[0])
    if spec.kind == "pulse":
        padded = list(spec.values) + [0.0] * (7 - len(spec.values))
        if len(spec.values) < 2:
            raise SimulationError("PULSE needs at least v1 and v2")
        v1, v2, delay, rise, fall, width, period = padded[:7]
        return Pulse(v1=v1, v2=v2, delay=delay, rise=rise, fall=fall,
                     width=width, period=period)
    if spec.kind == "pwl":
        values = spec.values
        if len(values) < 2 or len(values) % 2:
            raise SimulationError("PWL needs an even number of values")
        points = tuple(zip(values[0::2], values[1::2]))
        return PWL(points=points)
    raise SimulationError(f"unknown stimulus kind {spec.kind!r}")


def step_up(vdd: float, at: float = 0.0) -> Ramp:
    """Ideal 0 → Vdd step."""
    return Ramp(v_from=0.0, v_to=vdd, t_start=at, duration=0.0)


def step_down(vdd: float, at: float = 0.0) -> Ramp:
    """Ideal Vdd → 0 step."""
    return Ramp(v_from=vdd, v_to=0.0, t_start=at, duration=0.0)


def edge(vdd: float, rising: bool, at: float = 0.0,
         transition_time: float = 0.0) -> Ramp:
    """A single edge with the given full-swing transition time."""
    if rising:
        return Ramp(0.0, vdd, t_start=at, duration=transition_time)
    return Ramp(vdd, 0.0, t_start=at, duration=transition_time)
