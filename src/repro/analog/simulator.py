"""High-level analog simulation API.

This is the "SPICE" of the reproduction: the accuracy reference every
switch-level delay model is judged against (see DESIGN.md for the
substitution rationale).  Typical use::

    from repro.analog import simulate, sources

    result = simulate(
        network,
        drives={"a": sources.edge(vdd=5.0, rising=True, at=1e-9,
                                  transition_time=0.5e-9)},
        t_stop=20e-9,
    )
    out = result.waveform("y")
    delay = delay_between(result.waveform("a"), out, vdd=5.0,
                          input_edge=Transition.RISE,
                          output_edge=Transition.FALL)
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..netlist import Network
from .mna import AnalogProblem
from .sources import AnyDrive
from .dc import solve_dc
from .transient import TransientResult, simulate_transient


def simulate(network: Network, drives: Mapping[str, AnyDrive], t_stop: float,
             steps: int = 2000,
             initial_conditions: Optional[Mapping[str, float]] = None,
             use_ic_only: bool = False,
             method: str = "trap",
             gmin: float = 1e-12) -> TransientResult:
    """Run a transient analysis of *network*.

    Parameters
    ----------
    drives:
        Node → drive waveform (or plain voltage for DC).  All primary
        inputs of the network must appear; the rails are implicit.
    t_stop:
        End time of the analysis (seconds).
    steps:
        Nominal number of uniform timesteps (source corners are added).
    initial_conditions:
        Node → voltage overrides applied after (or instead of, with
        ``use_ic_only``) the initial operating point.
    """
    problem = AnalogProblem(network, drives, gmin=gmin)
    return simulate_transient(problem, t_stop, steps=steps,
                              initial_conditions=initial_conditions,
                              use_ic_only=use_ic_only, method=method)


def operating_point(network: Network, drives: Mapping[str, AnyDrive],
                    initial_guess: Optional[Mapping[str, float]] = None,
                    gmin: float = 1e-12):
    """DC node voltages with all drives evaluated at t=0."""
    problem = AnalogProblem(network, drives, gmin=gmin)
    return solve_dc(problem, t=0.0, initial_guess=initial_guess)
