"""Transient analysis.

A fixed-grid integrator with source breakpoints folded into the grid and
automatic sub-stepping on Newton failures.  Capacitors use companion models:

* **backward Euler** — ``i = (C/h)(v1 - v0)``; L-stable, used for the first
  step after every waveform corner;
* **trapezoidal** — ``i1 = (2C/h)(v1 - v0) - i0``; second-order accurate,
  used everywhere else (the SPICE default).

The step count defaults to ~2000 points over the run, which resolves the
nanosecond-scale edges of the paper's circuits to a few picoseconds after
interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import ConvergenceError, SimulationError
from .dc import solve_dc
from .mna import AnalogProblem
from .waveform import Waveform


@dataclass
class TransientResult:
    """All node waveforms of one transient run."""

    problem: AnalogProblem
    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def waveform(self, node: str) -> Waveform:
        from ..netlist import canonical_name
        name = canonical_name(node)
        try:
            return Waveform(self.times, self.voltages[name], name=name)
        except KeyError:
            raise SimulationError(f"no waveform recorded for {node!r}") from None

    @property
    def node_names(self) -> List[str]:
        return list(self.voltages)

    def final_voltages(self) -> Dict[str, float]:
        return {name: float(v[-1]) for name, v in self.voltages.items()}


def _time_grid(t_stop: float, steps: int, breakpoints: List[float]) -> np.ndarray:
    grid = set(np.linspace(0.0, t_stop, steps + 1).tolist())
    epsilon = t_stop * 1e-12
    for b in breakpoints:
        if 0.0 < b < t_stop:
            grid.add(b)
            grid.add(min(b + max(t_stop / (steps * 50), epsilon), t_stop))
    return np.array(sorted(grid))


def simulate_transient(problem: AnalogProblem, t_stop: float,
                       steps: int = 2000,
                       initial_conditions: Optional[Mapping[str, float]] = None,
                       use_ic_only: bool = False,
                       method: str = "trap",
                       abstol: float = 5e-5) -> TransientResult:
    """Integrate *problem* from 0 to *t_stop*.

    ``initial_conditions`` seeds (or, with ``use_ic_only=True``, entirely
    replaces) the DC operating point at t=0 — essential for charge-storage
    nodes whose starting voltage is history, not statics.
    """
    if t_stop <= 0:
        raise SimulationError("t_stop must be positive")
    if method not in ("trap", "be"):
        raise SimulationError(f"unknown integration method {method!r}")

    if use_ic_only:
        x = np.zeros(problem.size)
        start = dict(initial_conditions or {})
        for i, name in enumerate(problem.unknowns):
            x[i] = start.get(name, 0.0)
    else:
        op = solve_dc(problem, t=0.0, initial_guess=initial_conditions,
                      abstol=abstol)
        if initial_conditions:
            op.update(initial_conditions)
        x = np.array([op[name] for name in problem.unknowns])

    grid = _time_grid(t_stop, steps, problem.breakpoints())
    breakpoint_set = set(problem.breakpoints())

    n_caps = len(problem.capacitors)
    cap_currents = np.zeros(n_caps)  # trapezoidal history
    cap_volts = np.array([
        problem.voltage(c.node_a, x, 0.0) - problem.voltage(c.node_b, x, 0.0)
        for c in problem.capacitors
    ])

    times: List[float] = [0.0]
    history: List[np.ndarray] = [x.copy()]
    driven_history: Dict[str, List[float]] = {
        name: [problem.drive_voltage(name, 0.0)] for name in problem.drives
    }

    force_be = True  # first step from the (possibly inconsistent) IC
    t = 0.0
    for t_next in grid[1:]:
        x, cap_currents, cap_volts = _advance(
            problem, x, cap_currents, cap_volts, t, t_next,
            method="be" if (force_be or method == "be") else "trap",
            abstol=abstol,
        )
        force_be = t_next in breakpoint_set
        t = t_next
        times.append(t)
        history.append(x.copy())
        for name in problem.drives:
            driven_history[name].append(problem.drive_voltage(name, t))

    time_array = np.array(times)
    voltages: Dict[str, np.ndarray] = {}
    stacked = np.vstack(history) if problem.size else np.zeros((len(times), 0))
    for i, name in enumerate(problem.unknowns):
        voltages[name] = stacked[:, i]
    for name, values in driven_history.items():
        voltages[name] = np.array(values)
    return TransientResult(problem=problem, times=time_array, voltages=voltages)


def _advance(problem: AnalogProblem, x: np.ndarray, cap_currents: np.ndarray,
             cap_volts: np.ndarray, t0: float, t1: float, method: str,
             abstol: float, depth: int = 0):
    """One (possibly recursively halved) integration step t0 → t1."""
    h = t1 - t0
    if h <= 0:
        raise SimulationError(f"non-positive step from {t0:g} to {t1:g}")

    cap_terms = []
    for cap, i_prev, v_prev in zip(problem.capacitors, cap_currents, cap_volts):
        if method == "trap" and depth == 0:
            g_eq = 2.0 * cap.capacitance / h
            i_eq = g_eq * v_prev + i_prev
        else:  # backward Euler (also used for halved rescue steps)
            g_eq = cap.capacitance / h
            i_eq = g_eq * v_prev
        cap_terms.append((g_eq, i_eq))

    try:
        new_x = problem.newton_solve(x, t1, cap_terms, abstol=abstol)
    except SimulationError as exc:
        if depth >= 12:
            raise ConvergenceError(
                f"transient step failed after {depth} halvings: {exc}",
                time=t1,
            ) from exc
        t_mid = 0.5 * (t0 + t1)
        x_mid, i_mid, v_mid = _advance(problem, x, cap_currents, cap_volts,
                                       t0, t_mid, "be", abstol, depth + 1)
        return _advance(problem, x_mid, i_mid, v_mid, t_mid, t1, "be",
                        abstol, depth + 1)

    new_volts = np.array([
        problem.voltage(c.node_a, new_x, t1) - problem.voltage(c.node_b, new_x, t1)
        for c in problem.capacitors
    ])
    if method == "trap" and depth == 0:
        new_currents = np.array([
            (2.0 * c.capacitance / h) * (v1 - v0) - i0
            for c, v1, v0, i0 in zip(problem.capacitors, new_volts,
                                     cap_volts, cap_currents)
        ])
    else:
        new_currents = np.array([
            (c.capacitance / h) * (v1 - v0)
            for c, v1, v0 in zip(problem.capacitors, new_volts, cap_volts)
        ])
    return new_x, new_currents, new_volts
