"""Analog reference simulator (MNA + level-1 MOS + trapezoidal transient)."""

from . import mosfet, sources
from .mna import AnalogProblem
from .dc import solve_dc
from .simulator import operating_point, simulate
from .transient import TransientResult, simulate_transient
from .waveform import Waveform, delay_between, ramp_waveform, sample_uniform

__all__ = [
    "mosfet",
    "sources",
    "AnalogProblem",
    "solve_dc",
    "operating_point",
    "simulate",
    "TransientResult",
    "simulate_transient",
    "Waveform",
    "delay_between",
    "ramp_waveform",
    "sample_uniform",
]
