"""DC operating-point analysis.

Finds the static solution of an :class:`~repro.analog.mna.AnalogProblem`
with all capacitors open.  Plain Newton from a midpoint guess handles most
digital circuits; when it stalls, *gmin stepping* (solving a sequence of
progressively less-leaky problems, warm-starting each from the last) almost
always rescues it — the same strategy SPICE uses.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import ConvergenceError, SimulationError
from .mna import AnalogProblem

#: gmin ladder used when the direct solve fails (S to ground per node).
GMIN_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, 1e-12)


def solve_dc(problem: AnalogProblem, t: float = 0.0,
             initial_guess: Optional[Mapping[str, float]] = None,
             abstol: float = 5e-5) -> Dict[str, float]:
    """Operating point at time *t* (drives evaluated at that instant).

    Returns a complete node→voltage map including driven nodes.  An
    *initial_guess* maps node names to starting voltages; unspecified
    unknowns start at half the supply.
    """
    x0 = np.full(problem.size, 0.5 * problem.tech.vdd)
    if initial_guess:
        for name, value in initial_guess.items():
            index = problem.index_of(name)
            if index is not None:
                x0[index] = value

    x = _solve_with_fallback(problem, x0, t, abstol)
    result = {name: float(x[i]) for i, name in enumerate(problem.unknowns)}
    for name in problem.drives:
        result[name] = problem.drive_voltage(name, t)
    return result


def _solve_with_fallback(problem: AnalogProblem, x0: np.ndarray, t: float,
                         abstol: float) -> np.ndarray:
    try:
        return problem.newton_solve(x0, t, cap_terms=None, abstol=abstol,
                                    max_iterations=300)
    except SimulationError:
        pass

    # gmin stepping: temporarily raise the leak conductance, then relax it.
    saved_gmin = problem.gmin
    x = x0
    try:
        for gmin in GMIN_LADDER:
            problem.gmin = max(gmin, saved_gmin)
            try:
                x = problem.newton_solve(x, t, cap_terms=None, abstol=abstol,
                                         max_iterations=400, damping=0.5)
            except SimulationError as exc:
                raise ConvergenceError(
                    f"DC operating point failed at gmin={gmin:g}: {exc}",
                    time=t,
                ) from exc
        return x
    finally:
        problem.gmin = saved_gmin
