"""Shichman-Hodges (SPICE level-1) MOSFET evaluation.

The reference simulator needs, for each device and each Newton iteration,
the channel current and its partial derivatives with respect to the three
terminal voltages.  This module evaluates the classic level-1 equations
with:

* automatic source/drain swapping (the channel is symmetric),
* p-channel handling by sign reflection,
* optional body effect (``gamma``) with the bulk at the appropriate rail,
* channel-length modulation (``lambda``).

Currents follow the convention: :attr:`MOSOperatingPoint.current` is the
current flowing **into the drain terminal and out of the source terminal**
as the terminals are named in the netlist.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tech import DeviceKind, DeviceParams


@dataclass(frozen=True)
class MOSOperatingPoint:
    """Linearized device state at one Newton iterate.

    ``current`` is I(drain→channel→source); the ``g_*`` entries are the
    partial derivatives of that current with respect to the *netlist*
    terminal voltages (gate, source, drain).
    """

    current: float
    g_gate: float
    g_source: float
    g_drain: float
    region: str  # "cutoff" | "linear" | "saturation"


def _level1_ntype(beta: float, vt: float, lam: float, vgs: float,
                  vds: float):
    """Level-1 equations for an n-type device with ``vds >= 0``.

    Returns ``(ids, gm, gds, region)`` where ``gm = dI/dVgs`` and
    ``gds = dI/dVds``.
    """
    vov = vgs - vt
    if vov <= 0.0:
        return 0.0, 0.0, 0.0, "cutoff"
    clm = 1.0 + lam * vds
    if vds < vov:
        ids = beta * (vov * vds - 0.5 * vds * vds) * clm
        gm = beta * vds * clm
        gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * lam
        return ids, gm, gds, "linear"
    ids = 0.5 * beta * vov * vov * clm
    gm = beta * vov * clm
    gds = 0.5 * beta * vov * vov * lam
    return ids, gm, gds, "saturation"


def _threshold(params: DeviceParams, vsb: float) -> float:
    """Threshold voltage including body effect (n-type frame)."""
    if params.gamma <= 0.0:
        return params.vt0
    phi = max(params.phi, 1e-3)
    vsb_eff = max(vsb, -phi + 1e-6)
    return params.vt0 + params.gamma * (
        math.sqrt(phi + vsb_eff) - math.sqrt(phi))


def evaluate(params: DeviceParams, width: float, length: float,
             v_gate: float, v_source: float, v_drain: float,
             v_bulk: float = 0.0) -> MOSOperatingPoint:
    """Evaluate a device at the given absolute terminal voltages."""
    beta = params.beta(width, length)
    p_type = params.kind is DeviceKind.PMOS
    sign = -1.0 if p_type else 1.0

    # Reflect p-channel devices into the n-type frame.
    vg = sign * v_gate
    vs = sign * v_source
    vd = sign * v_drain
    vb = sign * v_bulk
    vt0 = sign * params.vt0  # PMOS vt0 is negative; reflected it is positive
    # Depletion devices keep their (negative) threshold as-is in n-frame.
    if params.kind is DeviceKind.NMOS_DEP:
        vt0 = params.vt0

    swapped = vd < vs
    if swapped:
        vs, vd = vd, vs

    vsb = vs - vb
    vt = vt0 if params.gamma <= 0 else (
        vt0 + _threshold(params, vsb) - params.vt0)

    ids, gm, gds, region = _level1_ntype(beta, vt, params.lam, vg - vs, vd - vs)

    # Partial derivatives in the (possibly swapped) n-frame:
    #   I = I(vgs, vds);   dI/dvg = gm;  dI/dvd = gds;  dI/dvs = -gm - gds.
    d_vg = gm
    d_vd = gds
    d_vs = -gm - gds

    if swapped:
        # Current direction flips back to the netlist drain->source sense,
        # and the roles of the two channel terminals exchange.
        ids = -ids
        d_vg = -d_vg
        d_vs, d_vd = -d_vd, -d_vs

    if p_type:
        # Undo the voltage reflection: I_netlist = -I_frame(v -> -v), so the
        # current negates and each derivative picks up two sign flips
        # (one from the current, one from the chain rule), i.e. stays put —
        # except the current itself.
        ids = -ids

    return MOSOperatingPoint(
        current=ids,
        g_gate=d_vg,
        g_source=d_vs,
        g_drain=d_vd,
        region=region,
    )


def conducts(params: DeviceParams, v_gate: float, v_source: float,
             v_drain: float) -> bool:
    """Rough static conduction test (used by validation heuristics)."""
    op = evaluate(params, 1e-6, 1e-6, v_gate, v_source, v_drain)
    if op.region != "cutoff":
        return True
    # A device exactly at VDS = 0 reports zero current regardless of the
    # gate; probe its small-signal conductance instead.
    probe = evaluate(params, 1e-6, 1e-6, v_gate, v_source, v_drain + 1e-3)
    return probe.region != "cutoff"
