"""Nodal-analysis assembly for the reference simulator.

The simulator uses *reduced* nodal analysis: externally driven nodes (the
rails and any node with a drive waveform) are eliminated rather than given
MNA branch rows — their voltages are known functions of time, so their
terms move to the right-hand side.  This keeps the system matrix small,
symmetric in structure, and never singular because of source loops.

:class:`AnalogProblem` owns the node indexing and the per-iteration stamp
loop; the integrators in :mod:`repro.analog.transient` and
:mod:`repro.analog.dc` drive it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..netlist import GND, VDD, Network
from ..tech import DeviceKind
from . import mosfet
from .sources import DC, AnyDrive, DriveWaveform, as_drive


@dataclass(frozen=True)
class _Device:
    """A MOSFET prepared for stamping: terminal indexes resolved."""

    params: object
    width: float
    length: float
    gate: str
    source: str
    drain: str
    bulk: str


@dataclass(frozen=True)
class _TwoTerminalCap:
    node_a: str
    node_b: str  # may be GND for grounded caps
    capacitance: float


class AnalogProblem:
    """A network plus drive waveforms, ready for numerical analysis."""

    def __init__(self, network: Network, drives: Mapping[str, AnyDrive],
                 gmin: float = 1e-12):
        self.network = network
        self.tech = network.tech
        self.gmin = gmin

        self.drives: Dict[str, DriveWaveform] = {
            VDD: DC(self.tech.vdd),
            GND: DC(0.0),
        }
        for name, drive in drives.items():
            node = network.node(name)
            if node.is_supply:
                raise SimulationError(
                    f"cannot attach a drive to supply rail {node.name!r}"
                )
            self.drives[node.name] = as_drive(drive)

        undriven_inputs = [
            n.name for n in network.inputs() if n.name not in self.drives
        ]
        if undriven_inputs:
            raise SimulationError(
                "primary inputs without drive waveforms: "
                + ", ".join(sorted(undriven_inputs))
            )

        #: Unknown nodes, in deterministic order.
        self.unknowns: List[str] = [
            n.name for n in network.nodes if n.name not in self.drives
        ]
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.unknowns)
        }
        self.size = len(self.unknowns)

        # Prepared element lists -------------------------------------------
        self._resistors: List[Tuple[str, str, float]] = [
            (r.node_a, r.node_b, 1.0 / r.resistance)
            for r in network.resistors
        ]
        self.capacitors: List[_TwoTerminalCap] = []
        for name in self.unknowns:
            grounded = network.node_capacitance(name)
            if grounded > 0:
                self.capacitors.append(_TwoTerminalCap(name, GND, grounded))
        for cap in network.capacitors:
            self.capacitors.append(
                _TwoTerminalCap(cap.node_a, cap.node_b, cap.capacitance))

        self._devices: List[_Device] = []
        for device in network.transistors:
            bulk = VDD if device.kind is DeviceKind.PMOS else GND
            self._devices.append(_Device(
                params=self.tech.params(device.kind),
                width=device.width,
                length=device.length,
                gate=device.gate,
                source=device.source,
                drain=device.drain,
                bulk=bulk,
            ))

    # ------------------------------------------------------------------

    def index_of(self, node: str) -> Optional[int]:
        """Unknown-vector index of a node, or None when it is driven."""
        return self._index.get(node)

    def drive_voltage(self, node: str, t: float) -> float:
        return self.drives[node].voltage(t)

    def voltage(self, node: str, x: np.ndarray, t: float) -> float:
        index = self._index.get(node)
        if index is not None:
            return float(x[index])
        return self.drives[node].voltage(t)

    def breakpoints(self) -> List[float]:
        times = set()
        for drive in self.drives.values():
            times.update(drive.breakpoints())
        return sorted(times)

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------

    def _stamp_conductance(self, matrix: np.ndarray, rhs: np.ndarray,
                           node_a: str, node_b: str, g: float,
                           x: np.ndarray, t: float) -> None:
        """Stamp a linear conductance between two nodes, handling driven
        terminals by moving their (known) voltage to the RHS."""
        ia = self._index.get(node_a)
        ib = self._index.get(node_b)
        if ia is not None:
            matrix[ia, ia] += g
            if ib is not None:
                matrix[ia, ib] -= g
            else:
                rhs[ia] += g * self.drive_voltage(node_b, t)
        if ib is not None:
            matrix[ib, ib] += g
            if ia is not None:
                matrix[ib, ia] -= g
            else:
                rhs[ib] += g * self.drive_voltage(node_a, t)

    def _stamp_current(self, rhs: np.ndarray, node: str, value: float) -> None:
        """Stamp a current *into* a node."""
        index = self._index.get(node)
        if index is not None:
            rhs[index] += value

    def assemble(self, x: np.ndarray, t: float,
                 cap_terms: Optional[Sequence[Tuple[float, float]]] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Build the linearized system ``G v = b`` at iterate *x*, time *t*.

        *cap_terms* supplies, per entry of :attr:`capacitors`, the companion
        model ``(g_eq, i_eq)``: a conductance between the cap's terminals and
        a current ``i_eq`` injected into ``node_a`` (and drawn from
        ``node_b``).  ``None`` means DC analysis: capacitors are open.
        """
        n = self.size
        matrix = np.zeros((n, n))
        rhs = np.zeros(n)

        # gmin keeps otherwise-floating nodes (charge storage) well posed.
        for i in range(n):
            matrix[i, i] += self.gmin

        for node_a, node_b, g in self._resistors:
            self._stamp_conductance(matrix, rhs, node_a, node_b, g, x, t)

        if cap_terms is not None:
            if len(cap_terms) != len(self.capacitors):
                raise SimulationError("cap_terms length mismatch")
            for cap, (g_eq, i_eq) in zip(self.capacitors, cap_terms):
                if g_eq:
                    self._stamp_conductance(matrix, rhs, cap.node_a,
                                            cap.node_b, g_eq, x, t)
                if i_eq:
                    self._stamp_current(rhs, cap.node_a, i_eq)
                    self._stamp_current(rhs, cap.node_b, -i_eq)

        for dev in self._devices:
            vg = self.voltage(dev.gate, x, t)
            vs = self.voltage(dev.source, x, t)
            vd = self.voltage(dev.drain, x, t)
            vb = self.voltage(dev.bulk, x, t)
            op = mosfet.evaluate(dev.params, dev.width, dev.length,
                                 vg, vs, vd, vb)
            # Newton companion: current into drain linearized around
            # (vg, vs, vd).  Row contributions:
            #   drain:  +I;   source: -I
            # with I ~ I0 + gg*(Vg - vg) + gs*(Vs - vs) + gd*(Vd - vd).
            terms = ((dev.gate, op.g_gate), (dev.source, op.g_source),
                     (dev.drain, op.g_drain))
            i_const = op.current - (op.g_gate * vg + op.g_source * vs +
                                    op.g_drain * vd)
            i_drain = self._index.get(dev.drain)
            i_source = self._index.get(dev.source)
            for sign, row in ((+1.0, i_drain), (-1.0, i_source)):
                if row is None:
                    continue
                rhs[row] -= sign * i_const
                for node, g in terms:
                    col = self._index.get(node)
                    if col is not None:
                        matrix[row, col] += sign * g
                    else:
                        rhs[row] -= sign * g * self.drive_voltage(node, t)
        return matrix, rhs

    # ------------------------------------------------------------------
    # Newton iteration shared by DC and transient analyses
    # ------------------------------------------------------------------

    def newton_solve(self, x0: np.ndarray, t: float,
                     cap_terms: Optional[Sequence[Tuple[float, float]]],
                     abstol: float = 5e-5, max_iterations: int = 80,
                     damping: float = 1.0) -> np.ndarray:
        """Solve the nonlinear system by damped Newton iteration.

        Returns the converged unknown vector; raises
        :class:`~repro.errors.SimulationError` (wrapped by callers into
        :class:`~repro.errors.ConvergenceError` with time context) when the
        iteration stalls.
        """
        x = x0.copy()
        if self.size == 0:
            return x
        for _ in range(max_iterations):
            matrix, rhs = self.assemble(x, t, cap_terms)
            try:
                new_x = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(f"singular system: {exc}") from exc
            delta = new_x - x
            worst = float(np.max(np.abs(delta)))
            # Per-component voltage limiting: each node moves at most
            # `damping` volts per iterate (a global scale would let one
            # wild node stall every other node's progress).
            np.clip(delta, -damping, damping, out=delta)
            x = x + delta
            if worst < abstol:
                return x
        raise SimulationError(
            f"Newton iteration did not converge (|dV|={worst:.3g}V)"
        )
