"""Process-pool executor with crash detection, retry, and serial fallback.

The contract of :meth:`ParallelExecutor.run_chunks` is *never a wrong or
missing answer*: a dispatch either returns the results of every task or
raises the genuine analysis error the serial engine would have raised.
The failure ladder is

1. dispatch the tasks to the pool and gather with an optional deadline;
2. on a pool failure (worker crashed, chunk timed out, pool broken), log
   a fallback event, tear the pool down, rebuild it, and retry the whole
   dispatch — up to ``max_retries`` times;
3. when retries are exhausted, run every task in the parent process via
   the caller-supplied serial function, which shares none of the pool
   machinery and therefore cannot fail the same way.

Analysis errors (:class:`~repro.errors.ReproError` raised inside a
worker) are *not* retried: they are deterministic properties of the
input, so they propagate immediately, exactly as the serial engine would
raise them.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..perf import DispatchStat, ParallelPerf
from ..trace.spans import span as _trace_span
from .worker import AnalyzerSpec, initialize_worker

#: worker slot used in stats for chunks the parent ran itself
PARENT_SLOT = -1


@dataclass
class ParallelConfig:
    """Tunables of the parallel subsystem.

    ``chunk_timeout`` bounds one whole dispatch (a level front or a
    sweep scatter), not a single task; ``None`` disables the deadline.
    ``start_method`` ``None`` picks ``fork`` where the platform offers it
    (cheapest: the worker inherits the parent's imports) and ``spawn``
    otherwise.  ``min_front`` is the smallest level front worth
    dispatching — below it the parent evaluates inline, since pool IPC
    costs more than a couple of stage evaluations.
    """

    jobs: int = 1
    chunk_timeout: Optional[float] = None
    max_retries: int = 1
    start_method: Optional[str] = None
    min_front: int = 8

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


class PoolFailure(Exception):
    """A dispatch failed for pool reasons (crash, timeout, broken pipe)."""


class ParallelExecutor:
    """A reusable worker pool bound to one :class:`AnalyzerSpec`.

    Create once per parallel run (or share across runs on the same
    analyzer configuration), dispatch any number of chunk fan-outs
    through :meth:`run_chunks`, and :meth:`shutdown` when done — the
    class is also a context manager.
    """

    def __init__(self, spec: AnalyzerSpec, config: ParallelConfig):
        self.config = config
        self._payload = spec.to_payload()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._slot_of_pid: Dict[int, int] = {}
        self.pools_built = 0

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context(
                self.config.resolved_start_method())
            self._pool = ProcessPoolExecutor(
                max_workers=max(self.config.jobs, 1),
                mp_context=context,
                initializer=initialize_worker,
                initargs=(self._payload,),
            )
            self.pools_built += 1
        return self._pool

    def _abandon_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def slot_of(self, pid: int) -> int:
        """Small stable per-pool worker number for a worker pid."""
        slot = self._slot_of_pid.get(pid)
        if slot is None:
            slot = len(self._slot_of_pid)
            self._slot_of_pid[pid] = slot
        return slot

    # -- dispatch -----------------------------------------------------------

    def _gather(self, fn: Callable, tasks: Sequence[Tuple]) -> List[Tuple]:
        pool = self._ensure_pool()
        deadline = (time.monotonic() + self.config.chunk_timeout
                    if self.config.chunk_timeout else None)
        futures = [pool.submit(fn, task) for task in tasks]
        results: List[Tuple] = []
        try:
            for future in futures:
                remaining = None
                if deadline is not None:
                    remaining = max(deadline - time.monotonic(), 0.0)
                results.append(future.result(timeout=remaining))
        except ReproError:
            # Deterministic analysis error: the serial engine would raise
            # the same thing, so surface it instead of retrying.
            raise
        except FutureTimeout:
            self._abandon_pool()
            raise PoolFailure(
                f"chunk dispatch exceeded {self.config.chunk_timeout:g}s "
                "timeout") from None
        except BrokenProcessPool:
            self._abandon_pool()
            raise PoolFailure("a worker process died mid-dispatch") from None
        except Exception as exc:
            self._abandon_pool()
            raise PoolFailure(f"pool dispatch failed: {exc}") from exc
        return results

    def run_chunks(self, fn: Callable, tasks: Sequence[Tuple], label: str,
                   perf: ParallelPerf,
                   serial_fn: Callable[[Tuple], Tuple]) -> List[Tuple]:
        """Run *tasks* through *fn* in the pool, falling back as needed.

        Returns one result per task, in task order.  *serial_fn* must
        accept a task tuple and return the same shape *fn* would.
        """
        if not tasks:
            return []
        attempts = max(self.config.max_retries, 0) + 1
        for attempt in range(attempts):
            try:
                with _trace_span("dispatch", label=label, tasks=len(tasks)):
                    return self._gather(fn, tasks)
            except PoolFailure as exc:
                remaining = attempts - attempt - 1
                if remaining > 0:
                    perf.retries += 1
                    perf.record_fallback(
                        f"{label}: {exc}; rebuilding pool "
                        f"(retry {attempt + 1}/{attempts - 1})")
                else:
                    perf.record_fallback(
                        f"{label}: {exc}; retries exhausted, "
                        "running chunks serially in the parent")
        return [serial_fn(task) for task in tasks]


def record_dispatch(perf: ParallelPerf, executor: Optional[ParallelExecutor],
                    label: str, results: Sequence[Tuple],
                    items: Sequence[int],
                    weights: Sequence[float]) -> DispatchStat:
    """Fold one fan-out's results into *perf* as a :class:`DispatchStat`.

    Each result tuple starts with ``(chunk_id, pid, seconds, ...)``;
    ``pid`` ``PARENT_SLOT`` marks a chunk the parent ran after fallback.
    """
    dispatch = perf.dispatch(label)
    for result, count, weight in zip(results, items, weights):
        _chunk_id, pid, seconds = result[0], result[1], result[2]
        slot = (PARENT_SLOT if pid == PARENT_SLOT
                else (executor.slot_of(pid) if executor else pid))
        perf.record_chunk(dispatch, slot, count, weight, seconds)
    return dispatch
