"""Worker-process execution subsystem (DESIGN.md §5c).

Two sharding strategies behind one executor API:

* **level-front stage sharding** (:func:`parallel_analyze`) — a single
  analysis, each topological level of the stage graph split into
  cost-balanced chunks evaluated by a process pool, merged
  deterministically; bit-identical to the serial engine on acyclic
  graphs, recorded serial fallback on feedback graphs.
* **scenario sharding** (:func:`run_vectors_sharded`, used by
  :func:`repro.batch.run_sweep` with ``jobs > 1``) — sweep vectors fan
  out in contiguous blocks to workers that each own a warm analyzer
  clone, so the batch engine's cache amortization survives per worker.

Both ride :class:`ParallelExecutor`: crash/timeout detection, pool
rebuild with retry, and graceful serial fallback in the parent — never a
wrong or missing answer — with everything observable through
:class:`~repro.perf.ParallelPerf`.
"""

from .chunking import (balanced_chunks, chunk_weight, contiguous_chunks,
                       delta_aware_chunks, structural_weight)
from .executor import (PARENT_SLOT, ParallelConfig, ParallelExecutor,
                       PoolFailure)
from .level_front import parallel_analyze
from .scenario import run_vectors_sharded
from .worker import (CRASH_FILE_ENV, HANG_FILE_ENV, AnalyzerSpec,
                     decode_arrivals, encode_arrivals)

__all__ = [
    "AnalyzerSpec",
    "CRASH_FILE_ENV",
    "HANG_FILE_ENV",
    "PARENT_SLOT",
    "ParallelConfig",
    "ParallelExecutor",
    "PoolFailure",
    "balanced_chunks",
    "chunk_weight",
    "contiguous_chunks",
    "decode_arrivals",
    "delta_aware_chunks",
    "encode_arrivals",
    "parallel_analyze",
    "run_vectors_sharded",
    "structural_weight",
]
