"""Worker-process side of the parallel subsystem.

A worker never re-parses anything from disk: the parent ships one
:class:`AnalyzerSpec` — the pickled ingredients of its own
:class:`~repro.core.timing.TimingAnalyzer` (network object, model,
sensitization states, slope quantum) — through the pool initializer, and
the worker rebuilds a private analyzer from it once.  That analyzer then
lives for the pool's lifetime, so its caches (path enumerations, RC
trees, the delay-model memo) stay warm across every task the worker
handles — the per-worker version of the PR-2 cache amortization.

Task functions are module-level (picklable by reference):

* :func:`run_stage_chunk` — evaluate a chunk of a level front against a
  snapshot of upstream arrivals and return the best candidates;
* :func:`run_vector_chunk` — analyze a block of sweep vectors and return
  their full arrival maps.

Fault injection for the robustness tests rides on two environment
variables (see :func:`maybe_inject_fault`): a crash file whose atomic
removal makes exactly one worker die mid-task, and a hang file whose
contents make a worker sleep past the parent's chunk timeout.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.models import DelayModel
from ..core.timing import TimingAnalyzer
from ..core.timing.analyzer import Arrival, Event
from ..core.timing.paths import StateMap
from ..netlist import Network
from ..perf import PerfCounters, StageCostModel
from ..tech import Transition
from ..trace import spans as _trace

#: tests point this at a file; the worker that wins its removal dies
CRASH_FILE_ENV = "REPRO_PARALLEL_CRASH_FILE"
#: tests point this at a file containing a float: seconds to stall
HANG_FILE_ENV = "REPRO_PARALLEL_HANG_FILE"

_TRANSITIONS: Tuple[Transition, ...] = tuple(Transition)

#: a (node, transition index, time, slope) quadruple — the wire format of
#: one upstream arrival shipped to a stage-chunk task
ArrivalWire = Tuple[str, int, float, float]


@dataclass
class AnalyzerSpec:
    """Everything needed to rebuild a :class:`TimingAnalyzer` elsewhere.

    The spec (and therefore the :class:`~repro.netlist.Network` and the
    model) must pickle cleanly — ``tests/test_parallel_worker.py`` keeps
    that guarantee pinned down, since the whole subsystem rides on it.
    """

    network: Network
    model: DelayModel
    states: Optional[StateMap] = None
    initial_states: Optional[StateMap] = None
    incremental: bool = True
    slope_quantum: float = 0.0
    kernel: str = "numpy"
    #: the parent's compiled tree templates (template keys are
    #: deterministic across processes, so workers skip recompilation)
    templates: Optional[Dict] = None
    #: parent had a tracer active → workers record spans and ship them
    #: back on the task result tuples (DESIGN.md §7)
    tracing: bool = False

    @classmethod
    def from_analyzer(cls, analyzer: TimingAnalyzer) -> "AnalyzerSpec":
        return cls(network=analyzer.network, model=analyzer.model,
                   states=analyzer.states,
                   initial_states=analyzer.initial_states,
                   incremental=analyzer.incremental,
                   slope_quantum=analyzer.slope_quantum,
                   kernel=analyzer.kernel,
                   templates=analyzer.export_templates() or None,
                   tracing=_trace.current() is not None)

    def build(self) -> TimingAnalyzer:
        analyzer = TimingAnalyzer(self.network, model=self.model,
                                  states=self.states,
                                  initial_states=self.initial_states,
                                  incremental=self.incremental,
                                  slope_quantum=self.slope_quantum,
                                  kernel=self.kernel)
        if self.templates:
            analyzer.seed_templates(self.templates)
        return analyzer

    def to_payload(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "AnalyzerSpec":
        spec = pickle.loads(payload)
        if not isinstance(spec, cls):
            raise TypeError(f"worker payload is not an AnalyzerSpec: "
                            f"{type(spec).__name__}")
        return spec


@dataclass
class _WorkerState:
    analyzer: TimingAnalyzer
    tasks_handled: int = 0


_STATE: Optional[_WorkerState] = None


def initialize_worker(payload: bytes) -> None:
    """Pool initializer: rebuild the analyzer from the shipped spec.

    When the spec says the parent is tracing, a local
    :class:`~repro.trace.spans.Tracer` is installed in this process;
    task functions drain its buffer into their result tuples so the
    parent can merge worker spans onto the shared timeline
    (``time.perf_counter`` is CLOCK_MONOTONIC system-wide on Linux).
    """
    global _STATE
    spec = AnalyzerSpec.from_payload(payload)
    # Always replace any tracer inherited through fork: its buffer holds
    # the parent's pre-fork records, which must not ship back (the parent
    # already has them) — the worker starts from a clean buffer.
    _trace.uninstall()
    if spec.tracing:
        _trace.install(_trace.Tracer())
    _STATE = _WorkerState(analyzer=spec.build())


def _drain_spans() -> Tuple:
    """This worker's recorded spans since the last task, wire-ready."""
    tracer = _trace.current()
    if tracer is None:
        return ()
    return tuple(tracer.drain())


def _state() -> _WorkerState:
    if _STATE is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker used before initialize_worker()")
    return _STATE


def maybe_inject_fault() -> None:
    """Honour the fault-injection environment hooks (tests only).

    The crash file is removed *before* dying so exactly one worker (the
    one that wins the atomic ``os.remove``) crashes per file — the retry
    that follows finds the file gone and succeeds.
    """
    crash = os.environ.get(CRASH_FILE_ENV)
    if crash:
        try:
            os.remove(crash)
        except OSError:
            pass
        else:
            os._exit(43)
    hang = os.environ.get(HANG_FILE_ENV)
    if hang and os.path.exists(hang):
        try:
            with open(hang) as handle:
                seconds = float(handle.read().strip() or "1.0")
        except (OSError, ValueError):
            seconds = 1.0
        time.sleep(min(seconds, 30.0))


# ---------------------------------------------------------------------------
# Wire helpers
# ---------------------------------------------------------------------------

def encode_arrivals(arrivals: Mapping[Event, Arrival],
                    nodes: frozenset) -> Tuple[ArrivalWire, ...]:
    """Pack the (time, slope) of every arrival on *nodes* for shipping."""
    wire: List[ArrivalWire] = []
    for event, arrival in arrivals.items():
        if event.node in nodes:
            wire.append((event.node, _TRANSITIONS.index(event.transition),
                         arrival.time, arrival.slope))
    return tuple(wire)


def decode_arrivals(wire: Tuple[ArrivalWire, ...]) -> Dict[Event, Arrival]:
    """Rebuild a minimal arrival map (time + slope are all candidates
    read from upstream events; causal links stay in the parent)."""
    return {
        Event(node, _TRANSITIONS[transition]): Arrival(time=time, slope=slope)
        for node, transition, time, slope in wire
    }


# ---------------------------------------------------------------------------
# Task functions (must stay module-level: they are pickled by reference)
# ---------------------------------------------------------------------------

def run_stage_chunk(args: Tuple) -> Tuple:
    """Evaluate one chunk of a level front.

    ``args``  = (chunk_id, stage_indexes, arrival_wire)
    returns   = (chunk_id, pid, seconds, stage_results, stage_costs,
                 counters, spans) where ``stage_results`` is a tuple of
    ``(stage_index, ((event, arrival, rank), ...))`` in ascending stage
    order — the deterministic merge order the parent commits in — and
    ``spans`` is this worker's drained span buffer (empty when the
    parent is not tracing).
    """
    maybe_inject_fault()
    chunk_id, stage_indexes, arrival_wire = args
    state = _state()
    analyzer = state.analyzer
    state.tasks_handled += 1
    arrivals = decode_arrivals(arrival_wire)
    stages = analyzer.graph.stages

    perf = PerfCounters()
    costs = StageCostModel()
    saved_costs = analyzer.stage_costs
    analyzer.stage_costs = costs
    analyzer._run_perf = perf
    start = time.perf_counter()
    try:
        with _trace.span("stage_chunk", chunk=chunk_id,
                         stages=len(stage_indexes)):
            stage_results = tuple(
                (index,
                 tuple(analyzer.stage_candidates(stages[index], arrivals)))
                for index in sorted(stage_indexes)
            )
    finally:
        analyzer._run_perf = None
        analyzer.stage_costs = saved_costs
    elapsed = time.perf_counter() - start
    saved_costs.merge(costs)
    return (chunk_id, os.getpid(), elapsed, stage_results,
            dict(costs.observed), dict(perf.counters), _drain_spans())


def run_vector_chunk(args: Tuple) -> Tuple:
    """Analyze one block of sweep vectors against the worker's analyzer.

    ``args``  = (chunk_id, ((position, label, inputs), ...)[, delta])
    returns   = (chunk_id, pid, seconds, results, spans) where each
    result is ``(position, arrivals, counters, timers)`` — the full
    arrival map, so the parent can reconstruct a complete
    :class:`TimingResult` (critical paths included) in the original
    vector order — and ``spans`` is this worker's drained span buffer
    (empty when the parent is not tracing).

    The optional ``delta`` flag (absent in pre-delta task tuples) routes
    vectors through dirty-cone re-analysis.  Each chunk cold-starts: the
    worker analyzer's carryover is cleared first, so the chunk's first
    vector analyzes fully and results never depend on which chunks a
    worker happened to handle before.
    """
    maybe_inject_fault()
    chunk_id, vectors = args[0], args[1]
    delta = bool(args[2]) if len(args) > 2 else False
    state = _state()
    analyzer = state.analyzer
    state.tasks_handled += 1

    results = []
    start = time.perf_counter()
    with _trace.span("vector_chunk", chunk=chunk_id, vectors=len(vectors),
                     delta=delta):
        if delta:
            analyzer.clear_carryover()
        for position, _label, inputs in vectors:
            outcome = (analyzer.analyze_delta(inputs) if delta
                       else analyzer.analyze(inputs))
            perf = outcome.perf
            results.append((position, outcome.arrivals,
                            dict(perf.counters) if perf else {},
                            dict(perf.timers) if perf else {}))
    elapsed = time.perf_counter() - start
    return (chunk_id, os.getpid(), elapsed, tuple(results), _drain_spans())
