"""Level-front stage sharding: one analysis, many worker processes.

On an acyclic stage graph, the serial engine's priority worklist visits
stages level by level — a stage pops only after every predecessor has
settled, so its single full evaluation is final.  That ordering exposes
the parallelism exploited here: all stages of one topological level are
independent (their triggers live in strictly lower levels, already
settled), so each *level front* can be partitioned into chunks and
evaluated concurrently, with a deterministic merge between fronts.

Bit-identity with the serial engine follows from three facts:

1. every candidate a stage can produce depends only on arrivals at its
   trigger nodes, which the front's snapshot already holds at their final
   values (acyclicity);
2. the per-target best is chosen with the same ``_beats`` tie-break the
   serial engine uses, which is evaluation-order independent;
3. each internal node belongs to exactly one stage, so merging chunk
   results in ascending stage order commits each (node, transition)
   exactly once — there is nothing order-dependent left to race on.

Graphs with feedback (latches, bootstrap stages) have no level structure
to shard, so they take the recorded serial fallback: same answer, with
the event visible in :class:`~repro.perf.ParallelPerf`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.models import DelayModel
from ..core.timing import TimingAnalyzer, TimingResult
from ..core.timing.analyzer import Arrival, Event, InputSpec, _PRIMARY_RANK
from ..core.timing.analyzer import _TRANSITIONS
from ..core.timing.paths import StateMap
from ..errors import TimingError
from ..netlist import Network
from ..perf import ParallelPerf, PerfCounters
from ..trace import spans as _trace
from .chunking import balanced_chunks, chunk_weight, structural_weight
from .executor import (PARENT_SLOT, ParallelConfig, ParallelExecutor,
                       record_dispatch)
from .worker import AnalyzerSpec, encode_arrivals, run_stage_chunk

InputMap = Mapping[str, Union[InputSpec, float]]


def _stage_trigger_nodes(stage) -> frozenset:
    """The nodes whose arrivals can produce candidates in *stage*."""
    return stage.gate_inputs | stage.boundary_nodes


def _serial_stage_chunk(analyzer: TimingAnalyzer,
                        arrivals: Dict[Event, Arrival]):
    """Parent-process stand-in for :func:`~.worker.run_stage_chunk`."""
    import time as _time

    def run(task: Tuple) -> Tuple:
        chunk_id, stage_indexes, _wire = task
        stages = analyzer.graph.stages
        start = _time.perf_counter()
        stage_results = tuple(
            (index,
             tuple(analyzer.stage_candidates(stages[index], arrivals)))
            for index in sorted(stage_indexes)
        )
        elapsed = _time.perf_counter() - start
        return (chunk_id, PARENT_SLOT, elapsed, stage_results, {}, {}, ())

    return run


def parallel_analyze(network: Network, inputs: InputMap, *,
                     jobs: int = 1,
                     model: Optional[DelayModel] = None,
                     states: Optional[StateMap] = None,
                     initial_states: Optional[StateMap] = None,
                     slope_quantum: float = 0.0,
                     kernel: str = "numpy",
                     analyzer: Optional[TimingAnalyzer] = None,
                     config: Optional[ParallelConfig] = None,
                     executor: Optional[ParallelExecutor] = None
                     ) -> TimingResult:
    """Analyze one scenario with level-front stage sharding.

    With ``jobs <= 1`` (or a feedback stage graph, where fronts don't
    exist) this delegates to the serial engine — the result still carries
    a :class:`ParallelPerf` so callers see which strategy actually ran.
    Pass an *executor* to reuse a warm pool across calls; otherwise one
    is created and torn down per call.
    """
    if analyzer is None:
        analyzer = TimingAnalyzer(network, model=model, states=states,
                                  initial_states=initial_states,
                                  slope_quantum=slope_quantum,
                                  kernel=kernel)
    if config is None:
        config = ParallelConfig(jobs=jobs)
    else:
        config.jobs = jobs

    pperf = ParallelPerf(jobs=max(jobs, 1), strategy="level-front",
                         start_method=config.resolved_start_method())

    if jobs <= 1:
        pperf.strategy = "serial"
        pperf.start_method = ""
        result = analyzer.analyze(inputs)
        result.perf.parallel = pperf
        return result

    if analyzer.graph.has_feedback():
        pperf.record_fallback(
            "stage graph has feedback (latch or bootstrap loop): level "
            "fronts are undefined, running the serial engine")
        result = analyzer.analyze(inputs)
        result.perf.parallel = pperf
        return result

    if analyzer._run_perf is not None:
        raise TimingError(
            "parallel_analyze() re-entered: a TimingAnalyzer runs one "
            "scenario at a time")

    own_executor = executor is None
    if executor is None:
        executor = ParallelExecutor(AnalyzerSpec.from_analyzer(analyzer),
                                    config)

    perf = PerfCounters()
    analyzer._run_perf = perf
    try:
        with perf.timer("analyze"):
            arrivals = _propagate_fronts(analyzer, inputs, config, executor,
                                         perf, pperf)
    finally:
        analyzer._run_perf = None
        analyzer.perf.merge(perf)
        if own_executor:
            executor.shutdown()

    perf.parallel = pperf
    return TimingResult(network=analyzer.network,
                        model_name=analyzer.model.name,
                        arrivals=arrivals, perf=perf)


def _propagate_fronts(analyzer: TimingAnalyzer, inputs: InputMap,
                      config: ParallelConfig, executor: ParallelExecutor,
                      perf: PerfCounters,
                      pperf: ParallelPerf) -> Dict[Event, Arrival]:
    stages = analyzer.graph.stages
    levels = analyzer.graph.levels()
    fronts: Dict[int, List[int]] = {}
    for index, level in levels.items():
        fronts.setdefault(level, []).append(index)

    arrivals: Dict[Event, Arrival] = {}
    ranks: Dict[Event, Tuple[int, int]] = {}
    normalized = analyzer._normalize_inputs(inputs)
    for name, spec in normalized.items():
        for transition in _TRANSITIONS:
            time = spec.arrival(transition)
            if time is None:
                continue
            event = Event(name, transition)
            arrivals[event] = Arrival(time=time, slope=spec.slope)
            ranks[event] = _PRIMARY_RANK

    serial_fn = _serial_stage_chunk(analyzer, arrivals)

    for level in sorted(fronts):
        # A stage only produces candidates if at least one trigger node
        # has an arrival — the same stages the serial worklist visits.
        front = [index for index in sorted(fronts[level])
                 if any(Event(node, t) in arrivals
                        for node in _stage_trigger_nodes(stages[index])
                        for t in _TRANSITIONS)]
        if not front:
            continue
        perf.incr("stage_visits", len(front))
        perf.incr("stage_full_evals", len(front))

        if len(front) < config.min_front:
            # Tiny front: pool IPC would dominate, evaluate inline.
            for index in front:
                for event, arrival, rank in analyzer.stage_candidates(
                        stages[index], arrivals):
                    analyzer._commit(event, arrival, rank, arrivals, ranks)
            continue

        weights = [analyzer.stage_costs.weight(
                       index, fallback=structural_weight(stages[index]))
                   for index in front]
        chunks = balanced_chunks(weights, config.jobs)
        tasks = []
        for chunk_id, chunk in enumerate(chunks):
            indexes = tuple(front[i] for i in chunk)
            needed = frozenset().union(
                *(_stage_trigger_nodes(stages[i]) for i in indexes))
            tasks.append((chunk_id, indexes,
                          encode_arrivals(arrivals, needed)))

        results = executor.run_chunks(
            run_stage_chunk, tasks, f"level {level}", pperf, serial_fn)
        record_dispatch(
            pperf, executor, f"level {level} ({len(front)} stages)",
            results,
            items=[len(task[1]) for task in tasks],
            weights=[chunk_weight(weights, chunk) for chunk in chunks])

        # Deterministic merge: ascending stage index, then the engine's
        # own tie-break (each internal node lives in exactly one stage,
        # so commits cannot conflict across chunks).
        tracer = _trace.current()
        merged: List[Tuple[int, Tuple]] = []
        for result in results:
            merged.extend(result[3])
            analyzer.stage_costs.merge_raw(result[4])
            counters = result[5]
            pperf.record_template_stats(counters)
            for name, value in counters.items():
                perf.incr(name, value)
            if tracer is not None and len(result) > 6:
                tracer.extend(result[6])
        merged.sort(key=lambda item: item[0])
        for _index, candidates in merged:
            for event, arrival, rank in candidates:
                analyzer._commit(event, arrival, rank, arrivals, ranks)

    return arrivals
