"""Cost-model-driven partitioning of work across worker processes.

Naive round-robin sharding of a level front is only balanced when every
stage costs the same to evaluate — and they don't: a stage's evaluation
cost is its path count times its trigger count, which spans orders of
magnitude between an inverter and a wide pass network.  The chunkers
here take explicit per-item weights (observed candidate counts from
:class:`~repro.perf.StageCostModel` when available, structural estimates
when cold) and pack items into near-equal-*cost* chunks.

Two shapes are provided:

* :func:`balanced_chunks` — LPT (longest-processing-time-first) greedy
  bin packing, the classic 4/3-approximation for makespan.  Used for
  level fronts, where items are independent and order-free.
* :func:`contiguous_chunks` — contiguous runs with near-equal weight.
  Used for scenario sweeps, where keeping a worker's vectors contiguous
  preserves the cache-warming order of the serial sweep.

Both are deterministic: identical inputs always produce identical
chunks, which the reproducibility guarantees of the parallel subsystem
rest on.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from ..netlist.stages import Stage


def structural_weight(stage: Stage) -> float:
    """Cold-start cost estimate of one stage's evaluation.

    Path enumeration cost grows with the channel graph size and the
    number of targets, so device count × internal-node count is a cheap
    monotone proxy (exact costs replace it after the first visit).
    """
    return float(max(len(stage.transistors), 1)
                 * max(len(stage.internal_nodes), 1))


def balanced_chunks(weights: Sequence[float], jobs: int) -> List[List[int]]:
    """Partition item indices into ≤ *jobs* chunks of near-equal weight.

    LPT greedy: place the heaviest remaining item on the lightest chunk,
    ties broken by item index and chunk number.  Returns non-empty chunks
    of ascending indices, ordered by chunk number — fully deterministic.
    """
    if jobs < 1:
        raise ValueError(f"need at least one chunk, got jobs={jobs}")
    count = len(weights)
    if count == 0:
        return []
    jobs = min(jobs, count)
    order = sorted(range(count), key=lambda i: (-float(weights[i]), i))
    loads = [(0.0, chunk) for chunk in range(jobs)]
    heapq.heapify(loads)
    assignment: List[List[int]] = [[] for _ in range(jobs)]
    for index in order:
        load, chunk = heapq.heappop(loads)
        assignment[chunk].append(index)
        heapq.heappush(loads, (load + float(weights[index]), chunk))
    for chunk in assignment:
        chunk.sort()
    return [chunk for chunk in assignment if chunk]


def contiguous_chunks(weights: Sequence[float],
                      jobs: int) -> List[Tuple[int, int]]:
    """Split ``range(len(weights))`` into ≤ *jobs* contiguous ``(lo, hi)``
    runs of near-equal weight (``hi`` exclusive), every run non-empty."""
    if jobs < 1:
        raise ValueError(f"need at least one chunk, got jobs={jobs}")
    count = len(weights)
    if count == 0:
        return []
    jobs = min(jobs, count)
    total = sum(float(w) for w in weights)
    target = total / jobs if total > 0 else 0.0
    chunks: List[Tuple[int, int]] = []
    start = 0
    acc = 0.0
    for index in range(count):
        acc += float(weights[index])
        remaining_items = count - index - 1
        remaining_chunks = jobs - len(chunks) - 1
        if (remaining_chunks > 0 and acc >= target
                and remaining_items >= remaining_chunks):
            chunks.append((start, index + 1))
            start = index + 1
            acc = 0.0
    chunks.append((start, count))
    return chunks


def delta_aware_chunks(boundary_deltas: Sequence[int],
                       jobs: int) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` spans whose cut points prefer high deltas.

    ``boundary_deltas[i]`` is the input Hamming delta between sweep
    vectors ``i-1`` and ``i`` (index 0 is the cold start).  A delta sweep
    pays a full cold analysis at the start of every chunk, so the cheap
    places to cut are exactly the high-delta boundaries — the worker
    would have re-evaluated most of the cone there anyway.  Each of the
    ``jobs-1`` cuts is chosen inside a small window around its
    equal-count position (keeping chunks near-balanced) as the boundary
    with the largest delta, ties broken by the earlier position — fully
    deterministic, and degenerating to :func:`contiguous_chunks` when
    every delta is equal.
    """
    if jobs < 1:
        raise ValueError(f"need at least one chunk, got jobs={jobs}")
    count = len(boundary_deltas)
    if count == 0:
        return []
    jobs = min(jobs, count)
    if jobs == 1:
        return [(0, count)]
    window = max(1, count // (4 * jobs))
    cuts: List[int] = []
    previous = 0
    for chunk in range(1, jobs):
        ideal = round(chunk * count / jobs)
        lo = max(previous + 1, ideal - window)
        hi = min(count - (jobs - chunk), ideal + window)
        if lo > hi:
            lo = hi = min(max(previous + 1, ideal), count - (jobs - chunk))
        cut = max(range(lo, hi + 1),
                  key=lambda i: (boundary_deltas[i], -abs(i - ideal), -i))
        cuts.append(cut)
        previous = cut
    edges = [0] + cuts + [count]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def chunk_weight(weights: Sequence[float], indices: Sequence[int]) -> float:
    return sum(float(weights[i]) for i in indices)
