"""Scenario sharding: many sweep vectors, one warm analyzer per worker.

The batch sweep's whole point (DESIGN.md §5b) is cache amortization:
one :class:`~repro.core.timing.TimingAnalyzer` analyzes every vector, so
path enumerations, RC trees, and the delay-model memo are paid once.
Scenario sharding preserves that per worker — each pool process rebuilds
the analyzer once (pool initializer) and then analyzes its whole block of
vectors against it, so a pool of *N* workers pays the warm-up *N* times
and everything after that is warm.

Vectors are split into *contiguous* blocks (not round-robin) so each
worker sees vectors in the same order the serial sweep would — the cache
warming pattern carries over — and every result returns tagged with its
original position, so the parent reassembles the exact serial ordering
regardless of which worker finished first.  This module deliberately
speaks plain ``(position, label, inputs)`` tuples so it does not import
:mod:`repro.batch` (which imports it).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.timing import TimingAnalyzer
from ..core.timing.analyzer import Arrival, Event
from ..perf import ParallelPerf
from ..trace import spans as _trace
from .chunking import contiguous_chunks, delta_aware_chunks
from .executor import (PARENT_SLOT, ParallelConfig, ParallelExecutor,
                       record_dispatch)
from .worker import AnalyzerSpec, run_vector_chunk

#: (position, label, input map) — one sweep vector, order-tagged
VectorItem = Tuple[int, str, Mapping]
#: (position, arrivals, counters, timers) — one analyzed vector
VectorOutcome = Tuple[int, Dict[Event, Arrival], Dict[str, int],
                      Dict[str, float]]


def _serial_vector_chunk(spec: AnalyzerSpec):
    """Parent-process stand-in for :func:`~.worker.run_vector_chunk`.

    The analyzer is built lazily — only a dispatch that exhausts its
    retries pays for it — and shared across every fallback task so the
    parent keeps the same warm-cache behaviour a worker would have had.
    """
    state: Dict[str, TimingAnalyzer] = {}

    def run(task: Tuple) -> Tuple:
        chunk_id, vectors = task[0], task[1]
        delta = bool(task[2]) if len(task) > 2 else False
        analyzer = state.get("analyzer")
        if analyzer is None:
            analyzer = state["analyzer"] = spec.build()
        results = []
        start = time.perf_counter()
        if delta:
            # same cold-start-per-chunk rule as the worker, so a retried
            # chunk is byte-identical however it ends up executed
            analyzer.clear_carryover()
        for position, _label, inputs in vectors:
            outcome = (analyzer.analyze_delta(inputs) if delta
                       else analyzer.analyze(inputs))
            outcome_perf = outcome.perf
            results.append((position, outcome.arrivals,
                            dict(outcome_perf.counters) if outcome_perf
                            else {},
                            dict(outcome_perf.timers) if outcome_perf
                            else {}))
        elapsed = time.perf_counter() - start
        return (chunk_id, PARENT_SLOT, elapsed, tuple(results), ())

    return run


def run_vectors_sharded(spec: AnalyzerSpec, items: Sequence[VectorItem],
                        config: ParallelConfig,
                        executor: Optional[ParallelExecutor] = None,
                        delta: bool = False,
                        boundary_deltas: Optional[Sequence[int]] = None
                        ) -> Tuple[List[VectorOutcome], ParallelPerf]:
    """Analyze *items* across the pool; results come back position-sorted.

    Returns one :data:`VectorOutcome` per item in ascending original
    position — byte-identical input to the serial sweep's report path —
    plus the run's :class:`ParallelPerf`.

    ``delta=True`` routes each chunk through dirty-cone re-analysis
    (chunk-local: every chunk cold-starts its first vector, so results
    stay independent of the sharding).  *boundary_deltas* — the input
    Hamming delta between consecutive items, when the caller knows it —
    steers the chunk boundaries toward high-delta cut points via
    :func:`~repro.parallel.chunking.delta_aware_chunks`.
    """
    pperf = ParallelPerf(jobs=max(config.jobs, 1), strategy="scenario",
                         start_method=config.resolved_start_method())
    if not items:
        return [], pperf

    serial_fn = _serial_vector_chunk(spec)

    if config.jobs <= 1 or len(items) < 2:
        pperf.strategy = "serial"
        pperf.start_method = ""
        result = serial_fn((0, tuple(items), delta))
        dispatch = pperf.dispatch("sweep (serial)")
        pperf.record_chunk(dispatch, PARENT_SLOT, len(items),
                           float(len(items)), result[2])
        serial_outcomes = sorted(result[3], key=lambda r: r[0])
        for _position, _arrivals, counters, _timers in serial_outcomes:
            pperf.record_template_stats(counters)
        return serial_outcomes, pperf

    if delta and boundary_deltas is not None \
            and len(boundary_deltas) == len(items):
        spans = delta_aware_chunks(boundary_deltas, config.jobs)
    else:
        weights = [1.0] * len(items)
        spans = contiguous_chunks(weights, config.jobs)
    tasks = [(chunk_id, tuple(items[lo:hi]), delta)
             for chunk_id, (lo, hi) in enumerate(spans)]

    own_executor = executor is None
    if executor is None:
        executor = ParallelExecutor(spec, config)
    try:
        results = executor.run_chunks(
            run_vector_chunk, tasks,
            f"sweep scatter ({len(items)} vectors)", pperf, serial_fn)
    finally:
        if own_executor:
            executor.shutdown()

    record_dispatch(
        pperf, executor,
        f"sweep scatter ({len(items)} vectors, {len(tasks)} blocks)",
        results,
        items=[hi - lo for lo, hi in spans],
        weights=[float(hi - lo) for lo, hi in spans])

    tracer = _trace.current()
    outcomes: List[VectorOutcome] = []
    for result in results:
        outcomes.extend(result[3])
        if tracer is not None and len(result) > 4:
            tracer.extend(result[4])
    outcomes.sort(key=lambda r: r[0])
    for _position, _arrivals, counters, _timers in outcomes:
        pperf.record_template_stats(counters)
    return outcomes, pperf
