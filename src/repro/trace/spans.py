"""Hierarchical tracing spans for the timing engines.

The perf counters (:mod:`repro.perf`) say *how much* work each engine
did; this module says *where the wall-clock time went*.  A
:class:`Tracer` collects nested, low-overhead spans::

    from repro import trace

    tracer = trace.Tracer()
    with trace.activate(tracer):
        with trace.span("analyze", inputs=64):
            with trace.span("stage_eval", stage=3):
                ...

Every instrumented call site goes through the module-level
:func:`span` / :func:`instant` helpers, which read the process-global
active tracer.  When no tracer is active (the default), a call site
costs one global read, one ``None`` check, and a shared no-op context
manager — ``benchmarks/bench_trace_overhead.py`` keeps that under the
2 % budget on the rca32 analysis.  Spans ride the same run lifecycle as
:class:`~repro.perf.PerfCounters`: the analyzer opens its top-level span
where it creates the run's counters and closes it in the same ``finally``
that merges them, so a run that dies mid-analysis still leaves a
balanced, flushable span buffer.

Cross-process collection: worker processes (``repro.parallel``) install
their own tracer when the shipped :class:`~repro.parallel.AnalyzerSpec`
says tracing is on, :meth:`Tracer.drain` their buffer at the end of each
task, and return the records through the existing executor result
channel; the parent folds them in with :meth:`Tracer.extend`.  Records
carry the emitting pid, and ``time.perf_counter`` is CLOCK_MONOTONIC
system-wide on Linux, so parent and worker timestamps share one
timeline.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "activate",
    "current",
    "disabled_site_cost",
    "install",
    "instant",
    "span",
    "uninstall",
]


class SpanRecord(NamedTuple):
    """One finished span (or instant mark), ready for export.

    ``start`` is a raw ``time.perf_counter()`` timestamp in seconds;
    exporters normalize to the earliest record.  ``sid`` is unique per
    tracer and ``parent`` names the enclosing span's ``sid`` (``-1`` at
    top level), so aggregation can compute exact self times; ``(pid,
    sid)`` stays unique after cross-process merges.  ``phase`` follows
    the Chrome trace_event vocabulary: ``"X"`` complete span, ``"i"``
    instant.  NamedTuples pickle compactly, which is what lets worker
    buffers ride the executor result channel unchanged.
    """

    name: str
    start: float
    duration: float
    pid: int
    tid: int
    sid: int
    parent: int
    phase: str
    args: Optional[Dict[str, object]]


class _SpanScope:
    """Context manager of one open span.  :meth:`set` adds args that are
    only known mid-body (e.g. the delta engine's cone size)."""

    __slots__ = ("_tracer", "_name", "_args", "_start", "_sid", "_parent")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Optional[Dict[str, object]]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def set(self, **args: object) -> None:
        if self._args is None:
            self._args = {}
        self._args.update(args)

    def __enter__(self) -> "_SpanScope":
        tracer = self._tracer
        self._sid = tracer._next_sid()
        stack = tracer._stack
        self._parent = stack[-1] if stack else -1
        stack.append(self._sid)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self._sid:
            tracer._stack.pop()
        tracer.records.append(SpanRecord(
            name=self._name, start=self._start,
            duration=end - self._start, pid=os.getpid(),
            tid=tracer._tid(), sid=self._sid, parent=self._parent,
            phase="X", args=self._args))


class _NullScope:
    """Shared no-op scope returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def set(self, **args: object) -> None:
        pass

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        pass


#: the one instance every disabled call site shares (stateless)
NULL_SCOPE = _NullScope()


class Tracer:
    """Collects :class:`SpanRecord` objects for one traced run."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._sid = 0
        self._tids: Dict[int, int] = {}

    # -- identity -----------------------------------------------------------

    def _next_sid(self) -> int:
        self._sid += 1
        return self._sid

    def _tid(self) -> int:
        """Small stable per-tracer thread number (0 = first seen)."""
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
        return tid

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **args: object) -> _SpanScope:
        """Open a nested span; use as a context manager."""
        return _SpanScope(self, name, args or None)

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration mark (Chrome instant event)."""
        self.records.append(SpanRecord(
            name=name, start=time.perf_counter(), duration=0.0,
            pid=os.getpid(), tid=self._tid(), sid=self._next_sid(),
            parent=self._stack[-1] if self._stack else -1,
            phase="i", args=args or None))

    @property
    def open_spans(self) -> int:
        """Spans entered but not yet exited (0 = balanced buffer)."""
        return len(self._stack)

    # -- cross-process merge ------------------------------------------------

    def drain(self) -> List[SpanRecord]:
        """Take (and clear) the finished records — the worker side of the
        result-channel handoff.  Open spans stay open."""
        records = self.records
        self.records = []
        return records

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Fold records drained elsewhere (typically a worker) in."""
        self.records.extend(SpanRecord(*record) for record in records)


# ---------------------------------------------------------------------------
# The process-global active tracer
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def install(tracer: Optional[Tracer]) -> None:
    """Make *tracer* the process-global active tracer (``None`` disables).
    Prefer :func:`activate` where a scope is available."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    install(None)


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Activate *tracer* for the duration of the block (``None`` = no-op
    block, so callers can use one code path for both modes)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else previous
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **args: object):
    """Open a span on the active tracer, or a shared no-op scope.

    This is the instrumented-call-site entry point; its disabled cost is
    what the trace-overhead bench budgets.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SCOPE
    return tracer.span(name, **args)


def instant(name: str, **args: object) -> None:
    """Record an instant mark on the active tracer, if any."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)


def disabled_site_cost(iterations: int = 200_000) -> float:
    """Measured per-call cost of one *disabled* span site, in seconds.

    Times the exact pattern the hot paths execute when no tracer is
    active (``with span(...):`` hitting the shared null scope), so the
    overhead bench can turn a span count into a deterministic disabled-
    overhead estimate instead of gating on noisy wall-clock A/B runs.
    """
    assert _ACTIVE is None, "measure disabled cost with tracing off"
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            with span("overhead_probe", stage=0):
                pass
        best = min(best, time.perf_counter() - start)
    return best / iterations
