"""Trace smoke gate: a parallel traced sweep must produce a valid,
cross-process Chrome trace.

``make trace-smoke`` (and CI) runs this module.  It sweeps an 8-bit
ripple-carry adder across 16 Gray-ordered vectors with ``jobs=2`` under
an installed tracer, writes the merged trace to
``benchmarks/output/trace_smoke.json``, and then checks the properties
the observability subsystem promises (DESIGN.md §7):

* the file validates against the Chrome ``trace_event`` shape;
* spans arrived from at least two distinct worker processes in
  addition to the parent (cross-process collection works end to end);
* worker spans include the engine's nested taxonomy — ``analyze``
  roots with ``stage_eval`` and ``kernel_batch`` descendants — not
  just the chunk envelopes;
* every (pid, sid) pair is unique after the merge (no double-drained
  buffers, no fork-inherited parent records).

Exit status 0 on success; a failed property raises and exits nonzero.
"""

from __future__ import annotations

import pathlib
import sys

from ..batch import CartesianSweep, run_sweep
from ..circuits import adder_input_names, ripple_carry_adder
from ..core.models import characterize_technology
from ..tech import CMOS3
from . import export, spans

OUTPUT_FILE = (pathlib.Path(__file__).resolve().parents[3]
               / "benchmarks" / "output" / "trace_smoke.json")

BITS = 8
JOBS = 2
#: Axes toggled by the sweep; 4 binary axes -> 16 vectors, enough work
#: per chunk that both pool workers reliably pick up at least one.
AXES = ("a1", "b3", "a5", "b7")
EARLY = 0.0
LATE = 0.5e-9


def run_smoke(output: pathlib.Path = OUTPUT_FILE) -> int:
    tech = characterize_technology(CMOS3)
    network = ripple_carry_adder(tech, BITS)
    base = {name: EARLY for name in adder_input_names(BITS)}
    source = CartesianSweep(base=base,
                            axes={name: [EARLY, LATE] for name in AXES})

    tracer = spans.Tracer()
    with spans.activate(tracer):
        result = run_sweep(network, source, jobs=JOBS, order="gray")
    records = tracer.drain()

    output.parent.mkdir(parents=True, exist_ok=True)
    export.write_chrome_trace(records, str(output))
    export.validate_trace_file(output)

    parent_pid = {r.pid for r in records if r.name == "sweep"}
    worker_pids = {r.pid for r in records} - parent_pid
    worker_names = {r.name for r in records if r.pid in worker_pids}
    ids = [(r.pid, r.sid) for r in records]

    checks = [
        (len(result.outcomes) == 2 ** len(AXES),
         f"sweep covered {len(result.outcomes)} vectors"),
        (len(parent_pid) == 1, "exactly one parent pid owns the sweep span"),
        (len(worker_pids) >= 2,
         f"spans from >=2 worker processes (got {len(worker_pids)})"),
        ({"vector_chunk", "analyze", "stage_eval"} <= worker_names,
         "workers shipped nested analyze/stage_eval spans"),
        ("kernel_batch" in worker_names,
         "workers shipped kernel_batch spans"),
        (len(ids) == len(set(ids)), "all (pid, sid) pairs unique"),
    ]
    failed = [message for ok, message in checks if not ok]
    for ok, message in checks:
        print(f"  {'ok' if ok else 'FAIL'}  {message}")
    if failed:
        print(f"trace smoke: {len(failed)} check(s) failed", file=sys.stderr)
        return 1

    print(f"trace smoke: {len(records)} spans from "
          f"{len(worker_pids) + 1} processes -> {output}")
    print()
    print(export.format_trace_summary(records))
    return 0


def main() -> int:
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
