"""Cross-run bench trend tracking over the ``BENCH_*.json`` baselines.

Every perf bench writes its own ``benchmarks/BENCH_<name>.json`` with a
private schema; this module gives them one machine-readable trajectory:

* :func:`collect_metrics` flattens every numeric leaf of every
  ``BENCH_*.json`` in a directory into dotted keys prefixed with the
  bench name (``delta.delta.visit_ratio``, ``timing.circuits.rca32.
  analyzer_seconds``, …), skipping the per-file ``history`` ring buffers
  and host/timestamp metadata;
* :func:`record_entry` appends one ``{"timestamp", "metrics"}`` line to
  the append-only ``benchmarks/BENCH_history.jsonl`` (JSON Lines, one
  snapshot per line — trivially diffable and uploadable as a CI
  artifact);
* :func:`format_trend_report` renders the per-metric delta table the
  ``trend`` CLI subcommand prints: previous value, current value, and
  the relative change, with unchanged metrics folded away by default.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..errors import TraceError

__all__ = [
    "HISTORY_FILE",
    "TrendEntry",
    "collect_metrics",
    "flatten_numeric",
    "format_trend_report",
    "load_history",
    "record_entry",
]

#: default history file name, next to the BENCH_*.json baselines
HISTORY_FILE = "BENCH_history.jsonl"

#: top-level keys of a BENCH file that are not metrics
_SKIP_KEYS = frozenset({"history", "host", "updated", "timestamp"})

#: relative change below which a metric counts as unchanged
_QUIET_THRESHOLD = 0.005


def flatten_numeric(obj: object, prefix: str = "",
                    skip: frozenset = _SKIP_KEYS) -> Dict[str, float]:
    """Every numeric leaf of *obj* as ``{dotted.key: value}``.

    Booleans flatten to 0/1 (``identical`` flags are trend-worthy);
    lists are skipped — the only lists in the BENCH files are history
    ring buffers and host fields, which are not metrics.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not prefix and key in skip:
                continue
            dotted = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, dotted, skip))
    elif isinstance(obj, bool):
        out[prefix] = float(obj)
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def collect_metrics(bench_dir: Union[str, pathlib.Path]
                    ) -> Dict[str, float]:
    """Flatten every ``BENCH_*.json`` under *bench_dir* into one map.

    Keys are prefixed with the bench name (``BENCH_delta.json`` →
    ``delta.…``).  The history file itself is excluded.  Unreadable or
    malformed files raise :class:`TraceError` naming the file — a bench
    baseline that stops parsing is a bug worth failing on.
    """
    directory = pathlib.Path(bench_dir)
    if not directory.is_dir():
        raise TraceError(f"bench directory {directory} does not exist")
    metrics: Dict[str, float] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise TraceError(f"cannot parse {path}: {exc}") from exc
        name = path.stem[len("BENCH_"):]
        for key, value in flatten_numeric(payload).items():
            metrics[f"{name}.{key}"] = value
    return metrics


@dataclass(frozen=True)
class TrendEntry:
    """One recorded snapshot of the whole bench suite."""

    timestamp: str
    metrics: Dict[str, float]


def load_history(path: Union[str, pathlib.Path]) -> List[TrendEntry]:
    """Parse a ``BENCH_history.jsonl`` file (missing file = no history).

    An unreadable file or a malformed line raises :class:`TraceError`
    naming the path (and line), never a raw traceback.
    """
    history_path = pathlib.Path(path)
    if not history_path.exists():
        return []
    try:
        text = history_path.read_text()
    except OSError as exc:
        raise TraceError(
            f"cannot read history file {history_path}: {exc}") from exc
    entries: List[TrendEntry] = []
    for number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"{history_path}:{number}: bad history line: {exc}") from exc
        try:
            entries.append(TrendEntry(
                timestamp=str(payload.get("timestamp", "")),
                metrics={str(k): float(v)
                         for k, v in payload.get("metrics", {}).items()}))
        except (AttributeError, TypeError, ValueError) as exc:
            raise TraceError(
                f"{history_path}:{number}: bad history line: {exc}") from exc
    return entries


def record_entry(path: Union[str, pathlib.Path],
                 metrics: Dict[str, float],
                 timestamp: Optional[str] = None) -> TrendEntry:
    """Append one snapshot to the history file (created if missing)."""
    entry = TrendEntry(
        timestamp=timestamp or time.strftime("%Y-%m-%dT%H:%M:%S"),
        metrics=dict(metrics))
    line = json.dumps({"timestamp": entry.timestamp,
                       "metrics": entry.metrics}, sort_keys=True)
    try:
        with open(path, "a") as handle:
            handle.write(line + "\n")
    except OSError as exc:
        raise TraceError(f"cannot write history file {path}: {exc}") from exc
    return entry


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def format_trend_report(previous: Optional[TrendEntry],
                        current: TrendEntry,
                        show_all: bool = False) -> str:
    """The ``trend`` table: per-metric delta of *current* vs *previous*.

    With no *previous* entry this is the baseline report (metric count
    only, plus the full table when *show_all*).  Otherwise metrics whose
    relative change is below 0.5 % are summarized in one line unless
    *show_all* — wall-clock jitter would drown the signal otherwise.
    """
    lines: List[str] = []
    if previous is None:
        lines.append(f"bench trend: baseline recorded "
                     f"({len(current.metrics)} metric(s), "
                     f"{current.timestamp})")
        if show_all:
            lines.append(f"{'metric':<52} {'value':>14}")
            for name in sorted(current.metrics):
                lines.append(f"{name:<52} "
                             f"{_format_value(current.metrics[name]):>14}")
        return "\n".join(lines)

    names = sorted(set(previous.metrics) | set(current.metrics))
    rows: List[str] = []
    quiet = 0
    header = (f"{'metric':<52} {'previous':>14} {'current':>14} "
              f"{'delta':>9}")
    for name in names:
        before = previous.metrics.get(name)
        after = current.metrics.get(name)
        if before is None:
            rows.append(f"{name:<52} {'-':>14} "
                        f"{_format_value(after):>14} {'new':>9}")
            continue
        if after is None:
            rows.append(f"{name:<52} {_format_value(before):>14} "
                        f"{'-':>14} {'gone':>9}")
            continue
        if before == after:
            change = 0.0
        elif before == 0.0:
            change = float("inf")
        else:
            change = (after - before) / abs(before)
        if abs(change) < _QUIET_THRESHOLD and not show_all:
            quiet += 1
            continue
        delta = "+inf" if change == float("inf") else f"{change:+.1%}"
        rows.append(f"{name:<52} {_format_value(before):>14} "
                    f"{_format_value(after):>14} {delta:>9}")
    lines.append(f"bench trend: {previous.timestamp} → {current.timestamp} "
                 f"({len(names)} metric(s))")
    lines.append(header)
    lines.append("-" * len(header))
    lines.extend(rows if rows else ["(no metrics changed)"])
    if quiet and not show_all:
        lines.append(f"… {quiet} metric(s) within ±{_QUIET_THRESHOLD:.1%} "
                     "(pass --all to list them)")
    return "\n".join(lines)
