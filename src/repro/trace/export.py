"""Exporters for traced runs: Chrome trace_event JSON and flat summaries.

:func:`write_chrome_trace` emits the JSON-object flavour of the Chrome
``trace_event`` format — load the file in ``chrome://tracing`` or
https://ui.perfetto.dev to see the nested stage/kernel spans on a
per-process timeline (one track per pid, workers included).

:func:`aggregate_spans` / :func:`format_trace_summary` produce the flat
``--trace-summary`` table: per span name, the call count, total wall
time, and *self* time (total minus the time spent in child spans —
computed exactly from the recorded parent links, not by interval
heuristics).

:func:`validate_trace` checks a trace object (or file) against the
subset of the trace_event schema this package emits; ``make
trace-smoke`` gates on it, and ``python -m repro.trace.export FILE``
runs it from the command line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import TraceError
from .spans import SpanRecord, Tracer

__all__ = [
    "SpanStats",
    "aggregate_spans",
    "chrome_trace_events",
    "format_trace_summary",
    "validate_trace",
    "validate_trace_file",
    "write_chrome_trace",
]

_RecordsOrTracer = Union[Tracer, Sequence[SpanRecord]]


def _records(source: _RecordsOrTracer) -> List[SpanRecord]:
    if isinstance(source, Tracer):
        return list(source.records)
    return [SpanRecord(*record) for record in source]


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

def chrome_trace_events(source: _RecordsOrTracer,
                        parent_pid: Optional[int] = None) -> List[Dict]:
    """The ``traceEvents`` list for *source*, timestamps normalized.

    Timestamps are microseconds relative to the earliest record, which
    is what the Chrome/Perfetto viewers expect.  Process-name metadata
    events label the parent and the workers when *parent_pid* is given.
    """
    records = _records(source)
    events: List[Dict] = []
    base = min((r.start for r in records), default=0.0)
    for record in records:
        event: Dict[str, object] = {
            "name": record.name,
            "cat": "repro",
            "ph": record.phase,
            "ts": (record.start - base) * 1e6,
            "pid": record.pid,
            "tid": record.tid,
        }
        if record.phase == "X":
            event["dur"] = record.duration * 1e6
        elif record.phase == "i":
            event["s"] = "t"
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    if parent_pid is not None:
        for pid in sorted({r.pid for r in records}):
            role = "parent" if pid == parent_pid else "worker"
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"repro {role} (pid {pid})"},
            })
    return events


def write_chrome_trace(source: _RecordsOrTracer, path: str,
                       parent_pid: Optional[int] = None) -> int:
    """Write *source* as Chrome trace_event JSON; returns the event count."""
    events = chrome_trace_events(source, parent_pid=parent_pid)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    except OSError as exc:
        raise TraceError(f"cannot write trace file {path}: {exc}") from exc
    return len(events)


# ---------------------------------------------------------------------------
# Flat aggregation (--trace-summary)
# ---------------------------------------------------------------------------

@dataclass
class SpanStats:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    instants: int = 0


def aggregate_spans(source: _RecordsOrTracer) -> List[SpanStats]:
    """Per-name stats, descending self time (the profiling question).

    Self time is exact: each span's child durations are subtracted using
    the recorded ``(pid, parent sid)`` links, so reparenting across the
    worker merge cannot double-count.
    """
    records = _records(source)
    child_time: Dict[Tuple[int, int], float] = {}
    for record in records:
        if record.phase == "X" and record.parent >= 0:
            key = (record.pid, record.parent)
            child_time[key] = child_time.get(key, 0.0) + record.duration
    stats: Dict[str, SpanStats] = {}
    for record in records:
        stat = stats.get(record.name)
        if stat is None:
            stat = stats[record.name] = SpanStats(name=record.name)
        if record.phase == "i":
            stat.instants += 1
            continue
        stat.count += 1
        stat.total += record.duration
        stat.self_time += record.duration - child_time.get(
            (record.pid, record.sid), 0.0)
    return sorted(stats.values(), key=lambda s: (-s.self_time, s.name))


def format_trace_summary(source: _RecordsOrTracer,
                         title: str = "trace summary") -> str:
    """The flat per-span-name table ``--trace-summary`` prints."""
    records = _records(source)
    stats = aggregate_spans(records)
    pids = {record.pid for record in records}
    header = (f"{title}: {len(records)} event(s) from "
              f"{len(pids)} process(es)")
    lines = [header, "-" * len(header),
             f"{'span':<20} {'count':>8} {'total':>12} {'self':>12}"]
    for stat in stats:
        if stat.count:
            lines.append(f"{stat.name:<20} {stat.count:>8} "
                         f"{stat.total:>11.6f}s {stat.self_time:>11.6f}s")
        else:
            lines.append(f"{stat.name:<20} {stat.instants:>8} "
                         f"{'-':>12} {'-':>12}")
    if not stats:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_PHASES = {"X", "i", "M"}


def validate_trace(payload: object) -> int:
    """Check *payload* against the trace_event subset this package emits.

    Returns the number of events; raises :class:`TraceError` naming the
    first offending event otherwise.  The checks mirror what the
    Chrome/Perfetto loaders require: a ``traceEvents`` list whose
    entries carry a string ``name``, a known ``ph``, numeric ``ts``
    (and ``dur`` for complete events), and integer ``pid``/``tid``.
    """
    if not isinstance(payload, dict):
        raise TraceError("trace file is not a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("trace object has no traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TraceError(f"{where} is not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise TraceError(f"{where} has no name")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise TraceError(f"{where} ({name}) has bad phase {phase!r}")
        if not isinstance(event.get("pid"), int):
            raise TraceError(f"{where} ({name}) has no integer pid")
        if not isinstance(event.get("tid"), int):
            raise TraceError(f"{where} ({name}) has no integer tid")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TraceError(f"{where} ({name}) has bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceError(f"{where} ({name}) has bad dur {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            raise TraceError(f"{where} ({name}) has non-object args")
    return len(events)


def validate_trace_file(path: str) -> int:
    """Load *path* and :func:`validate_trace` it; returns the event count."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path} is not valid JSON: {exc}") from exc
    return validate_trace(payload)


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``python -m repro.trace.export FILE…`` — validate trace files."""
    import sys
    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.trace.export TRACE.json …",
              file=sys.stderr)
        return 2
    for path in paths:
        try:
            count = validate_trace_file(path)
        except TraceError as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            return 1
        print(f"{path}: valid trace_event JSON ({count} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(main())
