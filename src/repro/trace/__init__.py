"""Observability: hierarchical tracing spans, Chrome-trace export, and
cross-run bench trend tracking (DESIGN.md §7).

The three layers:

* :mod:`repro.trace.spans` — the :class:`Tracer` and the module-level
  :func:`span`/:func:`instant` call sites threaded through every engine
  (analyzer worklist, path enumeration, template compiles, kernel
  batches, sweep scenarios, parallel chunks, worker processes);
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto, the flat ``--trace-summary``
  aggregate, and the schema validator behind ``make trace-smoke``;
* :mod:`repro.trace.trends` — the ``trend`` CLI subcommand's data
  layer: flattens every ``benchmarks/BENCH_*.json`` into one metric
  namespace and appends snapshots to ``BENCH_history.jsonl``.
"""

from .export import (
    SpanStats,
    aggregate_spans,
    chrome_trace_events,
    format_trace_summary,
    validate_trace,
    validate_trace_file,
    write_chrome_trace,
)
from .spans import (
    NULL_SCOPE,
    SpanRecord,
    Tracer,
    activate,
    current,
    disabled_site_cost,
    install,
    instant,
    span,
    uninstall,
)
from .trends import (
    HISTORY_FILE,
    TrendEntry,
    collect_metrics,
    flatten_numeric,
    format_trend_report,
    load_history,
    record_entry,
)

__all__ = [
    "HISTORY_FILE",
    "NULL_SCOPE",
    "SpanRecord",
    "SpanStats",
    "Tracer",
    "TrendEntry",
    "activate",
    "aggregate_spans",
    "chrome_trace_events",
    "collect_metrics",
    "current",
    "disabled_site_cost",
    "flatten_numeric",
    "format_trace_summary",
    "format_trend_report",
    "install",
    "instant",
    "load_history",
    "record_entry",
    "span",
    "uninstall",
    "validate_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
