"""Tests for device parameters and technology descriptions."""

import pytest

from repro.errors import TechnologyError
from repro.tech import (
    CMOS3,
    NMOS4,
    DeviceKind,
    DeviceParams,
    StaticResistance,
    Technology,
    Transition,
    analytic_static_resistance,
    ratio_check,
)
from repro.tech.parameters import subthreshold_leakage_estimate, thermal_voltage


class TestDeviceKind:
    def test_n_channel_flags(self):
        assert DeviceKind.NMOS_ENH.is_n_channel
        assert DeviceKind.NMOS_DEP.is_n_channel
        assert not DeviceKind.PMOS.is_n_channel

    def test_polarity(self):
        assert DeviceKind.NMOS_ENH.polarity == 1
        assert DeviceKind.PMOS.polarity == -1

    def test_codes_round_trip(self):
        for kind in DeviceKind:
            assert DeviceKind(kind.value) is kind


class TestTransition:
    def test_opposite(self):
        assert Transition.RISE.opposite is Transition.FALL
        assert Transition.FALL.opposite is Transition.RISE

    def test_double_opposite(self):
        for t in Transition:
            assert t.opposite.opposite is t


class TestDeviceParams:
    @pytest.fixture
    def params(self):
        return DeviceParams(kind=DeviceKind.NMOS_ENH, vt0=1.0, kp=25e-6)

    def test_beta_scales_with_geometry(self, params):
        assert params.beta(8e-6, 2e-6) == pytest.approx(4 * 25e-6)
        assert params.beta(2e-6, 8e-6) == pytest.approx(25e-6 / 4)

    def test_beta_rejects_bad_geometry(self, params):
        with pytest.raises(TechnologyError):
            params.beta(0.0, 2e-6)
        with pytest.raises(TechnologyError):
            params.beta(2e-6, -1e-6)

    def test_gate_capacitance(self, params):
        cap = params.gate_capacitance(8e-6, 2e-6)
        assert cap == pytest.approx(params.cox * 16e-12)

    def test_diffusion_capacitance(self, params):
        assert params.diffusion_capacitance(8e-6) == pytest.approx(
            params.cj_per_width * 8e-6)

    def test_saturation_current_enhancement(self, params):
        current = params.saturation_current(5.0, 8e-6, 2e-6)
        assert current == pytest.approx(0.5 * 25e-6 * 4 * 16.0)

    def test_saturation_current_cutoff(self, params):
        assert params.saturation_current(0.5, 8e-6, 2e-6) == 0.0

    def test_saturation_current_depletion(self):
        dep = DeviceParams(kind=DeviceKind.NMOS_DEP, vt0=-3.0, kp=25e-6)
        # A depletion device conducts even at zero gate drive.
        assert dep.saturation_current(0.0, 2e-6, 2e-6) > 0


class TestStaticResistance:
    def test_square_scaling(self):
        entry = StaticResistance(r_square=10e3)
        assert entry.resistance(2e-6, 2e-6) == pytest.approx(10e3)
        assert entry.resistance(8e-6, 2e-6) == pytest.approx(2.5e3)
        assert entry.resistance(2e-6, 8e-6) == pytest.approx(40e3)

    def test_rejects_bad_geometry(self):
        with pytest.raises(TechnologyError):
            StaticResistance(1e3).resistance(-1e-6, 2e-6)


class TestTechnologies:
    def test_nmos4_has_both_kinds(self):
        assert NMOS4.has_kind(DeviceKind.NMOS_ENH)
        assert NMOS4.has_kind(DeviceKind.NMOS_DEP)
        assert not NMOS4.has_kind(DeviceKind.PMOS)

    def test_cmos3_has_both_kinds(self):
        assert CMOS3.has_kind(DeviceKind.NMOS_ENH)
        assert CMOS3.has_kind(DeviceKind.PMOS)
        assert not CMOS3.has_kind(DeviceKind.NMOS_DEP)

    def test_params_unknown_kind_raises(self):
        with pytest.raises(TechnologyError):
            CMOS3.params(DeviceKind.NMOS_DEP)

    def test_resistance_lookup(self):
        r = CMOS3.resistance(DeviceKind.NMOS_ENH, Transition.FALL, 6e-6, 2e-6)
        assert r > 0

    def test_resistance_unknown_key_raises(self):
        with pytest.raises(TechnologyError):
            NMOS4.resistance(DeviceKind.PMOS, Transition.RISE, 1e-6, 1e-6)

    def test_degraded_pass_resistance_larger(self):
        """nMOS passing a rising level is threshold-degraded: higher R."""
        rise = CMOS3.resistance(DeviceKind.NMOS_ENH, Transition.RISE,
                                4e-6, 2e-6)
        fall = CMOS3.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                                4e-6, 2e-6)
        assert rise > fall

    def test_pmos_weaker_than_nmos(self):
        """Same geometry: the pMOS pullup is more resistive (mobility)."""
        r_p = CMOS3.resistance(DeviceKind.PMOS, Transition.RISE, 6e-6, 2e-6)
        r_n = CMOS3.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                               6e-6, 2e-6)
        assert r_p > r_n

    def test_depletion_load_very_resistive(self):
        r_dep = NMOS4.resistance(DeviceKind.NMOS_DEP, Transition.RISE,
                                 2e-6, 8e-6)
        r_enh = NMOS4.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                                 8e-6, 2e-6)
        assert r_dep > 5 * r_enh

    def test_logic_threshold(self):
        assert CMOS3.logic_threshold() == pytest.approx(2.5)

    def test_describe_mentions_devices(self):
        text = NMOS4.describe()
        assert "NMOS_ENH" in text and "NMOS_DEP" in text

    def test_with_slope_tables_copies(self):
        marker = object()
        copy = CMOS3.with_slope_tables(marker)
        assert copy.slope_tables is marker
        assert copy is not CMOS3
        assert CMOS3.slope_tables is not marker

    def test_default_slope_tables_attached(self):
        assert CMOS3.slope_tables is not None
        assert NMOS4.slope_tables is not None


class TestAnalyticResistance:
    def test_positive_for_all_kinds(self):
        for tech in (CMOS3, NMOS4):
            for params in tech.devices.values():
                assert analytic_static_resistance(params, tech.vdd) > 0

    def test_no_overdrive_raises(self):
        weak = DeviceParams(kind=DeviceKind.NMOS_ENH, vt0=6.0, kp=25e-6)
        with pytest.raises(TechnologyError):
            analytic_static_resistance(weak, 5.0)

    def test_scales_inversely_with_kp(self):
        a = DeviceParams(kind=DeviceKind.NMOS_ENH, vt0=1.0, kp=25e-6)
        b = DeviceParams(kind=DeviceKind.NMOS_ENH, vt0=1.0, kp=50e-6)
        assert analytic_static_resistance(a, 5.0) == pytest.approx(
            2 * analytic_static_resistance(b, 5.0))


class TestHelpers:
    def test_ratio_check_passes_standard_inverter(self):
        pulldown = NMOS4.params(DeviceKind.NMOS_ENH).beta(8e-6, 2e-6)
        load = NMOS4.params(DeviceKind.NMOS_DEP).beta(2e-6, 8e-6)
        assert ratio_check(pulldown, load, minimum=4.0)

    def test_ratio_check_fails_weak_pulldown(self):
        assert not ratio_check(1.0, 1.0, minimum=4.0)

    def test_ratio_check_rejects_bad_load(self):
        with pytest.raises(TechnologyError):
            ratio_check(1.0, 0.0)

    def test_thermal_voltage_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_subthreshold_leakage_tiny(self):
        params = CMOS3.params(DeviceKind.NMOS_ENH)
        leak = subthreshold_leakage_estimate(params, 6e-6, 2e-6)
        on_current = params.saturation_current(5.0, 6e-6, 2e-6)
        assert 0 < leak < 1e-6 * on_current
