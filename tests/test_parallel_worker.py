"""Pickling regression tests: workers must never re-parse from disk.

The parallel subsystem rides entirely on shipping an
:class:`~repro.parallel.AnalyzerSpec` (network + model + states) to
worker processes as one pickle payload.  These tests pin that guarantee
down at every layer — raw Network, characterized Technology, the spec
round-trip, and the rebuilt analyzer's bit-identical behaviour — so a
future unpicklable attribute (a closure, a lambda, an open handle) fails
here with a clear message instead of deep inside a pool initializer.
"""

import pickle

import pytest

from repro.circuits import (
    adder_input_names,
    bootstrap_driver,
    ripple_carry_adder,
)
from repro.core.models import characterize_technology
from repro.core.timing import TimingAnalyzer
from repro.core.timing.analyzer import Arrival, Event
from repro.parallel import AnalyzerSpec, decode_arrivals, encode_arrivals
from repro.parallel import worker as worker_mod
from repro.switchlevel import Logic, SwitchSimulator
from repro.tech import CMOS3, NMOS4, Transition

BITS = 4


@pytest.fixture
def net():
    return ripple_carry_adder(CMOS3, BITS)


@pytest.fixture
def inputs():
    return {name: 0.0 for name in adder_input_names(BITS)}


class TestNetworkPickling:
    def test_round_trip_preserves_structure(self, net):
        clone = pickle.loads(pickle.dumps(net))
        assert clone.name == net.name
        assert len(clone.nodes) == len(net.nodes)
        assert len(clone.transistors) == len(net.transistors)
        assert (sorted(n.name for n in clone.inputs())
                == sorted(n.name for n in net.inputs()))

    def test_clone_analyzes_identically(self, net, inputs):
        clone = pickle.loads(pickle.dumps(net))
        a = TimingAnalyzer(net).analyze(inputs)
        b = TimingAnalyzer(clone).analyze(inputs)
        assert set(a.arrivals) == set(b.arrivals)
        for event in a.arrivals:
            assert a.arrivals[event].time == b.arrivals[event].time
            assert a.arrivals[event].slope == b.arrivals[event].slope

    def test_characterized_technology_pickles(self):
        # Regression: the pass-gate fixture builder used to be a closure,
        # which made every characterized Technology (and so any analyzer
        # built on one) unpicklable.
        for base in (CMOS3, NMOS4):
            tech = characterize_technology(base)
            clone = pickle.loads(pickle.dumps(tech))
            assert clone.name == tech.name


class TestAnalyzerSpec:
    def test_payload_round_trip(self, net):
        spec = AnalyzerSpec.from_analyzer(TimingAnalyzer(net))
        clone = AnalyzerSpec.from_payload(spec.to_payload())
        assert clone.network.name == net.name
        assert clone.model.name == spec.model.name
        assert clone.incremental == spec.incremental

    def test_rejects_foreign_payload(self):
        with pytest.raises(TypeError):
            AnalyzerSpec.from_payload(pickle.dumps("not a spec"))

    def test_rebuilt_analyzer_is_equivalent(self, net, inputs):
        original = TimingAnalyzer(net, slope_quantum=0.05)
        spec = AnalyzerSpec.from_analyzer(original)
        rebuilt = AnalyzerSpec.from_payload(spec.to_payload()).build()
        assert rebuilt.slope_quantum == original.slope_quantum
        a = original.analyze(inputs)
        b = rebuilt.analyze(inputs)
        for event in a.arrivals:
            assert a.arrivals[event].time == b.arrivals[event].time

    def test_states_survive_the_trip(self, net):
        sim = SwitchSimulator(net)
        for name in adder_input_names(BITS):
            sim.set_input(name, Logic.ZERO)
        sim.settle()
        states = {n.name: sim.value(n.name) for n in net.signal_nodes}
        spec = AnalyzerSpec.from_analyzer(
            TimingAnalyzer(net, states=states))
        clone = AnalyzerSpec.from_payload(spec.to_payload())
        assert clone.states == states

    def test_feedback_network_spec_pickles(self):
        # Feedback circuits fall back to serial, but their specs must
        # still ship cleanly (scenario sharding uses them regardless).
        net = bootstrap_driver(NMOS4)
        spec = AnalyzerSpec.from_analyzer(TimingAnalyzer(net))
        assert AnalyzerSpec.from_payload(
            spec.to_payload()).network.name == net.name


class TestArrivalWire:
    def test_encode_decode_round_trip(self):
        arrivals = {
            Event("a", Transition.RISE): Arrival(time=1e-9, slope=2e-10),
            Event("a", Transition.FALL): Arrival(time=3e-9, slope=1e-10),
            Event("b", Transition.RISE): Arrival(time=5e-9, slope=0.0),
        }
        wire = encode_arrivals(arrivals, frozenset({"a", "b"}))
        decoded = decode_arrivals(wire)
        assert set(decoded) == set(arrivals)
        for event in arrivals:
            assert decoded[event].time == arrivals[event].time
            assert decoded[event].slope == arrivals[event].slope

    def test_encode_filters_by_node(self):
        arrivals = {
            Event("keep", Transition.RISE): Arrival(time=1.0, slope=0.0),
            Event("drop", Transition.RISE): Arrival(time=2.0, slope=0.0),
        }
        wire = encode_arrivals(arrivals, frozenset({"keep"}))
        assert {w[0] for w in wire} == {"keep"}


class TestWorkerFunctions:
    """Run the worker entry points in-process against a real payload."""

    def test_initialize_and_run_vector_chunk(self, net, inputs):
        spec = AnalyzerSpec.from_analyzer(TimingAnalyzer(net))
        saved = worker_mod._STATE
        try:
            worker_mod.initialize_worker(spec.to_payload())
            task = (0, ((0, "v0", inputs), (1, "v1", inputs)))
            chunk_id, pid, seconds, results, spans = (
                worker_mod.run_vector_chunk(task))
            assert chunk_id == 0 and len(results) == 2
            assert spans == ()  # no tracer installed -> nothing shipped
            assert [r[0] for r in results] == [0, 1]
            reference = TimingAnalyzer(net).analyze(inputs)
            for _pos, arrivals, counters, _timers in results:
                assert counters.get("stage_visits", 0) > 0
                for event in reference.arrivals:
                    assert (arrivals[event].time
                            == reference.arrivals[event].time)
        finally:
            worker_mod._STATE = saved

    def test_run_stage_chunk_matches_stage_candidates(self, net, inputs):
        analyzer = TimingAnalyzer(net)
        serial = analyzer.analyze(inputs)
        spec = AnalyzerSpec.from_analyzer(analyzer)
        stage = max(analyzer.graph.stages,
                    key=lambda s: len(s.internal_nodes))
        wire = encode_arrivals(serial.arrivals,
                               stage.gate_inputs | stage.boundary_nodes)
        saved = worker_mod._STATE
        try:
            worker_mod.initialize_worker(spec.to_payload())
            _cid, _pid, _secs, stage_results, costs, counters, spans = (
                worker_mod.run_stage_chunk((0, (stage.index,), wire)))
        finally:
            worker_mod._STATE = saved
        assert spans == ()  # no tracer installed -> nothing shipped
        assert stage.index in costs
        assert counters.get("candidates", 0) > 0
        (index, candidates), = stage_results
        assert index == stage.index
        expected = analyzer.stage_candidates(stage, serial.arrivals)
        assert [(e, a.time, a.slope, r) for e, a, r in candidates] == \
               [(e, a.time, a.slope, r) for e, a, r in expected]
