"""Tests for the level-1 MOSFET model: regions, symmetry, derivatives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog import mosfet
from repro.tech import CMOS3, NMOS4, DeviceKind

NMOS = CMOS3.params(DeviceKind.NMOS_ENH)
PMOS = CMOS3.params(DeviceKind.PMOS)
DEP = NMOS4.params(DeviceKind.NMOS_DEP)

W, L = 6e-6, 2e-6


class TestRegions:
    def test_cutoff(self):
        op = mosfet.evaluate(NMOS, W, L, v_gate=0.0, v_source=0.0,
                             v_drain=5.0)
        assert op.region == "cutoff"
        assert op.current == 0.0

    def test_linear(self):
        op = mosfet.evaluate(NMOS, W, L, v_gate=5.0, v_source=0.0,
                             v_drain=0.1)
        assert op.region == "linear"
        assert op.current > 0

    def test_saturation(self):
        op = mosfet.evaluate(NMOS, W, L, v_gate=2.0, v_source=0.0,
                             v_drain=5.0)
        assert op.region == "saturation"

    def test_saturation_current_magnitude(self):
        op = mosfet.evaluate(NMOS, W, L, v_gate=5.0, v_source=0.0,
                             v_drain=5.0)
        beta = NMOS.beta(W, L)
        expected = 0.5 * beta * (5.0 - NMOS.vt0) ** 2 * (1 + NMOS.lam * 5.0)
        assert op.current == pytest.approx(expected)

    def test_linear_current_magnitude(self):
        op = mosfet.evaluate(NMOS, W, L, v_gate=5.0, v_source=0.0,
                             v_drain=0.2)
        beta = NMOS.beta(W, L)
        vov = 5.0 - NMOS.vt0
        expected = beta * (vov * 0.2 - 0.5 * 0.04) * (1 + NMOS.lam * 0.2)
        assert op.current == pytest.approx(expected)

    def test_depletion_conducts_at_zero_vgs(self):
        op = mosfet.evaluate(DEP, 2e-6, 8e-6, v_gate=2.0, v_source=2.0,
                             v_drain=5.0)
        assert op.current > 0


class TestSymmetry:
    def test_zero_vds_zero_current(self):
        op = mosfet.evaluate(NMOS, W, L, 5.0, 1.0, 1.0)
        assert op.current == 0.0

    def test_reverse_conduction(self):
        """Swapping source and drain flips the current's sign."""
        fwd = mosfet.evaluate(NMOS, W, L, v_gate=5.0, v_source=0.0,
                              v_drain=2.0)
        rev = mosfet.evaluate(NMOS, W, L, v_gate=5.0, v_source=2.0,
                              v_drain=0.0)
        assert rev.current == pytest.approx(-fwd.current)

    def test_pass_transistor_cuts_off_near_rail(self):
        """nMOS passing a high level: once the output reaches VDD - VT the
        device stops conducting — the threshold-degradation effect."""
        op = mosfet.evaluate(NMOS, W, L, v_gate=5.0,
                             v_source=5.0 - NMOS.vt0 + 0.01, v_drain=5.0)
        assert op.current == pytest.approx(0.0, abs=1e-12)


class TestPMOS:
    def test_conducts_with_low_gate(self):
        op = mosfet.evaluate(PMOS, 12e-6, 2e-6, v_gate=0.0, v_source=5.0,
                             v_drain=2.0)
        # Current flows out of the drain terminal (source at Vdd).
        assert op.current < 0
        assert op.region in ("linear", "saturation")

    def test_off_with_high_gate(self):
        op = mosfet.evaluate(PMOS, 12e-6, 2e-6, v_gate=5.0, v_source=5.0,
                             v_drain=0.0)
        assert op.region == "cutoff"

    def test_mirror_of_nmos(self):
        """A PMOS at mirrored voltages carries the mirrored NMOS current
        scaled by KP ratio."""
        n = mosfet.evaluate(NMOS, W, L, 5.0, 0.0, 2.0)
        p = mosfet.evaluate(PMOS, W, L, 0.0, 5.0, 3.0)
        # |VTO| differs? both are 0.8 in CMOS3, so only KP scales.
        assert p.current == pytest.approx(
            -n.current * PMOS.kp / NMOS.kp, rel=1e-9)


def finite_difference(params, w, l, vg, vs, vd, axis, h=1e-6):
    def current(g, s, d):
        return mosfet.evaluate(params, w, l, g, s, d).current

    base = [vg, vs, vd]
    lo = list(base)
    hi = list(base)
    lo[axis] -= h
    hi[axis] += h
    return (current(*hi) - current(*lo)) / (2 * h)


class TestDerivatives:
    """The Newton stamps live or die by correct partial derivatives."""

    voltage = st.floats(min_value=-0.5, max_value=5.5)

    @settings(max_examples=120, deadline=None)
    @given(vg=voltage, vs=voltage, vd=voltage)
    def test_nmos_derivatives_match_finite_difference(self, vg, vs, vd):
        self._check(NMOS, vg, vs, vd)

    @settings(max_examples=120, deadline=None)
    @given(vg=voltage, vs=voltage, vd=voltage)
    def test_pmos_derivatives_match_finite_difference(self, vg, vs, vd):
        self._check(PMOS, vg, vs, vd)

    @settings(max_examples=60, deadline=None)
    @given(vg=voltage, vs=voltage, vd=voltage)
    def test_depletion_derivatives_match_finite_difference(self, vg, vs, vd):
        self._check(DEP, vg, vs, vd)

    def _check(self, params, vg, vs, vd):
        # Stay away from region boundaries where derivatives jump.
        for boundary in self._boundaries(params, vg, vs, vd):
            if abs(boundary) < 1e-3:
                return
        op = mosfet.evaluate(params, W, L, vg, vs, vd)
        for axis, analytic in ((0, op.g_gate), (1, op.g_source),
                               (2, op.g_drain)):
            numeric = finite_difference(params, W, L, vg, vs, vd, axis)
            scale = max(abs(analytic), abs(numeric), 1e-9)
            assert abs(analytic - numeric) / scale < 1e-3, (
                params.kind, (vg, vs, vd), axis, analytic, numeric)

    @staticmethod
    def _boundaries(params, vg, vs, vd):
        sign = -1.0 if params.kind is DeviceKind.PMOS else 1.0
        g, s, d = sign * vg, sign * vs, sign * vd
        if d < s:
            s, d = d, s
        vt = params.vt0 if params.kind is not DeviceKind.PMOS else -params.vt0
        vov = (g - s) - vt
        return (vov, (d - s) - vov, d - s)


class TestConducts:
    def test_on_device(self):
        assert mosfet.conducts(NMOS, 5.0, 0.0, 0.0)

    def test_off_device(self):
        assert not mosfet.conducts(NMOS, 0.0, 0.0, 5.0)

    def test_depletion_always(self):
        assert mosfet.conducts(DEP, 0.0, 0.0, 0.0)
