"""Golden-reference tolerance tests: slope model vs analog transient.

The slope model's whole claim (the paper's T1/T2 tables) is staying
within a tight band of circuit simulation.  These tests measure slope-
model stage delays against the :mod:`repro.analog` transient reference
on inverter chains and a pass-transistor chain, and compare the
*relative errors* against goldens committed in
``tests/goldens/golden_delays.json``:

* the error band itself must hold (|error| within the scenario's
  committed band), and
* the error must not *drift* more than 10 percentage points from the
  committed golden — a regression gate on every layer the number flows
  through (characterization, RC trees, slope tables, the analyzer).

Goldens were recorded with the test suite's coarse characterization grid
(``TEST_RATIOS`` in conftest), which is deterministic.  After an
*intentional* model change, regenerate with::

    PYTHONPATH=src:. python tests/test_golden_reference.py --regenerate
"""

import json
import pathlib

import pytest

from repro.bench import cmos_scenarios, model_delay, reference_delay
from repro.core.models import SlopeModel

GOLDEN_FILE = pathlib.Path(__file__).parent / "goldens" / \
    "golden_delays.json"

#: Scenarios under the golden gate: the paper's bread-and-butter cases.
SCENARIO_NAMES = ["inverter+100fF", "inv-chain-4", "inv-chain-4-fo4",
                  "pass-chain-4"]

#: Allowed drift of the relative error vs the committed golden
#: (absolute, in error-fraction units: 0.10 = 10 percentage points).
MAX_DRIFT = 0.10

#: Accuracy band on |relative error| itself — the paper's slope-model
#: claim is ~10% average with pass-chain worst cases near 30%.
MAX_ABS_ERROR = 0.35


def _selected_scenarios(tech):
    by_name = {s.name: s for s in cmos_scenarios(tech)}
    return [by_name[name] for name in SCENARIO_NAMES]


def _measure(scenario):
    reference = reference_delay(scenario)
    estimate, _ = model_delay(scenario, SlopeModel())
    return {
        "reference": reference,
        "slope_delay": estimate,
        "rel_error": (estimate - reference) / reference,
    }


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_FILE.exists(), (
        f"{GOLDEN_FILE} missing — regenerate with "
        "PYTHONPATH=src:. python tests/test_golden_reference.py "
        "--regenerate")
    return json.loads(GOLDEN_FILE.read_text())["scenarios"]


@pytest.mark.slow
class TestGoldenReference:
    @pytest.fixture(scope="class")
    def measured(self, cmos_char):
        return {s.name: _measure(s) for s in _selected_scenarios(cmos_char)}

    def test_goldens_cover_all_scenarios(self, goldens):
        assert sorted(goldens) == sorted(SCENARIO_NAMES)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_error_within_band(self, name, measured):
        error = measured[name]["rel_error"]
        assert abs(error) <= MAX_ABS_ERROR, (
            f"{name}: slope model off by {error:+.1%} vs analog reference "
            f"(band ±{MAX_ABS_ERROR:.0%})")

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_error_does_not_drift_from_golden(self, name, measured,
                                              goldens):
        error = measured[name]["rel_error"]
        golden = goldens[name]["rel_error"]
        drift = abs(error - golden)
        assert drift <= MAX_DRIFT, (
            f"{name}: slope-model error drifted {drift:.1%} from the "
            f"committed golden ({golden:+.1%} → {error:+.1%}); if the "
            "change is intentional, regenerate tests/goldens/"
            "golden_delays.json")

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_reference_delay_itself_is_stable(self, name, measured,
                                              goldens):
        """The analog reference must not silently move either (it is the
        ruler everything else is measured with)."""
        reference = measured[name]["reference"]
        golden = goldens[name]["reference"]
        assert reference == pytest.approx(golden, rel=MAX_DRIFT), (
            f"{name}: analog reference moved {reference / golden - 1:+.1%}"
            " from the committed golden")


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    from repro.core.models import characterize_technology
    from repro.tech import CMOS3
    from tests.conftest import TEST_RATIOS

    tech = characterize_technology(CMOS3, ratios=TEST_RATIOS)
    payload = {
        "comment": "slope model vs analog reference; coarse TEST_RATIOS "
                   "characterization (tests/conftest.py). Regenerate: "
                   "PYTHONPATH=src:. python "
                   "tests/test_golden_reference.py --regenerate",
        "scenarios": {s.name: _measure(s)
                      for s in _selected_scenarios(tech)},
    }
    GOLDEN_FILE.parent.mkdir(exist_ok=True)
    GOLDEN_FILE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_FILE}")
    for name, row in payload["scenarios"].items():
        print(f"  {name:<18} ref {row['reference']:.3e}s  "
              f"slope {row['slope_delay']:.3e}s  "
              f"err {row['rel_error']:+.1%}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
