"""Tests for transient analysis: analytic RC checks, integration methods,
initial conditions, charge coupling."""

import math

import numpy as np
import pytest

from repro.analog import simulate, sources
from repro.errors import SimulationError
from repro.netlist import Network
from repro.tech import CMOS3, NMOS4, DeviceKind, Transition


def rc_network(r=1e3, c=1e-12):
    net = Network(CMOS3)
    net.add_resistor("in", "out", r)
    net.add_capacitor("out", "gnd", c)
    net.mark_input("in")
    return net


class TestLinearRC:
    def test_charging_matches_analytic(self):
        r, c = 1e3, 1e-12
        net = rc_network(r, c)
        tau = r * c
        result = simulate(net, {"in": sources.step_up(5.0, at=0.0)},
                          t_stop=6 * tau, steps=1200)
        wf = result.waveform("out")
        for multiple in (0.5, 1.0, 2.0, 4.0):
            t = multiple * tau
            expected = 5.0 * (1 - math.exp(-multiple))
            assert wf.value_at(t) == pytest.approx(expected, rel=2e-2)

    def test_discharge(self):
        r, c = 2e3, 0.5e-12
        net = rc_network(r, c)
        tau = r * c
        result = simulate(net, {"in": sources.step_down(5.0, at=0.0)},
                          t_stop=5 * tau,
                          initial_conditions={"out": 5.0}, steps=1000)
        wf = result.waveform("out")
        assert wf.value_at(tau) == pytest.approx(5.0 * math.exp(-1), rel=2e-2)

    def test_50_percent_crossing_at_ln2_tau(self):
        r, c = 1e3, 1e-12
        net = rc_network(r, c)
        tau = r * c
        result = simulate(net, {"in": sources.step_up(5.0, at=0.0)},
                          t_stop=6 * tau, steps=2000)
        crossing = result.waveform("out").first_crossing(2.5, Transition.RISE)
        assert crossing == pytest.approx(math.log(2) * tau, rel=1e-2)

    def test_be_more_dissipative_than_trap(self):
        """Backward Euler under-shoots the exact exponential; trapezoidal
        tracks it more closely at coarse steps."""
        r, c = 1e3, 1e-12
        tau = r * c
        exact = 5.0 * (1 - math.exp(-1))
        values = {}
        for method in ("be", "trap"):
            result = simulate(rc_network(r, c),
                              {"in": sources.step_up(5.0, at=0.0)},
                              t_stop=3 * tau, steps=30, method=method)
            values[method] = result.waveform("out").value_at(tau)
        assert abs(values["trap"] - exact) <= abs(values["be"] - exact)

    def test_two_stage_ladder_final_values(self):
        net = Network(CMOS3)
        net.add_resistor("in", "m", 1e3)
        net.add_resistor("m", "out", 1e3)
        net.add_capacitor("m", "gnd", 1e-12)
        net.add_capacitor("out", "gnd", 1e-12)
        net.mark_input("in")
        result = simulate(net, {"in": sources.step_up(5.0, at=0.0)},
                          t_stop=30e-9, steps=800)
        finals = result.final_voltages()
        assert finals["m"] == pytest.approx(5.0, rel=1e-3)
        assert finals["out"] == pytest.approx(5.0, rel=1e-3)


class TestSourceHandling:
    def test_breakpoints_land_on_grid(self):
        net = rc_network()
        drive = sources.Pulse(v1=0.0, v2=5.0, delay=1.33e-9, rise=0.0,
                              fall=0.0, width=2e-9)
        result = simulate(net, {"in": drive}, t_stop=10e-9, steps=100)
        assert any(abs(t - 1.33e-9) < 1e-15 for t in result.times)

    def test_input_waveform_recorded(self):
        net = rc_network()
        result = simulate(net, {"in": sources.step_up(5.0, at=1e-9)},
                          t_stop=5e-9, steps=200)
        wf = result.waveform("in")
        assert wf.initial_value() == 0.0
        assert wf.final_value() == 5.0

    def test_unknown_waveform_requested(self):
        net = rc_network()
        result = simulate(net, {"in": 0.0}, t_stop=1e-9, steps=50)
        with pytest.raises(SimulationError):
            result.waveform("nonexistent")

    def test_vdd_waveform_available(self):
        net = rc_network()
        result = simulate(net, {"in": 0.0}, t_stop=1e-9, steps=50)
        assert result.waveform("vdd").final_value() == pytest.approx(5.0)


class TestInitialConditions:
    def test_ic_overrides_dc(self):
        net = rc_network()
        result = simulate(net, {"in": 0.0}, t_stop=10e-9,
                          initial_conditions={"out": 3.0}, steps=400)
        wf = result.waveform("out")
        assert wf.initial_value() == pytest.approx(3.0, abs=1e-6)
        assert wf.final_value() == pytest.approx(0.0, abs=1e-2)

    def test_use_ic_only_skips_dc(self):
        net = rc_network()
        result = simulate(net, {"in": 5.0}, t_stop=10e-9,
                          use_ic_only=True, steps=400)
        # All unknowns start at 0 regardless of the drive.
        assert result.waveform("out").initial_value() == 0.0

    def test_t_stop_validation(self):
        with pytest.raises(SimulationError):
            simulate(rc_network(), {"in": 0.0}, t_stop=0.0)

    def test_method_validation(self):
        with pytest.raises(SimulationError):
            simulate(rc_network(), {"in": 0.0}, t_stop=1e-9,
                     method="gear2")


class TestChargeCoupling:
    def test_floating_cap_bootstraps_a_node(self):
        """A step through a floating capacitor into a lightly loaded node
        kicks the node above its DC level — the mechanism bootstrap
        drivers exploit."""
        net = Network(NMOS4)
        net.add_capacitor("a", "boot", 100e-15)
        net.add_capacitor("boot", "gnd", 10e-15)
        net.add_resistor("boot", "gnd", 10e6)  # slow leak
        net.mark_input("a")
        result = simulate(net, {"a": sources.step_up(5.0, at=1e-9)},
                          t_stop=5e-9, steps=500)
        peak = float(np.max(result.waveform("boot").values))
        # Capacitive divider: 100 / (100 + 10) of the 5V step.
        assert peak == pytest.approx(5.0 * 100 / 110, rel=0.05)

    def test_cmos_inverter_transient_polarity(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                           width=6e-6, length=2e-6)
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y",
                           width=12e-6, length=2e-6)
        net.add_capacitor("y", "gnd", 50e-15)
        net.mark_input("a")
        result = simulate(
            net, {"a": sources.edge(5.0, rising=True, at=1e-9,
                                    transition_time=0.5e-9)},
            t_stop=10e-9, steps=600)
        wf = result.waveform("y")
        assert wf.initial_value() > 4.9
        assert wf.final_value() < 0.1

    def test_nmos_inverter_rise_slower_than_fall(self):
        """Ratioed nMOS: the depletion pullup is much weaker than the
        enhancement pulldown."""
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                           width=8e-6, length=2e-6)
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd",
                           width=2e-6, length=8e-6)
        net.add_capacitor("y", "gnd", 50e-15)
        net.mark_input("a")
        fall = simulate(net, {"a": sources.step_up(5.0, at=1e-9)},
                        t_stop=60e-9, steps=1200)
        t_fall = fall.waveform("y").first_crossing(2.5, Transition.FALL)
        rise = simulate(net, {"a": sources.step_down(5.0, at=1e-9)},
                        t_stop=60e-9, steps=1200)
        t_rise = rise.waveform("y").first_crossing(2.5, Transition.RISE)
        assert (t_rise - 1e-9) > 3.0 * (t_fall - 1e-9)


class TestNumericalRobustness:
    def test_stiff_circuit_substeps(self):
        """A tiny cap on a strong driver (stiff) must not break the
        integrator."""
        net = Network(CMOS3)
        net.add_resistor("in", "fast", 10.0)
        net.add_capacitor("fast", "gnd", 1e-16)
        net.add_resistor("fast", "slow", 1e6)
        net.add_capacitor("slow", "gnd", 1e-12)
        net.mark_input("in")
        result = simulate(net, {"in": sources.step_up(5.0, at=0.0)},
                          t_stop=5e-6, steps=300)
        assert result.waveform("slow").final_value() == pytest.approx(
            5.0, rel=1e-2)

    def test_empty_unknowns_ok(self):
        """A network where everything is driven still simulates."""
        net = Network(CMOS3)
        net.add_node("a")
        net.mark_input("a")
        result = simulate(net, {"a": 1.0}, t_stop=1e-9, steps=10)
        assert result.waveform("a").final_value() == 1.0
