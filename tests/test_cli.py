"""Tests for the repro-crystal command-line interface."""

import json
import pathlib

import pytest

from repro.cli import _parse_set, _parse_timing_input, main
from repro.errors import ReproError

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

INVERTER_SIM = """\
| cmos inverter chain
i in
n in gnd n1 2 6
p in vdd n1 2 12
n n1 gnd out 2 6
p n1 vdd out 2 12
C out gnd 50
"""

NMOS_SIM = """\
i a
e a gnd y 2 8
d y y vdd 8 2
"""

BAD_SIM = """\
e floatgate gnd y 2 8
d y y vdd 8 2
"""


@pytest.fixture
def inv_file(tmp_path):
    path = tmp_path / "inv.sim"
    path.write_text(INVERTER_SIM)
    return str(path)


@pytest.fixture
def nmos_file(tmp_path):
    path = tmp_path / "nmos.sim"
    path.write_text(NMOS_SIM)
    return str(path)


class TestParsing:
    def test_input_both_edges(self):
        name, spec = _parse_timing_input("in=2n")
        assert name == "in"
        assert spec.arrival_rise == pytest.approx(2e-9)
        assert spec.arrival_fall == pytest.approx(2e-9)

    def test_input_rise_only(self):
        _, spec = _parse_timing_input("in=500p:rise")
        assert spec.arrival_rise == pytest.approx(500e-12)
        assert spec.arrival_fall is None

    def test_input_fall_only(self):
        _, spec = _parse_timing_input("in=0:fall")
        assert spec.arrival_rise is None
        assert spec.arrival_fall == 0.0

    def test_input_static(self):
        _, spec = _parse_timing_input("en=-")
        assert spec.arrival_rise is None and spec.arrival_fall is None

    def test_input_bad_edge(self):
        with pytest.raises(ReproError):
            _parse_timing_input("in=0:sideways")

    def test_input_missing_equals(self):
        with pytest.raises(ReproError):
            _parse_timing_input("in")

    def test_set_values(self):
        assert _parse_set("a=1")[1].value == 1
        assert _parse_set("a=0")[1].value == 0
        assert _parse_set("a=x")[1].value == 2

    def test_set_bad_value(self):
        with pytest.raises(ReproError):
            _parse_set("a=maybe")


class TestValidateCommand:
    def test_clean_netlist(self, inv_file, capsys):
        code = main(["validate", inv_file, "--tech", "cmos3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validation: clean" in out

    def test_bad_netlist_fails(self, tmp_path, capsys):
        path = tmp_path / "bad.sim"
        path.write_text(BAD_SIM)
        code = main(["validate", str(path), "--tech", "nmos4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "floating-gate" in out

    def test_unknown_tech(self, inv_file, capsys):
        code = main(["validate", inv_file, "--tech", "cmos3"])
        assert code == 0
        # argparse rejects unknown technologies before our code runs.
        with pytest.raises(SystemExit):
            main(["validate", inv_file, "--tech", "gaas"])


class TestSwitchCommand:
    def test_inverter_chain(self, inv_file, capsys):
        code = main(["switch", inv_file, "--tech", "cmos3",
                     "--set", "in=1", "--show", "out", "--show", "n1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "out = 1" in out
        assert "n1 = 0" in out

    def test_default_shows_all(self, nmos_file, capsys):
        code = main(["switch", nmos_file, "--tech", "nmos4",
                     "--set", "a=0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "y = 1" in out


class TestTimingCommand:
    def test_worst_paths_default(self, inv_file, capsys):
        code = main(["timing", inv_file, "--tech", "cmos3",
                     "--input", "in=0", "--no-characterize"])
        out = capsys.readouterr().out
        assert code == 0
        assert "worst arrivals" in out
        assert "out" in out

    def test_critical_path_report(self, inv_file, capsys):
        code = main(["timing", inv_file, "--tech", "cmos3",
                     "--input", "in=0:rise", "--report", "out",
                     "--no-characterize", "--slope", "500p"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path to out" in out
        assert "path delay" in out

    def test_model_selection(self, inv_file, capsys):
        code = main(["timing", inv_file, "--tech", "cmos3",
                     "--input", "in=0", "--model", "lumped-rc",
                     "--no-characterize"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lumped-rc" in out

    def test_missing_input_is_error(self, inv_file, capsys):
        code = main(["timing", inv_file, "--tech", "cmos3",
                     "--no-characterize"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


NAND_SIM = """\
i a b
n a mid y 2 8
n b gnd mid 2 8
p a vdd y 2 8
p b vdd y 2 8
"""


@pytest.fixture
def nand_file(tmp_path):
    path = tmp_path / "nand.sim"
    path.write_text(NAND_SIM)
    return str(path)


class TestSweepCommand:
    def _vec_file(self, tmp_path, text):
        path = tmp_path / "vecs.txt"
        path.write_text(text)
        return str(path)

    def test_vector_file_sweep(self, nand_file, tmp_path, capsys):
        vecs = self._vec_file(
            tmp_path, "@together a=0 b=0\n@a-late a=300p b=0\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep summary: 2 scenario(s)" in out
        assert "a-late" in out and "together" in out
        assert "worst vector:" in out
        assert "critical path to" in out

    def test_profile_output_shape(self, nand_file, tmp_path, capsys):
        vecs = self._vec_file(tmp_path, "a=0 b=0\na=100p b=0\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs, "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "batch perf (2 scenario(s), shared analyzer)" in out
        assert "hit rate" in out
        assert "model evals per scenario" in out
        assert "total (2)" in out

    def test_malformed_vector_file_exit_code(self, nand_file, tmp_path,
                                             capsys):
        vecs = self._vec_file(tmp_path, "a=0 b=0\na=notatime b=0\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        assert "vecs.txt:2" in err  # file and line of the bad vector

    def test_vector_with_unknown_node_exit_code(self, nand_file, tmp_path,
                                                capsys):
        vecs = self._vec_file(tmp_path, "a=0 b=0 ghost=1n\n@bad a=0 b=0 "
                                        "bogus=2n\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        # The message names the offending vector and the unknown node.
        assert "v0" in err
        assert "unknown node 'ghost'" in err

    def test_missing_source_is_error(self, nand_file, capsys):
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize"])
        err = capsys.readouterr().err
        assert code == 2
        assert "exactly one vector source" in err

    def test_conflicting_sources_are_error(self, nand_file, tmp_path,
                                           capsys):
        vecs = self._vec_file(tmp_path, "a=0 b=0\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs,
                     "--random", "4"])
        assert code == 2

    def test_cartesian_axes(self, nand_file, capsys):
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "b=0",
                     "--sweep", "a=0,200p,400p", "--no-critical-path"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep summary: 3 scenario(s)" in out

    def test_random_vectors_are_seeded(self, nand_file, capsys):
        args = ["sweep", nand_file, "--tech", "cmos3", "--no-characterize",
                "--random", "4", "--seed", "9", "--span", "500p",
                "--no-critical-path"]
        code = main(args)
        first = capsys.readouterr().out
        assert code == 0
        assert "sweep summary: 4 scenario(s)" in first
        main(args)
        assert capsys.readouterr().out == first

    def test_random_with_every_input_pinned_is_error(self, nand_file,
                                                     capsys):
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "a=0", "--input",
                     "b=0", "--random", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no free inputs" in err

    def test_watch_restricts_ranking(self, nand_file, capsys):
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--random", "2",
                     "--watch", "y", "--no-critical-path"])
        out = capsys.readouterr().out
        assert code == 0
        assert "watching y" in out

    def test_shipped_example_files(self, capsys):
        """The examples/ vector file and netlist stay valid."""
        code = main(["sweep", str(EXAMPLES / "nand2.sim"), "--tech",
                     "cmos3", "--no-characterize", "--vectors",
                     str(EXAMPLES / "nand2.vec"), "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep summary: 5 scenario(s)" in out
        assert "fall-race" in out


class TestHazardsCommand:
    def test_clean_circuit(self, inv_file, capsys):
        code = main(["hazards", inv_file, "--tech", "cmos3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no hazards" in out

    def test_hazard_with_strict_exit(self, tmp_path, capsys):
        sim = (
            "i sel wr pre din drv\n"
            "e sel store bigbus 2 4\n"
            "e wr din store 2 4\n"
            "e pre drv bigbus 2 4\n"
            "C store gnd 10\n"
            "C bigbus gnd 100\n"
        )
        path = tmp_path / "share.sim"
        path.write_text(sim)
        code = main(["hazards", str(path), "--tech", "cmos3",
                     "--set", "wr=0", "--set", "pre=0", "--strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "store" in out


class TestCharacterizeCommand:
    def test_dump_tables(self, tmp_path, capsys):
        out_file = tmp_path / "tables.json"
        code = main(["characterize", "--tech", "cmos3",
                     "-o", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "slope tables" in out
        data = json.loads(out_file.read_text())
        assert "tables" in data
        assert data["source"] == "characterized:cmos3"


class TestJobsFlag:
    """--jobs N must change nothing about the output, only who computes it."""

    def _vec_file(self, tmp_path, text):
        path = tmp_path / "vecs.txt"
        path.write_text(text)
        return str(path)

    def test_sweep_jobs_output_is_byte_identical(self, nand_file, tmp_path,
                                                 capsys):
        vecs = self._vec_file(
            tmp_path, "@t0 a=0 b=0\n@t1 a=300p b=0\n@t2 a=0 b=150p\n"
                      "@t3 a=70p b=70p\n")
        base = ["sweep", nand_file, "--tech", "cmos3", "--no-characterize",
                "--vectors", vecs]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_sweep_jobs_profile_reports_parallel(self, nand_file, tmp_path,
                                                 capsys):
        vecs = self._vec_file(tmp_path, "@t0 a=0 b=0\n@t1 a=300p b=0\n")
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", vecs,
                     "--jobs", "2", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "parallel: scenario" in out

    def test_timing_jobs_output_is_byte_identical(self, nand_file, capsys):
        base = ["timing", nand_file, "--tech", "cmos3", "--no-characterize",
                "--input", "a=0", "--input", "b=120p", "--report", "y"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_jobs_must_be_positive(self, nand_file, capsys):
        code = main(["timing", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "a=0", "--input",
                     "b=0", "--jobs", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTraceFlags:
    def test_timing_trace_writes_valid_file(self, nand_file, tmp_path,
                                            capsys):
        from repro.trace.export import validate_trace_file

        trace = tmp_path / "run.json"
        code = main(["timing", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "a=0", "--input",
                     "b=0", "--trace", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out and "event(s) written" in out
        count = validate_trace_file(str(trace))
        assert count > 0
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "analyze" in names
        assert "stage_eval" in names
        assert "kernel_batch" in names

    def test_timing_trace_summary_prints_table(self, nand_file, capsys):
        code = main(["timing", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "a=0", "--input",
                     "b=0", "--trace-summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary" in out
        assert "analyze" in out
        assert "self" in out

    def test_tracer_uninstalled_after_run(self, nand_file, capsys):
        from repro.trace import spans as trace_spans

        main(["timing", nand_file, "--tech", "cmos3", "--no-characterize",
              "--input", "a=0", "--input", "b=0", "--trace-summary"])
        capsys.readouterr()
        assert trace_spans.current() is None

    def test_sweep_trace_jobs2_has_worker_spans(self, nand_file, tmp_path,
                                                capsys):
        import os

        vecs = tmp_path / "vecs.txt"
        vecs.write_text("".join(f"a={i * 10}p b=0\n" for i in range(12)))
        trace = tmp_path / "sweep.json"
        code = main(["sweep", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--vectors", str(vecs),
                     "--jobs", "2", "--trace", str(trace)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(trace.read_text())
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert os.getpid() in pids
        assert len(pids - {os.getpid()}) >= 1  # worker span(s) merged
        names = {e["name"] for e in payload["traceEvents"]}
        assert "vector_chunk" in names
        assert "sweep" in names

    def test_aborted_run_still_flushes_profile_and_trace(self, nand_file,
                                                         tmp_path, capsys):
        trace = tmp_path / "aborted.json"
        code = main(["timing", nand_file, "--tech", "cmos3",
                     "--no-characterize", "--input", "nosuch=0",
                     "--profile", "--trace", str(trace)])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "partial: run aborted" in captured.out
        assert trace.exists()  # partial trace written by the finally

    def test_aborted_sweep_flushes_partial_profile(self, nand_file,
                                                   tmp_path, capsys):
        from unittest import mock

        vecs = tmp_path / "vecs.txt"
        vecs.write_text("a=0 b=0\na=100p b=0\n")

        from repro.core.timing import TimingAnalyzer

        real = TimingAnalyzer.analyze_many
        calls = {"n": 0}

        def explode(self, scenarios, delta=False):
            calls["n"] += 1
            raise RuntimeError("mid-sweep abort")

        with mock.patch.object(TimingAnalyzer, "analyze_many", explode):
            with pytest.raises(RuntimeError):
                main(["sweep", nand_file, "--tech", "cmos3",
                      "--no-characterize", "--vectors", str(vecs),
                      "--profile"])
        out = capsys.readouterr().out
        assert calls["n"] == 1
        assert "partial: run aborted" in out
        assert real is TimingAnalyzer.analyze_many  # patch reverted


class TestFailurePaths:
    """Every subcommand hitting an engine error must exit 2 with a
    one-line ``error: …`` diagnostic — never a raw traceback.  The
    handler lives in ``main()``; these tests drive each subcommand's
    most likely failure through it."""

    MISSING = "no_such_netlist.sim"

    @pytest.mark.parametrize("argv", [
        ["validate", MISSING, "--tech", "cmos3"],
        ["switch", MISSING, "--tech", "cmos3"],
        ["timing", MISSING, "--tech", "cmos3", "--no-characterize",
         "--input", "a=0"],
        ["sweep", MISSING, "--tech", "cmos3", "--no-characterize",
         "--random", "2"],
        ["hazards", MISSING, "--tech", "cmos3"],
    ], ids=["validate", "switch", "timing", "sweep", "hazards"])
    def test_missing_netlist_exits_2(self, argv, capsys):
        code = main(argv)
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "cannot read netlist" in err
        assert self.MISSING in err
        assert "Traceback" not in err

    def test_missing_spice_netlist_exits_2(self, capsys):
        code = main(["validate", "no_such.spice", "--tech", "cmos3"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read netlist" in err

    def test_malformed_sim_names_line(self, tmp_path, capsys):
        path = tmp_path / "broken.sim"
        path.write_text("e a gnd y 2 8\nz what is this\n")
        code = main(["validate", str(path), "--tech", "cmos3"])
        err = capsys.readouterr().err
        assert code == 2
        assert "broken.sim:2" in err
        assert "unknown record type" in err

    def test_timing_trace_unwritable_exits_2(self, tmp_path, capsys):
        sim = tmp_path / "inv.sim"
        sim.write_text(INVERTER_SIM)
        trace = tmp_path / "no_such_dir" / "run.json"
        code = main(["timing", str(sim), "--tech", "cmos3",
                     "--no-characterize", "--input", "in=0",
                     "--trace", str(trace)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot write trace file" in err
        assert "Traceback" not in err

    def test_characterize_output_unwritable_exits_2(self, tmp_path, capsys):
        out = tmp_path / "no_such_dir" / "tables.json"
        code = main(["characterize", "--tech", "cmos3", "-o", str(out)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestReplayFailurePaths:
    """``verify --replay`` on missing/corrupt artifacts: clean exit 2,
    diagnostic names the offending path (satellite of DESIGN.md §6)."""

    def test_missing_manifest(self, capsys):
        code = main(["verify", "--tech", "cmos3",
                     "--replay", "no_such_manifest.json"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read manifest" in err
        assert "no_such_manifest.json" in err

    def test_corrupt_manifest_json(self, tmp_path, capsys):
        manifest = tmp_path / "case.json"
        manifest.write_text("{not json")
        code = main(["verify", "--tech", "cmos3",
                     "--replay", str(manifest)])
        err = capsys.readouterr().err
        assert code == 2
        assert "malformed manifest" in err

    def test_manifest_missing_keys(self, tmp_path, capsys):
        manifest = tmp_path / "case.json"
        manifest.write_text(json.dumps({"case": "c0"}))
        code = main(["verify", "--tech", "cmos3",
                     "--replay", str(manifest)])
        err = capsys.readouterr().err
        assert code == 2
        assert "missing" in err

    def test_manifest_references_missing_sim(self, tmp_path, capsys):
        manifest = tmp_path / "case.json"
        manifest.write_text(json.dumps({
            "case": "c0", "sim": "gone.sim", "vec": "gone.vec",
            "modes": ["brute"], "model": "rc-tree"}))
        code = main(["verify", "--tech", "cmos3",
                     "--replay", str(manifest)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read netlist" in err
        assert "gone.sim" in err

    def test_manifest_references_missing_vec(self, tmp_path, capsys):
        sim = tmp_path / "c0.sim"
        sim.write_text("i a\ne a gnd y 2 8\np a vdd y 2 12\n")
        manifest = tmp_path / "case.json"
        manifest.write_text(json.dumps({
            "case": "c0", "sim": "c0.sim", "vec": "gone.vec",
            "modes": ["brute"], "model": "rc-tree"}))
        code = main(["verify", "--tech", "cmos3",
                     "--replay", str(manifest)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read vector file" in err


class TestTrendFailurePaths:
    """``trend`` over corrupt artifacts: exit 2, path named, no
    traceback."""

    def _bench(self, tmp_path):
        bench = tmp_path / "benchmarks"
        bench.mkdir(exist_ok=True)
        (bench / "BENCH_demo.json").write_text(json.dumps({"speed": 1.0}))
        return bench

    def test_corrupt_bench_json(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        (bench / "BENCH_demo.json").write_text("{oops")
        code = main(["trend", "--bench-dir", str(bench)])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot parse" in err
        assert "BENCH_demo.json" in err

    def test_corrupt_history_line(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        history = bench / "BENCH_history.jsonl"
        history.write_text('{"timestamp": "t", "metrics": {}}\n{broken\n')
        code = main(["trend", "--bench-dir", str(bench)])
        err = capsys.readouterr().err
        assert code == 2
        assert "bad history line" in err
        assert "BENCH_history.jsonl:2" in err

    def test_history_line_with_bad_metrics(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        history = bench / "BENCH_history.jsonl"
        history.write_text('{"timestamp": "t", "metrics": {"x": "nan?"}}\n')
        # a string metric that does not parse as float
        history.write_text(
            '{"timestamp": "t", "metrics": {"x": "not-a-number"}}\n')
        code = main(["trend", "--bench-dir", str(bench)])
        err = capsys.readouterr().err
        assert code == 2
        assert "bad history line" in err

    def test_history_unwritable(self, tmp_path, capsys):
        bench = self._bench(tmp_path)
        code = main(["trend", "--bench-dir", str(bench),
                     "--history", str(tmp_path / "no_dir" / "h.jsonl")])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot write history file" in err


class TestTrendCommand:
    def _bench_dir(self, tmp_path, value):
        bench = tmp_path / "benchmarks"
        bench.mkdir(exist_ok=True)
        (bench / "BENCH_demo.json").write_text(
            json.dumps({"speed": value, "nested": {"count": 3}}))
        return bench

    def test_baseline_then_delta(self, tmp_path, capsys):
        bench = self._bench_dir(tmp_path, 2.0)
        code = main(["trend", "--bench-dir", str(bench)])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline recorded" in out
        assert (bench / "BENCH_history.jsonl").exists()

        self._bench_dir(tmp_path, 3.0)  # speed 2.0 → 3.0
        code = main(["trend", "--bench-dir", str(bench)])
        out = capsys.readouterr().out
        assert code == 0
        assert "demo.speed" in out
        assert "+50.0%" in out
        history = (bench / "BENCH_history.jsonl").read_text().splitlines()
        assert len(history) == 2

    def test_no_record_leaves_history_untouched(self, tmp_path, capsys):
        bench = self._bench_dir(tmp_path, 2.0)
        code = main(["trend", "--bench-dir", str(bench), "--no-record"])
        assert code == 0
        assert not (bench / "BENCH_history.jsonl").exists()
        capsys.readouterr()

    def test_missing_dir_is_error(self, tmp_path, capsys):
        code = main(["trend", "--bench-dir", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_real_bench_dir_parses(self, capsys, tmp_path):
        # the repo's own BENCH_*.json baselines must always flatten
        bench = pathlib.Path(__file__).parent.parent / "benchmarks"
        history = tmp_path / "history.jsonl"
        code = main(["trend", "--bench-dir", str(bench),
                     "--history", str(history), "--no-record"])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline recorded" in out
