"""Property-based differential tests for delta-driven sweeps (ISSUE 7).

Random feed-forward gate networks × random vector batches, asserting the
dirty-cone delta engine agrees bit-identically with the full batch and
with per-vector fresh analyzers — across every analysis order, across
mid-sequence cache invalidation (including a real ``resize_transistor``
edit), and on both RC-tree kernel backends.  Plus the pickled
template-export round trip the worker boundary depends on.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import VECTOR_ORDERS, ExplicitVectors, RandomVectors, run_sweep
from repro.batch.vectors import Vector
from repro.circuits import shift_register
from repro.core.timing import InputSpec, TimingAnalyzer
from repro.core.timing.clocking import (ClockSchedule, clock_input_spec,
                                        setup_checks)
from repro.parallel import AnalyzerSpec
from repro.tech import CMOS3

from .test_batch_differential import assert_identical
from .test_properties import build_dag, gate_recipe

#: Arrival times on a coarse deterministic grid; slopes from a small set.
_TIME_STEP = 0.1e-9
_SLOPES = (0.0, 0.2e-9, 1.0e-9)

vector_recipe = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20),
              st.integers(0, len(_SLOPES) - 1)),
    min_size=2, max_size=5)


def _vectors_from_recipe(inputs, recipe):
    vectors = []
    for ticks in recipe:
        slope = _SLOPES[ticks[-1]]
        vectors.append({
            name: InputSpec(arrival_rise=ticks[i] * _TIME_STEP,
                            arrival_fall=ticks[i] * _TIME_STEP,
                            slope=slope)
            for i, name in enumerate(inputs)
        })
    return vectors


class TestDeltaEqualsFull:
    @settings(max_examples=12, deadline=None)
    @given(recipe=gate_recipe, vecs=vector_recipe)
    def test_delta_batch_equals_full_and_fresh(self, recipe, vecs):
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        vectors = _vectors_from_recipe(inputs, vecs)

        delta = TimingAnalyzer(net).analyze_many(vectors, delta=True)
        full = TimingAnalyzer(net).analyze_many(vectors)
        for index, spec in enumerate(vectors):
            fresh = TimingAnalyzer(net).analyze(spec)
            assert_identical(delta[index], fresh, ("delta-vs-fresh", index))
            assert_identical(delta[index], full[index], ("delta-vs-full",
                                                         index))

    @settings(max_examples=8, deadline=None)
    @given(recipe=gate_recipe, seed=st.integers(0, 10 ** 6),
           order=st.sampled_from(VECTOR_ORDERS))
    def test_sweep_delta_and_order_invariant(self, recipe, seed, order):
        """run_sweep(delta=True) under every ordering against the plain
        sweep: same labels, same arrivals, source order preserved."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        source = ExplicitVectors(list(RandomVectors(
            input_names=inputs, count=4, seed=seed, span=1e-9,
            slope=0.3e-9)))
        plain = run_sweep(net, source)
        sweep = run_sweep(net, source, delta=True, order=order)
        assert ([o.label for o in sweep.outcomes]
                == [o.label for o in plain.outcomes])
        for expected, outcome in zip(plain.outcomes, sweep.outcomes):
            assert_identical(outcome.result, expected.result,
                             (order, outcome.label))

    @settings(max_examples=6, deadline=None)
    @given(recipe=gate_recipe, vecs=vector_recipe,
           break_at=st.integers(0, 3))
    def test_mid_sequence_invalidation(self, recipe, vecs, break_at):
        """invalidate_caches() (after a real geometry edit) mid-sequence:
        the delta engine must rebuild and keep matching fresh analyzers
        for the edited network."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        vectors = _vectors_from_recipe(inputs, vecs)
        break_at = min(break_at, len(vectors) - 1)

        analyzer = TimingAnalyzer(net)
        for index, spec in enumerate(vectors):
            if index == break_at:
                device = net.transistors[0]
                net.resize_transistor(device.name, width=device.width * 2)
                analyzer.invalidate_caches()
            result = analyzer.analyze_delta(spec)
            assert_identical(result, TimingAnalyzer(net).analyze(spec),
                             ("invalidate", index))

    @settings(max_examples=6, deadline=None)
    @given(recipe=gate_recipe, vecs=vector_recipe)
    def test_delta_on_python_kernel(self, recipe, vecs):
        """The dirty cone must be kernel-agnostic: delta on the scalar
        reference kernel equals full analysis on the same kernel."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        vectors = _vectors_from_recipe(inputs, vecs)
        delta = TimingAnalyzer(net, kernel="python").analyze_many(
            vectors, delta=True)
        full = TimingAnalyzer(net, kernel="python").analyze_many(vectors)
        for index in range(len(vectors)):
            assert_identical(delta[index], full[index], index)


class TestClockedGreedySharded:
    """The previously uncovered combination: a clocked circuit swept with
    dirty-cone delta, greedy vector ordering, AND scenario sharding at
    once (ISSUE 8 S1).  Arrivals and the setup-check reports must both be
    bit-identical to the plain serial sweep."""

    @staticmethod
    def _clocked_sweep_inputs(stages, seed):
        net = shift_register(CMOS3, stages=stages)
        schedule = ClockSchedule.two_phase(2e-9, separation=0.1e-9,
                                           clock_slope=0.1e-9)
        pinned = {name: clock_input_spec(schedule.phase(name),
                                         schedule.clock_slope)
                  for name in ("phi1", "phi2")}
        rng = random.Random(seed)
        vectors = []
        for index in range(4):
            time = rng.randint(0, 10) * _TIME_STEP
            din = InputSpec(arrival_rise=time, arrival_fall=time,
                            slope=_SLOPES[rng.randrange(len(_SLOPES))])
            vectors.append(Vector(label=f"v{index}",
                                  inputs={"din": din, **pinned}))
        return net, schedule, vectors

    @settings(max_examples=4, deadline=None)
    @given(stages=st.integers(1, 4), seed=st.integers(0, 10 ** 6))
    def test_clocked_delta_greedy_sharded_equals_plain(self, stages, seed):
        net, schedule, vectors = self._clocked_sweep_inputs(stages, seed)
        clocks = {"phi1": "phi1", "phi2": "phi2"}
        plain = run_sweep(net, ExplicitVectors(vectors))
        fancy = run_sweep(net, ExplicitVectors(vectors), delta=True,
                          order="greedy", jobs=2)
        assert ([o.label for o in fancy.outcomes]
                == [o.label for o in plain.outcomes])
        for expected, outcome in zip(plain.outcomes, fancy.outcomes):
            assert_identical(outcome.result, expected.result,
                             ("clocked-greedy-sharded", outcome.label))
            want = [str(c) for c in setup_checks(net, expected.result,
                                                 clocks, schedule)]
            got = [str(c) for c in setup_checks(net, outcome.result,
                                                clocks, schedule)]
            assert got == want, (outcome.label, got, want)


class TestTemplateRoundTrip:
    @settings(max_examples=6, deadline=None)
    @given(recipe=gate_recipe, vecs=vector_recipe)
    def test_export_seed_survives_pickle(self, recipe, vecs):
        """export_templates() → pickle → seed_templates() (the worker
        boundary): the seeded analyzer answers identically and compiles
        nothing the parent already compiled."""
        net, inputs, _, _ = build_dag(CMOS3, recipe)
        vectors = _vectors_from_recipe(inputs, vecs)

        parent = TimingAnalyzer(net)
        expected = parent.analyze_many(vectors, delta=True)
        payload = pickle.dumps(AnalyzerSpec.from_analyzer(parent),
                               protocol=pickle.HIGHEST_PROTOCOL)

        spec = pickle.loads(payload)
        child = spec.build()
        results = child.analyze_many(vectors, delta=True)
        for index in range(len(vectors)):
            assert_identical(results[index], expected[index], index)
        if parent.export_templates():
            assert child.perf.get("tree_template_misses") == 0, (
                "seeded worker recompiled templates the parent shipped")
