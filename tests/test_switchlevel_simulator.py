"""Tests for the event-driven switch-level simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    adder_assignments,
    adder_result,
    inverter_chain,
    mux_tree,
    pass_chain,
    precharged_bus,
    ring_oscillator,
    ripple_carry_adder,
    xor_gate,
)
from repro.errors import SimulationError
from repro.netlist import Network
from repro.switchlevel import Logic, SwitchSimulator, exhaustive_truth_table
from repro.tech import CMOS3, NMOS4, DeviceKind


class TestBasics:
    def test_initial_everything_x(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 2))
        assert sim.value("out") is Logic.X

    def test_rails_fixed(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 1))
        assert sim.value("vdd") is Logic.ONE
        assert sim.value("gnd") is Logic.ZERO

    def test_cannot_drive_rails(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 1))
        with pytest.raises(SimulationError):
            sim.set_input("vdd", 0)

    def test_input_coercion(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 1))
        sim.set_input("in", True)
        sim.settle()
        assert sim.value("out") is Logic.ZERO
        sim.set_input("in", "x")
        sim.settle()
        assert sim.value("out") is Logic.X

    def test_bad_input_value(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 1))
        with pytest.raises(SimulationError):
            sim.set_input("in", 7)

    def test_run_shorthand(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 3))
        values = sim.run(**{"in": 0})
        assert values["out"] is Logic.ONE

    def test_trace_records_changes(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 2))
        sim.set_input("in", 1)
        trace = sim.settle()
        assert {"n1", "out"} <= trace.changed_nodes()

    def test_resettling_same_input_no_events(self):
        sim = SwitchSimulator(inverter_chain(CMOS3, 2))
        sim.run(**{"in": 1})
        sim.set_input("in", 1)
        trace = sim.settle()
        assert trace.events == []

    def test_initial_values_respected(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "in", "store")
        net.mark_input("en", "in")
        sim = SwitchSimulator(net, initial={"store": Logic.ONE})
        sim.run(en=0, **{"in": 0})
        assert sim.value("store") is Logic.ONE


class TestChains:
    @pytest.mark.parametrize("tech", [CMOS3, NMOS4], ids=["cmos", "nmos"])
    @pytest.mark.parametrize("stages", [1, 2, 5])
    def test_inverter_chain_polarity(self, tech, stages):
        sim = SwitchSimulator(inverter_chain(tech, stages))
        values = sim.run(**{"in": 1})
        expected = Logic.ONE if stages % 2 == 0 else Logic.ZERO
        assert values["out"] is expected

    def test_pass_chain_propagates_when_enabled(self):
        sim = SwitchSimulator(pass_chain(CMOS3, 4))
        values = sim.run(en=1, **{"in": 0})
        assert values["out"] is Logic.ONE  # driver inverts

    def test_pass_chain_blocks_when_disabled(self):
        sim = SwitchSimulator(pass_chain(CMOS3, 4))
        values = sim.run(en=0, **{"in": 0})
        assert values["out"] is Logic.X  # stale charge, never driven


class TestSequencing:
    def test_bus_precharge_then_discharge(self):
        net = precharged_bus(NMOS4, drivers=2)
        sim = SwitchSimulator(net)
        # Precharge phase: phi high, drivers off.
        sim.run(phi=1, d0=0, en0=0, d1=0, en1=0)
        assert sim.value("bus") is Logic.ONE
        # Evaluate: phi low; the bus holds its charge.
        sim.run(phi=0)
        assert sim.value("bus") is Logic.ONE
        # One driver discharges it.
        sim.run(d0=1, en0=1)
        assert sim.value("bus") is Logic.ZERO

    def test_dynamic_storage_in_shift_register(self):
        from repro.circuits import shift_register
        net = shift_register(NMOS4, 1)
        sim = SwitchSimulator(net)
        # Load a 0 through phase 1 (q follows after phase 2).
        sim.run(din=0, phi1=1, phi2=0)
        sim.run(phi1=0, phi2=1)
        assert sim.value("q1") is Logic.ZERO
        # Change din with both clocks low: output must hold.
        sim.run(din=1, phi1=0, phi2=0)
        assert sim.value("q1") is Logic.ZERO


class TestOscillation:
    def test_ring_oscillator_detected(self):
        # Seed known levels: from all-X the ring settles to the (correct)
        # all-X fixpoint; with real values it must cycle and trip the
        # oscillation detector.
        sim = SwitchSimulator(ring_oscillator(CMOS3, 3),
                              initial={"r0": Logic.ZERO, "r1": Logic.ONE,
                                       "r2": Logic.ZERO})
        sim.set_input("en", 1)
        with pytest.raises(SimulationError):
            sim.settle()

    def test_ring_all_x_is_a_fixpoint(self):
        """Ternary semantics: an enabled ring with unknown state settles
        to all-X rather than oscillating."""
        sim = SwitchSimulator(ring_oscillator(CMOS3, 3))
        sim.set_input("en", 1)
        sim.settle()
        assert sim.value("r0") is Logic.X

    def test_disabled_ring_settles(self):
        sim = SwitchSimulator(ring_oscillator(CMOS3, 3))
        sim.set_input("en", 0)
        sim.settle()
        assert sim.value("r0") is Logic.ONE


class TestTruthTables:
    def test_xor_both_technologies(self):
        for tech in (CMOS3, NMOS4):
            rows = exhaustive_truth_table(xor_gate(tech), ["a", "b"], ["out"])
            for bits, outs in rows:
                expected = Logic.from_bool(bool(bits[0] ^ bits[1]))
                assert outs["out"] is expected

    def test_mux_tree_selects(self):
        net = mux_tree(CMOS3, select_bits=2)
        sim = SwitchSimulator(net)
        data = {f"d{i}": (1 if i == 2 else 0) for i in range(4)}
        values = sim.run(s0=0, s0n=1, s1=1, s1n=0, **data)
        assert values["out"] is Logic.ONE
        values = sim.run(s1=0, s1n=1)
        assert values["out"] is Logic.ZERO

    def test_input_limit(self):
        with pytest.raises(SimulationError):
            exhaustive_truth_table(inverter_chain(CMOS3, 1),
                                   [f"i{k}" for k in range(17)], ["out"])


class TestAdderProperty:
    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           cin=st.integers(0, 1))
    def test_eight_bit_addition(self, a, b, cin):
        net = ripple_carry_adder(CMOS3, 8)
        sim = SwitchSimulator(net)
        values = sim.run(**adder_assignments(8, a, b, cin))
        assert adder_result(values, 8) == a + b + cin
