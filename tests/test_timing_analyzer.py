"""Tests for the static timing analyzer."""

import pytest

from repro.circuits import (
    Gates,
    adder_input_names,
    inverter_chain,
    nand_gate,
    ripple_carry_adder,
    xor_gate,
)
from repro.core.models import LumpedRCModel, SlopeModel
from repro.core.timing import (
    InputSpec,
    TimingAnalyzer,
    analyze,
    arrival_table,
    format_critical_path,
    format_worst_paths,
)
from repro.errors import TimingError
from repro.netlist import Network
from repro.switchlevel import Logic, SwitchSimulator
from repro.tech import CMOS3, NMOS4, DeviceKind, Transition


class TestBasicPropagation:
    def test_single_inverter_both_edges(self):
        result = analyze(inverter_chain(CMOS3, 1), {"in": 0.0})
        assert result.arrival("out", Transition.RISE).time > 0
        assert result.arrival("out", Transition.FALL).time > 0

    def test_chain_arrivals_increase(self):
        result = analyze(inverter_chain(CMOS3, 4), {"in": 0.0})
        nodes = ["n1", "n2", "n3", "out"]
        times = [max(result.arrival(n, t).time for t in Transition)
                 for n in nodes]
        assert times == sorted(times)
        assert times[0] > 0

    def test_input_offset_shifts_everything(self):
        base = analyze(inverter_chain(CMOS3, 2), {"in": 0.0})
        shifted = analyze(inverter_chain(CMOS3, 2), {"in": 1e-9})
        for transition in Transition:
            delta = (shifted.arrival("out", transition).time
                     - base.arrival("out", transition).time)
            assert delta == pytest.approx(1e-9, rel=1e-9)

    def test_longer_chains_slower(self):
        short = analyze(inverter_chain(CMOS3, 2), {"in": 0.0})
        long = analyze(inverter_chain(CMOS3, 6), {"in": 0.0})
        assert (long.arrival("out", Transition.RISE).time
                > short.arrival("out", Transition.RISE).time)

    def test_models_differ(self):
        net = inverter_chain(CMOS3, 3)
        lumped = analyze(net, {"in": 0.0}, model=LumpedRCModel())
        slope = analyze(net, {"in": 0.0}, model=SlopeModel())
        assert lumped.model_name == "lumped-rc"
        assert slope.model_name == "slope"
        assert lumped.arrival("out", Transition.FALL).time != pytest.approx(
            slope.arrival("out", Transition.FALL).time)


class TestInputSpecs:
    def test_single_edge_only(self):
        spec = InputSpec(arrival_rise=0.0, arrival_fall=None)
        result = analyze(inverter_chain(CMOS3, 1), {"in": spec})
        assert result.has_arrival("out", Transition.FALL)
        assert not result.has_arrival("out", Transition.RISE)

    def test_input_slope_slows_slope_model(self):
        net = inverter_chain(CMOS3, 1, load_cap=100e-15)
        fast = analyze(net, {"in": InputSpec(slope=0.0)})
        slow = analyze(net, {"in": InputSpec(slope=20e-9)})
        assert (slow.arrival("out", Transition.FALL).time
                > 1.5 * fast.arrival("out", Transition.FALL).time)

    def test_missing_input_rejected(self):
        with pytest.raises(TimingError):
            analyze(nand_gate(CMOS3, 2), {"a0": 0.0})

    def test_supply_as_input_rejected(self):
        with pytest.raises(TimingError):
            analyze(inverter_chain(CMOS3, 1), {"in": 0.0, "vdd": 0.0})

    def test_side_input_without_events(self):
        result = analyze(nand_gate(CMOS3, 2), {
            "a0": 0.0,
            "a1": InputSpec(arrival_rise=None, arrival_fall=None),
        })
        assert result.arrival("out", Transition.FALL).time > 0

    def test_bare_number_means_both_edges(self):
        result = analyze(inverter_chain(CMOS3, 1), {"in": 2e-9})
        assert result.arrival("out", Transition.RISE).time > 2e-9


class TestResultAccess:
    @pytest.fixture
    def result(self):
        return analyze(inverter_chain(CMOS3, 3), {"in": 0.0})

    def test_unknown_arrival_raises(self, result):
        with pytest.raises(TimingError):
            result.arrival("in.bogus", Transition.RISE)

    def test_worst_over_all(self, result):
        event, arrival = result.worst()
        assert arrival.time == max(a.time for a in result.arrivals.values())

    def test_worst_over_subset(self, result):
        event, _ = result.worst(["n1", "n2"])
        assert event.node in ("n1", "n2")

    def test_worst_empty_subset_raises(self, result):
        with pytest.raises(TimingError):
            result.worst([])

    def test_critical_path_starts_at_input(self, result):
        chain = result.critical_path("out", Transition.RISE)
        assert chain[0][0].node == "in"
        assert chain[0][1].is_primary
        assert chain[-1][0].node == "out"

    def test_critical_path_times_monotone(self, result):
        chain = result.critical_path("out", Transition.FALL)
        times = [a.time for _, a in chain]
        assert times == sorted(times)

    def test_critical_path_alternates_edges(self, result):
        chain = result.critical_path("out", Transition.FALL)
        transitions = [e.transition for e, _ in chain]
        for a, b in zip(transitions, transitions[1:]):
            assert a is not b  # inverters flip polarity every stage


class TestStatePruning:
    def test_xor_false_path_pruned(self):
        """With b held low, the nab node never moves; the analyzer must
        find the short (2-stage) path, not the false 4-stage one."""
        net = xor_gate(CMOS3)
        sim = SwitchSimulator(net)
        pre = dict(sim.run(a=0, b=0))
        post = dict(sim.run(a=1))
        inputs = {"a": InputSpec(arrival_rise=0.0, arrival_fall=None),
                  "b": InputSpec(arrival_rise=None, arrival_fall=None)}
        pruned = analyze(net, inputs, states=post, initial_states=pre)
        pessimistic = analyze(net, inputs)
        assert (pruned.arrival("out", Transition.RISE).time
                < 0.7 * pessimistic.arrival("out", Transition.RISE).time)
        # The unchanged internal node has no events at all.
        assert not pruned.has_arrival("nab" if pruned.network.has_node("nab")
                                      else "out.nab", Transition.FALL)

    def test_post_state_gates_transition_direction(self):
        net = inverter_chain(CMOS3, 1)
        sim = SwitchSimulator(net)
        pre = dict(sim.run(**{"in": 0}))
        post = dict(sim.run(**{"in": 1}))
        result = analyze(net, {"in": InputSpec(arrival_rise=0.0,
                                               arrival_fall=None)},
                         states=post, initial_states=pre)
        assert result.has_arrival("out", Transition.FALL)
        assert not result.has_arrival("out", Transition.RISE)


class TestLoopsAndScale:
    def test_timing_loop_detected(self):
        """A cross-coupled latch without state pruning loops forever; the
        visit cap must catch it."""
        net = Network(CMOS3)
        gates = Gates(net)
        gates.nand(["set", "qb"], "q")
        gates.nand(["reset", "q"], "qb")
        net.mark_input("set", "reset")
        with pytest.raises(TimingError):
            analyze(net, {"set": 0.0, "reset": 0.0})

    def test_adder_analyzes_cleanly(self):
        net = ripple_carry_adder(CMOS3, 4)
        result = analyze(net, {n: 0.0 for n in adder_input_names(4)})
        worst_event, worst = result.worst(["s3", "cout"])
        assert worst.time > 0

    def test_nmos_technology_works(self):
        result = analyze(inverter_chain(NMOS4, 2), {"in": 0.0})
        # nMOS rise through the depletion load is much slower than fall.
        rise = result.arrival("out", Transition.RISE)
        n1_fall = result.arrival("n1", Transition.FALL)
        assert rise.time > n1_fall.time


class TestReports:
    @pytest.fixture
    def result(self):
        return analyze(inverter_chain(CMOS3, 3), {"in": 0.0})

    def test_critical_path_report(self, result):
        text = format_critical_path(result, "out", Transition.FALL)
        assert "critical path" in text
        assert "out" in text and "primary input" in text
        assert "path delay" in text

    def test_worst_paths_report(self, result):
        text = format_worst_paths(result, count=3)
        assert "worst arrivals" in text
        assert len(text.splitlines()) == 4

    def test_arrival_table(self, result):
        text = arrival_table(result, nodes=["out", "n1"])
        assert "out" in text and "n1" in text and "rise" in text

    def test_arrival_table_dashes_for_missing(self):
        result = analyze(inverter_chain(CMOS3, 1),
                         {"in": InputSpec(arrival_rise=0.0,
                                          arrival_fall=None)})
        text = arrival_table(result, nodes=["out"])
        assert "-" in text
