"""Tests for stage path enumeration, triggers, and RC-tree construction."""

import pytest

from repro.circuits import Gates, inverter_chain, nand_gate, pass_chain
from repro.core.timing import build_tree, effective_node_cap, enumerate_paths
from repro.errors import TimingError
from repro.netlist import GND, VDD, Network, decompose_stages
from repro.switchlevel import Logic
from repro.tech import CMOS3, NMOS4, DeviceKind, Transition


def stage_for(net, node):
    for stage in decompose_stages(net):
        if stage.contains(node):
            return stage
    raise AssertionError(f"no stage contains {node}")


class TestInverterPaths:
    @pytest.fixture
    def cmos_inv(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y", name="mn")
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y", name="mp")
        net.mark_input("a")
        return net

    def test_fall_path_from_gnd(self, cmos_inv):
        stage = stage_for(cmos_inv, "y")
        paths = enumerate_paths(cmos_inv, stage, "y", Transition.FALL)
        assert len(paths) == 1
        assert paths[0].source == GND
        assert [e.element.name for e in paths[0].elements] == ["mn"]

    def test_rise_path_from_vdd(self, cmos_inv):
        stage = stage_for(cmos_inv, "y")
        paths = enumerate_paths(cmos_inv, stage, "y", Transition.RISE)
        assert paths[0].source == VDD

    def test_fall_trigger_is_gate_rise(self, cmos_inv):
        stage = stage_for(cmos_inv, "y")
        paths = enumerate_paths(cmos_inv, stage, "y", Transition.FALL)
        triggers = {(t.input_node, t.input_transition, t.mechanism)
                    for t in paths[0].triggers}
        assert ("a", Transition.RISE, "on") in triggers

    def test_rise_also_has_off_trigger(self, cmos_inv):
        """The nMOS turning off releases the node to the pMOS: the same
        input event through the complementary mechanism."""
        stage = stage_for(cmos_inv, "y")
        paths = enumerate_paths(cmos_inv, stage, "y", Transition.RISE)
        mechanisms = {t.mechanism for t in paths[0].triggers}
        assert "on" in mechanisms  # pMOS turning on (a falls)
        # The off-trigger for the same event is deduplicated onto one
        # trigger per (node, transition):
        events = [(t.input_node, t.input_transition)
                  for t in paths[0].triggers]
        assert len(events) == len(set(events))

    def test_unknown_target_rejected(self, cmos_inv):
        stage = stage_for(cmos_inv, "y")
        with pytest.raises(TimingError):
            enumerate_paths(cmos_inv, stage, "a", Transition.RISE)


class TestNMOSInverterTriggers:
    def test_rise_is_release_through_load(self):
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y", name="mn")
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd", name="ml")
        net.mark_input("a")
        stage = stage_for(net, "y")
        paths = enumerate_paths(net, stage, "y", Transition.RISE)
        assert len(paths) == 1
        assert paths[0].source == VDD
        (trigger,) = [t for t in paths[0].triggers if t.mechanism == "off"]
        assert trigger.input_node == "a"
        assert trigger.input_transition is Transition.FALL
        # The table the slope model should use: the depletion load's.
        assert trigger.device_kind is DeviceKind.NMOS_DEP


class TestSensitization:
    def test_blocked_series_path_pruned(self):
        """nand2 with one input held low: the pulldown path is dead."""
        net = nand_gate(CMOS3, 2)
        stage = stage_for(net, "out")
        states = {"a1": Logic.ZERO}
        paths = enumerate_paths(net, stage, "out", Transition.FALL, states)
        assert paths == []

    def test_enabled_series_path_kept(self):
        net = nand_gate(CMOS3, 2)
        stage = stage_for(net, "out")
        states = {"a0": Logic.ONE, "a1": Logic.ONE}
        paths = enumerate_paths(net, stage, "out", Transition.FALL, states)
        assert len(paths) == 1

    def test_x_states_permissive(self):
        net = nand_gate(CMOS3, 2)
        stage = stage_for(net, "out")
        paths = enumerate_paths(net, stage, "out", Transition.FALL, None)
        assert len(paths) == 1

    def test_off_trigger_requires_release(self):
        """An opposing device whose gate stays at the conducting level is
        not a release trigger."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y", name="mn")
        net.add_transistor(DeviceKind.PMOS, "b", "vdd", "y", name="mp")
        net.mark_input("a", "b")
        stage = stage_for(net, "y")
        states = {"a": Logic.ONE, "b": Logic.ZERO}  # pulldown stays on
        paths = enumerate_paths(net, stage, "y", Transition.RISE, states)
        for path in paths:
            for trigger in path.triggers:
                if trigger.mechanism == "off":
                    assert trigger.input_node != "a"


class TestPassChains:
    def test_through_trigger_on_driven_source(self):
        net = Network(CMOS3)
        gates = Gates(net)
        gates.pass_nmos("en", "in", "out")
        net.add_capacitor("out", "gnd", 10e-15)
        net.mark_input("in", "en")
        stage = stage_for(net, "out")
        paths = enumerate_paths(net, stage, "out", Transition.RISE,
                                {"en": Logic.ONE})
        (path,) = paths
        assert path.source == "in"
        mechanisms = {t.mechanism for t in path.triggers}
        assert "through" in mechanisms

    def test_full_chain_path_through_driver(self):
        net = pass_chain(CMOS3, 3)
        stage = stage_for(net, "out")
        states = {"en": Logic.ONE}
        paths = enumerate_paths(net, stage, "out", Transition.RISE, states)
        sources = {p.source for p in paths}
        assert VDD in sources  # through the driver's pMOS
        longest = max(len(p.elements) for p in paths)
        assert longest == 4  # pMOS + 3 pass devices


class TestTreeBuilding:
    def test_tree_matches_path_geometry(self):
        net = pass_chain(CMOS3, 2)
        stage = stage_for(net, "out")
        states = {"en": Logic.ONE, "in": Logic.ZERO}
        paths = enumerate_paths(net, stage, "out", Transition.RISE, states)
        path = max(paths, key=lambda p: len(p.elements))
        tree = build_tree(net, stage, path, states)
        assert tree.root == path.source
        assert tree.contains("out")
        assert tree.path_resistance("out") > 0

    def test_tree_caps_match_network(self):
        net = pass_chain(CMOS3, 2)
        stage = stage_for(net, "out")
        states = {"en": Logic.ONE}
        paths = enumerate_paths(net, stage, "out", Transition.RISE, states)
        path = max(paths, key=lambda p: len(p.elements))
        tree = build_tree(net, stage, path, states)
        assert tree.cap("out") == pytest.approx(
            effective_node_cap(net, "out"))

    def test_parallel_transmission_gate_merged(self):
        """Both t-gate devices conduct: the tree edge is their parallel
        combination, lower than either alone."""
        net = Network(CMOS3)
        gates = Gates(net)
        gates.transmission_gate("s", "sn", "in", "out")
        net.add_capacitor("out", "gnd", 20e-15)
        net.mark_input("in", "s", "sn")
        stage = stage_for(net, "out")
        states = {"s": Logic.ONE, "sn": Logic.ZERO}
        paths = enumerate_paths(net, stage, "out", Transition.RISE, states)
        tree = build_tree(net, stage, paths[0], states)
        merged = tree.path_resistance("out")
        # Compare against each device alone.
        singles = []
        for device in net.transistors:
            singles.append(net.tech.resistance(
                device.kind, Transition.RISE, device.width, device.length))
        assert merged < min(singles)
        expected = 1.0 / sum(1.0 / r for r in singles)
        assert merged == pytest.approx(expected)

    def test_side_branch_capacitance_included(self):
        """A conducting side branch loads the path tree."""
        net = Network(CMOS3)
        gates = Gates(net)
        gates.inverter("a", "y")
        gates.pass_nmos("en", "y", "side")
        net.add_capacitor("side", "gnd", 40e-15)
        net.mark_input("a", "en")
        stage = stage_for(net, "y")
        states_on = {"en": Logic.ONE}
        states_off = {"en": Logic.ZERO}
        paths = enumerate_paths(net, stage, "y", Transition.FALL, states_on)
        tree_on = build_tree(net, stage, paths[0], states_on)
        tree_off = build_tree(net, stage, paths[0], states_off)
        assert tree_on.total_cap() > tree_off.total_cap() + 30e-15
        assert tree_on.contains("side")
        assert not tree_off.contains("side")

    def test_branches_can_be_disabled(self):
        net = Network(CMOS3)
        gates = Gates(net)
        gates.inverter("a", "y")
        gates.pass_nmos("en", "y", "side")
        net.mark_input("a", "en")
        stage = stage_for(net, "y")
        paths = enumerate_paths(net, stage, "y", Transition.FALL)
        tree = build_tree(net, stage, paths[0], include_branches=False)
        assert not tree.contains("side")
