"""Tests for the SPICE-subset netlist format."""

import pytest

from repro.errors import ParseError
from repro.netlist import Network, spice_format
from repro.netlist.spice_format import StimulusSpec
from repro.tech import CMOS3, NMOS4, DeviceKind

CMOS_DECK = """\
* a CMOS inverter
.model men NMOS (VTO=0.8 KP=30u LAMBDA=0.02)
.model mp PMOS (VTO=-0.8 KP=12u)
Mn1 out a gnd gnd men W=6u L=2u
Mp1 out a vdd vdd mp W=12u L=2u
Cload out gnd 50f
Va a gnd PULSE(0 5 2n 0.3n 0.3n 8n 20n)
Vdd vdd gnd DC 5
.tran 0.1n 20n
.end
"""


class TestModelCards:
    def test_nmos_model(self):
        net, _ = spice_format.loads(
            ".model men NMOS (VTO=0.8 KP=30u)\nM1 y a gnd gnd men\n", CMOS3)
        assert net.transistors[0].kind is DeviceKind.NMOS_ENH

    def test_negative_vto_is_depletion(self):
        net, _ = spice_format.loads(
            ".model mdep NMOS (VTO=-3 KP=25u)\nM1 vdd y y gnd mdep\n", NMOS4)
        assert net.transistors[0].kind is DeviceKind.NMOS_DEP

    def test_pmos_model(self):
        net, _ = spice_format.loads(
            ".model mp PMOS (VTO=-0.8 KP=12u)\nM1 y a vdd vdd mp\n", CMOS3)
        assert net.transistors[0].kind is DeviceKind.PMOS

    def test_unknown_model_type_rejected(self):
        with pytest.raises(ParseError):
            spice_format.loads(".model d1 DIODE (IS=1e-14)\n", CMOS3)

    def test_unknown_model_reference_rejected(self):
        with pytest.raises(ParseError):
            spice_format.loads("M1 y a gnd gnd mystery\n", CMOS3)


class TestElements:
    def test_full_deck(self):
        net, stimuli = spice_format.loads(CMOS_DECK, CMOS3)
        assert len(net.transistors) == 2
        assert net.node("out").capacitance == pytest.approx(50e-15)
        assert "a" in stimuli
        assert stimuli["a"].kind == "pulse"
        assert {n.name for n in net.inputs()} == {"a"}

    def test_mosfet_terminal_order(self):
        """SPICE M cards are drain gate source bulk."""
        net, _ = spice_format.loads(
            ".model men NMOS (VTO=0.8 KP=30u)\n"
            "M1 drainnode gatenode sourcenode gnd men\n", CMOS3)
        device = net.transistors[0]
        assert device.drain == "drainnode"
        assert device.gate == "gatenode"
        assert device.source == "sourcenode"

    def test_geometry_parameters(self):
        net, _ = spice_format.loads(
            ".model men NMOS (VTO=0.8 KP=30u)\n"
            "M1 y a gnd gnd men W=8u L=2u\n", CMOS3)
        assert net.transistors[0].width == pytest.approx(8e-6)

    def test_resistor_and_capacitor(self):
        net, _ = spice_format.loads(
            "R1 a b 4.7k\nC1 a b 10p\n", CMOS3)
        assert net.resistors[0].resistance == pytest.approx(4700.0)
        assert net.capacitors[0].capacitance == pytest.approx(10e-12)

    def test_continuation_lines(self):
        net, _ = spice_format.loads(
            ".model men NMOS (VTO=0.8\n+ KP=30u)\nM1 y a gnd gnd men\n",
            CMOS3)
        assert len(net.transistors) == 1

    def test_comments_skipped(self):
        net, _ = spice_format.loads("* nothing here\nR1 a b 1k\n", CMOS3)
        assert len(net.resistors) == 1

    def test_end_stops_parsing(self):
        net, _ = spice_format.loads("R1 a b 1k\n.end\nR2 c d 1k\n", CMOS3)
        assert len(net.resistors) == 1


class TestSources:
    def test_dc_source_on_signal_marks_input(self):
        net, stimuli = spice_format.loads("Vin a gnd DC 5\n", CMOS3)
        assert stimuli["a"].dc_value == pytest.approx(5.0)
        assert net.node("a").role.name == "INPUT"

    def test_rail_source_folded(self):
        net, stimuli = spice_format.loads("Vdd vdd gnd DC 5\n", CMOS3)
        assert stimuli == {}

    def test_pwl_source(self):
        _, stimuli = spice_format.loads(
            "Vin a gnd PWL(0 0 1n 5 2n 5)\n", CMOS3)
        assert stimuli["a"].kind == "pwl"
        assert stimuli["a"].values == (0.0, 0.0, 1e-9, 5.0, 2e-9, 5.0)

    def test_non_ground_referenced_rejected(self):
        with pytest.raises(ParseError):
            spice_format.loads("Vx a b DC 5\n", CMOS3)

    def test_dc_property_guard(self):
        spec = StimulusSpec(kind="pulse", values=(0.0, 5.0))
        with pytest.raises(ParseError):
            spec.dc_value


class TestErrors:
    def test_unsupported_card(self):
        with pytest.raises(ParseError):
            spice_format.loads(".subckt foo a b\n", CMOS3)

    def test_unsupported_element(self):
        with pytest.raises(ParseError):
            spice_format.loads("Lcoil a b 1u\n", CMOS3)

    def test_leading_continuation(self):
        with pytest.raises(ParseError):
            spice_format.loads("+ KP=30u\n", CMOS3)

    def test_bad_model_parameter(self):
        with pytest.raises(ParseError):
            spice_format.loads(".model men NMOS (VTO 0.8)\n", CMOS3)


class TestDumps:
    def test_round_trip_through_text(self):
        net, stimuli = spice_format.loads(CMOS_DECK, CMOS3)
        text = spice_format.dumps(net, stimuli)
        clone, clone_stimuli = spice_format.loads(text, CMOS3)
        assert len(clone.transistors) == 2
        assert clone_stimuli["a"].kind == "pulse"
        assert clone.node("out").capacitance == pytest.approx(50e-15)

    def test_dumps_includes_models(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y")
        text = spice_format.dumps(net)
        assert ".model" in text and "PMOS" in text

    def test_simulatable_deck(self):
        """A parsed deck can be handed straight to the analog engine."""
        from repro.analog import simulate
        from repro.analog.sources import from_spec

        net, stimuli = spice_format.loads(CMOS_DECK, CMOS3)
        drives = {node: from_spec(spec) for node, spec in stimuli.items()}
        result = simulate(net, drives, t_stop=10e-9, steps=400)
        assert result.waveform("out").initial_value() > 4.5
