"""The conformance subsystem end to end (ISSUE 8 tentpole).

Generator determinism and validity, the engine-mode matrix and its
matched-reference bookkeeping, clean-engine conformance across seeds,
and the acceptance gate: an intentionally injected model bug (the
``set_template_delay_scale`` hook in ``rc_tree_model.py``) must be
*caught* by the cross-kernel comparison and *shrunk* to a reproducer of
at most 8 transistors.
"""

import pytest

from repro.core.models import rc_tree_model
from repro.core.timing.stage_graph import StageGraph
from repro.errors import ReproError
from repro.netlist import sim_format
from repro.perf import PerfCounters
from repro.perf.counters import STANDARD_COUNTERS
from repro.tech import CMOS3, NMOS4
from repro.verify import (
    MODES,
    ConformanceConfig,
    ConformanceRunner,
    check_case,
    format_verify_report,
    generate_case,
    mode_from_name,
    parse_modes,
)
from repro.verify.modes import reference_name


@pytest.fixture
def template_bug():
    """Install the injected model bug; always uninstall afterwards."""
    rc_tree_model.set_template_delay_scale(1.02)
    yield
    rc_tree_model.set_template_delay_scale(None)


class TestGenerator:
    def test_same_seed_same_case(self):
        for index in range(6):
            a = generate_case(CMOS3, seed=5, index=index)
            b = generate_case(CMOS3, seed=5, index=index)
            assert a.name == b.name and a.family == b.family
            assert sim_format.dumps(a.network) == sim_format.dumps(b.network)
            assert [v.inputs for v in a.vectors] == [v.inputs
                                                     for v in b.vectors]

    def test_cases_are_valid(self):
        for index in range(10):
            case = generate_case(CMOS3, seed=2, index=index)
            assert case.size > 0
            assert not StageGraph.build(case.network).has_feedback()
            input_names = {n.name for n in case.network.inputs()}
            assert input_names, case.name
            for vector in case.vectors:
                assert set(vector.inputs) == input_names, case.name
                assert any(
                    spec.arrival_rise is not None
                    or spec.arrival_fall is not None
                    for spec in vector.inputs.values()), (
                    f"{case.name}/{vector.label} has no transition")

    def test_clocked_cases_carry_schedule(self):
        clocked = [generate_case(CMOS3, seed=0, index=i) for i in range(30)]
        clocked = [c for c in clocked if c.family == "clocked"]
        assert clocked, "no clocked case in 30 draws"
        for case in clocked:
            assert case.schedule is not None
            assert set(case.clocks) == {"phi1", "phi2"}
            phase = case.schedule.phase("phi1")
            for vector in case.vectors:
                spec = vector.inputs["phi1"]
                assert spec.arrival_rise == phase.rise
                assert spec.arrival_fall == phase.fall

    def test_nmos_technology_supported(self):
        case = generate_case(NMOS4, seed=1, index=0)
        assert case.size > 0


class TestModeRegistry:
    def test_registry_round_trips(self):
        for name, mode in MODES.items():
            assert mode_from_name(name) is mode

    def test_reference_names_resolve(self):
        for kernel in ("numpy", "python"):
            for quantum in (0.0, 0.05):
                name = reference_name(kernel, quantum)
                mode = mode_from_name(name)
                assert mode.is_reference
                assert mode.reference_key == (kernel, quantum)

    def test_matched_reference_shares_key(self):
        for mode in MODES.values():
            assert mode.reference().reference_key == mode.reference_key

    def test_parse_modes(self):
        assert [m.name for m in parse_modes(None)] == list(MODES)
        assert [m.name for m in parse_modes("all")] == list(MODES)
        assert [m.name for m in parse_modes("delta, python")] == [
            "delta", "python"]
        with pytest.raises(ReproError, match="unknown engine mode"):
            parse_modes("warp-drive")


class TestCleanEngine:
    def test_conformance_across_seeds(self):
        # The committed smoke gate in miniature: several seeds, the full
        # matrix, zero discrepancies expected.
        for seed in (0, 7):
            report = ConformanceRunner(
                ConformanceConfig(tech=CMOS3, cases=4, seed=seed)).run()
            assert report.ok, format_verify_report(
                report, ConformanceConfig(tech=CMOS3).modes)

    def test_perf_counters_surface(self):
        perf = PerfCounters()
        runner = ConformanceRunner(
            ConformanceConfig(tech=CMOS3, cases=2, seed=0), perf=perf)
        runner.run()
        assert perf.get("verify_cases") == 2
        assert perf.get("verify_mode_runs") > 0
        assert perf.get("verify_comparisons") > 0
        assert perf.get("verify_invariant_checks") > 0
        # the verify_* vocabulary is part of the standard counter set and
        # renders in the standard table
        for name in perf.counters:
            if name.startswith("verify_"):
                assert name in STANDARD_COUNTERS
        table = perf.format_table()
        assert "verify_cases" in table

    def test_report_formatting_pass(self):
        config = ConformanceConfig(tech=CMOS3, cases=1, seed=0)
        report = ConformanceRunner(config).run()
        text = format_verify_report(report, config.modes)
        assert "conformance: PASS" in text
        assert "1 case(s)" in text


class TestInjectedBug:
    """The acceptance gate: a deliberate model mutation must be caught
    and shrunk to <= 8 transistors."""

    def test_bug_caught_and_shrunk(self, tmp_path, template_bug):
        config = ConformanceConfig(tech=CMOS3, cases=2, seed=0,
                                   out_dir=str(tmp_path))
        report = ConformanceRunner(config).run()
        assert not report.ok, (
            "injected template-delay bug went undetected")
        for failure in report.failures:
            kinds = {d.kind for d in failure.discrepancies}
            assert kinds & {"arrival-time", "arrival-slope"}, kinds
            # caught by the cross-kernel reference comparison
            pairs = {(d.mode_a, d.mode_b) for d in failure.discrepancies}
            assert ("reference", "reference[python]") in pairs, pairs
            assert failure.shrunk is not None
            assert failure.shrunk.size <= 8, (
                f"{failure.case.name}: shrunk reproducer still has "
                f"{failure.shrunk.size} transistors")
            assert len(failure.shrunk.vectors) <= len(failure.case.vectors)
            assert failure.manifest_path is not None

    def test_bug_invisible_without_python_mode(self, template_bug):
        # The mutation scales the template (numpy) path only; with both
        # kernels scaled out of the matrix... the numpy-only modes all
        # inherit the same wrong numbers and still agree.  This pins down
        # *why* the cross-kernel reference pair is in the default matrix.
        case = generate_case(CMOS3, seed=0, index=0)
        numpy_only = parse_modes("reference,incremental,delta,parallel2")
        findings = check_case(case, numpy_only, "rc-tree", PerfCounters())
        assert findings == []
        both = parse_modes("reference,python")
        findings = check_case(case, both, "rc-tree", PerfCounters())
        assert findings, "cross-kernel comparison missed the bug"

    def test_clean_after_hook_cleared(self):
        rc_tree_model.set_template_delay_scale(None)
        case = generate_case(CMOS3, seed=0, index=0)
        findings = check_case(case, parse_modes("reference,python"),
                              "rc-tree", PerfCounters())
        assert findings == []


class TestVerifyCLI:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main
        code = main(["verify", "--cases", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance: PASS" in out

    def test_bug_run_exits_one_and_emits(self, tmp_path, capsys,
                                         template_bug):
        from repro.cli import main
        code = main(["verify", "--cases", "1", "--seed", "0",
                     "--out", str(tmp_path), "--profile"])
        out = capsys.readouterr().out
        assert code == 1
        assert "conformance: FAIL" in out
        assert "verify_discrepancies" in out
        manifests = list(tmp_path.glob("*.json"))
        assert manifests, "no reproducer manifest emitted"
        sims = list(tmp_path.glob("*.sim"))
        vecs = list(tmp_path.glob("*.vec"))
        assert sims and vecs

    def test_bad_flags_rejected(self, capsys):
        from repro.cli import main
        assert main(["verify", "--cases", "0"]) == 2
        assert main(["verify", "--modes", "bogus"]) == 2
        capsys.readouterr()
