"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.tech import CMOS3, NMOS4


@pytest.fixture(scope="session")
def cmos():
    return CMOS3


@pytest.fixture(scope="session")
def nmos():
    return NMOS4


#: Coarse ratio grid: characterization for tests runs in a few seconds.
TEST_RATIOS = [0.05, 0.2, 0.8, 3.0, 12.0, 40.0]


@pytest.fixture(scope="session")
def cmos_char():
    from repro.core.models import characterize_technology
    return characterize_technology(CMOS3, ratios=TEST_RATIOS)


@pytest.fixture(scope="session")
def nmos_char():
    from repro.core.models import characterize_technology
    return characterize_technology(NMOS4, ratios=TEST_RATIOS)
