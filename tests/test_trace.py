"""Tests for the observability subsystem (:mod:`repro.trace`).

Covers the tracer core (nesting, parent links, drain/extend, balance
under exceptions), the Chrome trace_event exporter and its validator,
the bench-trend data layer, and the engine integration rules the design
pins down: spans never leak across scenarios, the delta counters reset
exactly where DESIGN.md §5e says, and worker spans merge onto the parent
timeline.
"""

import json

import pytest

from repro.batch import ExplicitVectors, run_sweep
from repro.circuits import adder_input_names, inverter_chain, \
    ripple_carry_adder
from repro.core.timing import TimingAnalyzer
from repro.errors import TraceError
from repro.tech import CMOS3
from repro.trace import spans as trace_spans
from repro.trace.export import (aggregate_spans, chrome_trace_events,
                                format_trace_summary, validate_trace,
                                validate_trace_file, write_chrome_trace)
from repro.trace.spans import NULL_SCOPE, SpanRecord, Tracer
from repro.trace.trends import (TrendEntry, collect_metrics, flatten_numeric,
                                format_trend_report, load_history,
                                record_entry)


@pytest.fixture
def tracer():
    """An installed tracer, uninstalled again afterwards."""
    t = Tracer()
    trace_spans.install(t)
    yield t
    trace_spans.uninstall()


def record(name, start, duration, pid=1, tid=0, sid=1, parent=-1,
           phase="X", args=None):
    return SpanRecord(name=name, start=start, duration=duration, pid=pid,
                      tid=tid, sid=sid, parent=parent, phase=phase,
                      args=args)


class TestTracer:
    def test_nesting_records_parent_sids(self, tracer):
        with trace_spans.span("outer"):
            with trace_spans.span("inner"):
                pass
        inner, outer = tracer.records
        assert inner.name == "inner"
        assert outer.name == "outer"
        assert inner.parent == outer.sid
        assert outer.parent == -1
        assert inner.start >= outer.start
        assert inner.duration <= outer.duration

    def test_scope_set_adds_args_mid_body(self, tracer):
        with trace_spans.span("analyze", inputs=4) as scope:
            scope.set(visits=17)
        (rec,) = tracer.records
        assert rec.args == {"inputs": 4, "visits": 17}

    def test_instant_records_parent(self, tracer):
        with trace_spans.span("outer"):
            trace_spans.instant("hit", stage=3)
        hit, outer = tracer.records
        assert hit.phase == "i"
        assert hit.duration == 0.0
        assert hit.parent == outer.sid

    def test_disabled_sites_share_null_scope(self):
        assert trace_spans.current() is None
        scope = trace_spans.span("anything", stage=1)
        assert scope is NULL_SCOPE
        with scope as s:
            s.set(ignored=True)
        trace_spans.instant("nothing")  # no tracer: silently dropped

    def test_balanced_after_exception(self, tracer):
        with pytest.raises(ValueError):
            with trace_spans.span("outer"):
                with trace_spans.span("inner"):
                    raise ValueError("boom")
        assert tracer.open_spans == 0
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_drain_and_extend(self, tracer):
        with trace_spans.span("a"):
            pass
        taken = tracer.drain()
        assert [r.name for r in taken] == ["a"]
        assert tracer.records == []
        other = Tracer()
        # extend accepts plain tuples (the pickled wire form)
        other.extend(tuple(r) for r in taken)
        assert other.records[0].name == "a"
        assert isinstance(other.records[0], SpanRecord)

    def test_activate_restores_previous(self):
        first, second = Tracer(), Tracer()
        with trace_spans.activate(first):
            assert trace_spans.current() is first
            with trace_spans.activate(second):
                assert trace_spans.current() is second
            assert trace_spans.current() is first
        assert trace_spans.current() is None

    def test_activate_none_is_passthrough(self):
        first = Tracer()
        with trace_spans.activate(first):
            with trace_spans.activate(None):
                assert trace_spans.current() is first

    def test_disabled_site_cost_requires_tracing_off(self, tracer):
        with pytest.raises(AssertionError):
            trace_spans.disabled_site_cost(iterations=10)

    def test_disabled_site_cost_measures(self):
        cost = trace_spans.disabled_site_cost(iterations=1000)
        assert 0.0 < cost < 1e-4  # well under 100 µs per site


class TestChromeExport:
    def test_events_normalized_to_microseconds(self):
        records = [record("outer", start=10.0, duration=0.002, sid=1),
                   record("inner", start=10.001, duration=0.0005, sid=2,
                          parent=1, args={"stage": 3})]
        events = chrome_trace_events(records)
        outer, inner = events
        assert outer["ts"] == 0.0
        assert outer["dur"] == pytest.approx(2000.0)
        assert inner["ts"] == pytest.approx(1000.0)
        assert inner["args"] == {"stage": 3}
        assert all(e["ph"] == "X" for e in events)

    def test_process_metadata_labels_workers(self):
        records = [record("a", 0.0, 1.0, pid=100),
                   record("b", 0.0, 1.0, pid=200)]
        events = chrome_trace_events(records, parent_pid=100)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert "parent" in names[100]
        assert "worker" in names[200]

    def test_write_validate_round_trip(self, tmp_path, tracer):
        with trace_spans.span("outer"):
            trace_spans.instant("mark")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path), parent_pid=1)
        assert count == validate_trace_file(str(path)) == 3
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"

    @pytest.mark.parametrize("payload, message", [
        ([], "not a JSON object"),
        ({}, "no traceEvents"),
        ({"traceEvents": [{}]}, "has no name"),
        ({"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 0}]},
         "bad phase"),
        ({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                           "ts": -1.0, "dur": 1.0}]}, "bad ts"),
        ({"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                           "ts": 0.0}]}, "bad dur"),
    ])
    def test_validator_rejects(self, payload, message):
        with pytest.raises(TraceError, match=message):
            validate_trace(payload)

    def test_self_time_is_exact(self):
        # outer (10s) contains two 3s children; one child has a 1s
        # grandchild that must NOT be charged to outer.
        records = [
            record("outer", 0.0, 10.0, sid=1),
            record("child", 1.0, 3.0, sid=2, parent=1),
            record("child", 5.0, 3.0, sid=3, parent=1),
            record("grand", 5.5, 1.0, sid=4, parent=3),
        ]
        stats = {s.name: s for s in aggregate_spans(records)}
        assert stats["outer"].self_time == pytest.approx(4.0)
        assert stats["child"].self_time == pytest.approx(5.0)
        assert stats["child"].count == 2
        assert stats["child"].total == pytest.approx(6.0)

    def test_self_time_keys_on_pid(self):
        # Same sids in two processes: parent links must not cross pids.
        records = [
            record("outer", 0.0, 10.0, sid=1, pid=1),
            record("other", 0.0, 8.0, sid=1, pid=2),
            record("child", 1.0, 2.0, sid=2, parent=1, pid=2),
        ]
        stats = {s.name: s for s in aggregate_spans(records)}
        assert stats["outer"].self_time == pytest.approx(10.0)
        assert stats["other"].self_time == pytest.approx(6.0)

    def test_summary_table(self):
        records = [record("analyze", 0.0, 2.0, sid=1),
                   record("mark", 0.5, 0.0, sid=2, parent=1, phase="i")]
        table = format_trace_summary(records)
        assert "analyze" in table
        assert "mark" in table
        assert "2 event(s) from 1 process(es)" in table


class TestTrends:
    def test_flatten_numeric(self):
        flat = flatten_numeric({
            "a": 1, "b": {"c": 2.5, "identical": True},
            "name": "skipped", "list": [1, 2],
            "history": {"dropped": 9},
        })
        assert flat == {"a": 1.0, "b.c": 2.5, "b.identical": 1.0}

    def test_collect_metrics_prefixes_bench_names(self, tmp_path):
        (tmp_path / "BENCH_alpha.json").write_text(
            json.dumps({"speed": 2.0, "nested": {"n": 3},
                        "history": [{"speed": 1.0}]}))
        (tmp_path / "BENCH_beta.json").write_text(json.dumps({"x": 1}))
        metrics = collect_metrics(tmp_path)
        assert metrics == {"alpha.speed": 2.0, "alpha.nested.n": 3.0,
                           "beta.x": 1.0}

    def test_collect_metrics_errors(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            collect_metrics(tmp_path / "missing")
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(TraceError, match="cannot parse"):
            collect_metrics(tmp_path)

    def test_history_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        assert load_history(path) == []
        record_entry(path, {"m": 1.0}, timestamp="t1")
        record_entry(path, {"m": 2.0}, timestamp="t2")
        entries = load_history(path)
        assert [e.timestamp for e in entries] == ["t1", "t2"]
        assert entries[1].metrics == {"m": 2.0}
        assert len(path.read_text().splitlines()) == 2  # append-only

    def test_history_rejects_bad_line(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(TraceError, match="bad history line"):
            load_history(path)

    def test_report_baseline(self):
        report = format_trend_report(
            None, TrendEntry("t1", {"a.x": 1.0, "a.y": 2.0}))
        assert "baseline recorded" in report
        assert "2 metric(s)" in report

    def test_report_deltas_new_and_gone(self):
        previous = TrendEntry("t1", {"same": 5.0, "up": 10.0, "gone": 1.0})
        current = TrendEntry("t2", {"same": 5.0, "up": 15.0, "fresh": 3.0})
        report = format_trend_report(previous, current)
        assert "+50.0%" in report
        assert "new" in report and "gone" in report
        # unchanged metric folded away unless --all
        assert "1 metric(s) within" in report
        assert "same" in format_trend_report(previous, current,
                                             show_all=True)


class TestEngineIntegration:
    """The DESIGN.md §5e / §7 rules: spans follow the run lifecycle and
    the delta counters reset exactly at clear_carryover/invalidate."""

    @pytest.fixture
    def chain(self):
        return inverter_chain(CMOS3, 4)

    def test_analyze_emits_nested_spans(self, chain, tracer):
        analyzer = TimingAnalyzer(chain)
        analyzer.analyze({"in": 0.0})
        names = [r.name for r in tracer.records]
        assert "analyze" in names
        assert "stage_eval" in names
        top = next(r for r in tracer.records if r.name == "analyze")
        assert top.parent == -1
        assert top.args["stage_visits"] > 0
        assert top.args["inputs"] == 1
        stage = next(r for r in tracer.records if r.name == "stage_eval")
        # every stage_eval nests (transitively) under the analyze span
        by_sid = {r.sid: r for r in tracer.records}
        parent = stage
        while parent.parent != -1:
            parent = by_sid[parent.parent]
        assert parent.name == "analyze"
        assert tracer.open_spans == 0

    def test_spans_do_not_leak_across_scenarios(self, chain, tracer):
        analyzer = TimingAnalyzer(chain)
        analyzer.analyze_many([{"in": 0.0}, {"in": 0.1e-9}, {"in": 0.2e-9}],
                              delta=True)
        scenario_spans = [r for r in tracer.records if r.name == "scenario"]
        assert len(scenario_spans) == 3
        assert all(r.parent == -1 for r in scenario_spans)
        assert tracer.open_spans == 0

    def test_spans_balanced_when_analysis_raises(self, chain, tracer):
        analyzer = TimingAnalyzer(chain)
        with pytest.raises(Exception):
            analyzer.analyze({"no_such_input": 0.0})
        assert tracer.open_spans == 0
        # the aborted analyze span is still recorded (flushable buffer)
        assert any(r.name == "analyze" for r in tracer.records)

    def test_delta_counters_reset_at_clear_carryover(self, chain):
        analyzer = TimingAnalyzer(chain)
        analyzer.analyze({"in": 0.0})
        warm = analyzer.analyze_delta({"in": 0.1e-9})
        assert warm.perf.get("delta_scenarios") == 1
        assert warm.perf.get("stages_skipped") + \
            warm.perf.get("cone_stages") > 0
        analyzer.clear_carryover()
        cold = analyzer.analyze_delta({"in": 0.2e-9})
        # §5e: no carryover → full analyze, no delta counters at all
        assert cold.perf.get("delta_scenarios") == 0
        assert cold.perf.get("arrivals_reused") == 0
        assert cold.perf.get("stage_visits") > 0

    def test_delta_counters_reset_at_invalidate_caches(self, chain):
        analyzer = TimingAnalyzer(chain)
        analyzer.analyze({"in": 0.0})
        analyzer.invalidate_caches()
        cold = analyzer.analyze_delta({"in": 0.1e-9})
        assert cold.perf.get("delta_scenarios") == 0
        # caches were dropped too: paths re-enumerated from scratch
        assert cold.perf.get("path_enumerations") > 0

    def test_per_run_perf_is_fresh_per_scenario(self, chain):
        analyzer = TimingAnalyzer(chain)
        first = analyzer.analyze({"in": 0.0})
        second = analyzer.analyze({"in": 0.1e-9})
        # run counters are per-scenario snapshots, not cumulative
        assert second.perf.get("stage_visits") == \
            first.perf.get("stage_visits")
        assert analyzer.perf.get("stage_visits") == \
            first.perf.get("stage_visits") + second.perf.get("stage_visits")

    def test_tracer_survives_scenarios_without_cross_talk(self, chain,
                                                          tracer):
        analyzer = TimingAnalyzer(chain)
        analyzer.analyze({"in": 0.0})
        first = len(tracer.records)
        analyzer.analyze({"in": 0.1e-9})
        second = [r for r in tracer.records[first:]]
        # the second run's spans reference only sids recorded after the
        # first run (no parent links reach back into scenario one)
        first_sids = {r.sid for r in tracer.records[:first]}
        for rec in second:
            assert rec.parent == -1 or rec.parent not in first_sids


class TestWorkerSpanMerge:
    def test_parallel_sweep_merges_worker_spans(self, tracer):
        import os
        network = ripple_carry_adder(CMOS3, 8)
        names = adder_input_names(8)
        base = {name: 0.0 for name in names}
        vectors = [dict(base, a3=0.05e-9 * i) for i in range(16)]
        run_sweep(network, ExplicitVectors.from_mappings(vectors), jobs=2)
        pids = {r.pid for r in tracer.records}
        assert os.getpid() in pids
        worker_pids = pids - {os.getpid()}
        assert len(worker_pids) >= 1
        worker_spans = [r for r in tracer.records
                        if r.pid != os.getpid()]
        assert {"vector_chunk", "analyze"} <= {r.name for r in worker_spans}
        # (pid, sid) stays unique after the merge — the invariant exact
        # self-time aggregation depends on
        keys = [(r.pid, r.sid) for r in tracer.records]
        assert len(keys) == len(set(keys))

    def test_untraced_parallel_sweep_ships_no_spans(self):
        assert trace_spans.current() is None
        network = inverter_chain(CMOS3, 12)
        vectors = [{"in": 0.1e-9 * i} for i in range(4)]
        sweep = run_sweep(network, ExplicitVectors.from_mappings(vectors),
                          jobs=2)
        assert len(sweep) == 4

    def test_analyzer_spec_carries_tracing_flag(self, tracer):
        from repro.parallel import AnalyzerSpec
        network = inverter_chain(CMOS3, 2)
        spec = AnalyzerSpec.from_analyzer(TimingAnalyzer(network))
        assert spec.tracing is True
        trace_spans.uninstall()
        spec_off = AnalyzerSpec.from_analyzer(TimingAnalyzer(network))
        assert spec_off.tracing is False
