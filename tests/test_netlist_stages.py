"""Tests for channel-connected-region (stage) decomposition."""

import pytest

from repro.circuits import Gates, inverter_chain, pass_chain
from repro.errors import NetlistError
from repro.netlist import GND, VDD, Network, StageMap, decompose_stages, stage_of
from repro.tech import CMOS3, NMOS4, DeviceKind


class TestBasicDecomposition:
    def test_single_inverter_is_one_stage(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y")
        stages = decompose_stages(net)
        assert len(stages) == 1
        assert stages[0].internal_nodes == frozenset({"y"})
        assert stages[0].boundary_nodes == frozenset({VDD, GND})
        assert stages[0].gate_inputs == frozenset({"a"})

    def test_inverter_chain_stage_per_gate(self):
        net = inverter_chain(CMOS3, 4)
        stages = decompose_stages(net)
        assert len(stages) == 4
        internals = sorted(
            node for stage in stages for node in stage.internal_nodes)
        assert internals == ["n1", "n2", "n3", "out"]

    def test_nand_internal_node_shares_stage(self):
        net = Network(CMOS3)
        gates = Gates(net)
        gates.nand(["a", "b"], "y")
        stages = decompose_stages(net)
        assert len(stages) == 1
        assert "y" in stages[0].internal_nodes
        assert len(stages[0].internal_nodes) == 2  # y + series node

    def test_pass_chain_merges_driver_and_chain(self):
        """The driver inverter and pass devices are channel-connected:
        one big stage."""
        net = pass_chain(CMOS3, 4)
        stages = decompose_stages(net)
        assert len(stages) == 1
        assert {"drv", "p1", "p2", "p3", "out"} <= stages[0].internal_nodes

    def test_inputs_are_boundaries(self):
        """A pass device bridging two marked inputs forms a degenerate
        stage with no internal nodes."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "en", "a", "b")
        net.mark_input("a", "b")
        stages = decompose_stages(net)
        assert len(stages) == 1
        assert stages[0].internal_nodes == frozenset()
        assert stages[0].boundary_nodes == frozenset({"a", "b"})

    def test_input_separates_regions(self):
        """Two structures joined only through a driven input stay separate
        stages."""
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "g1", "x", "mid")
        net.add_transistor(DeviceKind.NMOS_ENH, "g2", "mid", "y")
        net.mark_input("mid")
        stages = decompose_stages(net)
        assert len(stages) == 2
        internals = {frozenset(s.internal_nodes) for s in stages}
        assert internals == {frozenset({"x"}), frozenset({"y"})}

    def test_resistors_merge_regions(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "x")
        net.add_resistor("x", "y", 1e3)
        net.add_capacitor("y", "gnd", 1e-15)
        stages = decompose_stages(net)
        assert len(stages) == 1
        assert stages[0].internal_nodes == frozenset({"x", "y"})
        assert len(stages[0].resistors) == 1

    def test_gate_only_net_not_a_stage(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        stages = decompose_stages(net)
        assert all("a" not in s.internal_nodes for s in stages)


class TestStageProperties:
    def test_self_loop_flag(self):
        """nMOS depletion load: the output gates its own load."""
        net = Network(NMOS4)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd")
        stage = decompose_stages(net)[0]
        assert stage.self_loop

    def test_no_self_loop_for_cmos_inverter(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y")
        assert not decompose_stages(net)[0].self_loop

    def test_all_nodes_union(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y")
        stage = decompose_stages(net)[0]
        assert stage.all_nodes == frozenset({"y", GND})

    def test_deterministic_indexing(self):
        net = inverter_chain(CMOS3, 3)
        first = [s.internal_nodes for s in decompose_stages(net)]
        second = [s.internal_nodes for s in decompose_stages(net)]
        assert first == second


class TestStageLookup:
    def test_stage_of_finds(self):
        net = inverter_chain(CMOS3, 2)
        stages = decompose_stages(net)
        assert stage_of(stages, "n1").contains("n1")

    def test_stage_of_unknown_raises(self):
        net = inverter_chain(CMOS3, 2)
        stages = decompose_stages(net)
        with pytest.raises(NetlistError):
            stage_of(stages, "in")  # an input is not internal to any stage

    def test_stage_map(self):
        net = inverter_chain(CMOS3, 3)
        stage_map = StageMap.build(net)
        assert stage_map.get("out").contains("out")
        assert stage_map.maybe("in") is None
        with pytest.raises(NetlistError):
            stage_map.get("in")

    def test_every_internal_node_in_exactly_one_stage(self):
        net = pass_chain(NMOS4, 5)
        stages = decompose_stages(net)
        counted = {}
        for stage in stages:
            for node in stage.internal_nodes:
                counted[node] = counted.get(node, 0) + 1
        assert all(count == 1 for count in counted.values())
        driven = set(net.externally_driven())
        channel_nodes = set()
        for device in net.transistors:
            channel_nodes.update(device.channel)
        assert set(counted) == channel_nodes - driven
