"""Tests for the three delay models on synthetic stage requests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import (
    LumpedRCModel,
    RCTreeModel,
    SlopeModel,
    StageDelay,
    StageRequest,
    default_step_slope_factor,
    standard_models,
)
from repro.errors import TechnologyError, TimingError
from repro.rctree import RCTree
from repro.tech import CMOS3, DeviceKind, SlopeTable, SlopeTableSet, Transition


def single_node_request(r=1e3, c=1e-12, slope=0.0, tech=CMOS3):
    tree = RCTree("src")
    tree.add_edge("src", "out", r)
    tree.add_cap("out", c)
    return StageRequest(tree=tree, target="out", transition=Transition.FALL,
                        trigger_kind=DeviceKind.NMOS_ENH, input_slope=slope,
                        tech=tech)


def ladder_request(n=4, r=1e3, c=1e-12, slope=0.0, tech=CMOS3):
    tree = RCTree.chain([r] * n, [c] * n)
    return StageRequest(tree=tree, target=f"n{n}",
                        transition=Transition.FALL,
                        trigger_kind=DeviceKind.NMOS_ENH, input_slope=slope,
                        tech=tech)


class TestRequestValidation:
    def test_negative_slope_rejected(self):
        with pytest.raises(TimingError):
            single_node_request(slope=-1e-9)

    def test_target_must_be_in_tree(self):
        tree = RCTree("src")
        tree.add_edge("src", "a", 1e3)
        with pytest.raises(TimingError):
            StageRequest(tree=tree, target="ghost",
                         transition=Transition.RISE,
                         trigger_kind=DeviceKind.PMOS, input_slope=0.0,
                         tech=CMOS3)

    def test_stage_delay_validation(self):
        with pytest.raises(TimingError):
            StageDelay(delay=1.0, output_slope=-1.0, lower=0.0, upper=1.0,
                       model="x")
        with pytest.raises(TimingError):
            StageDelay(delay=1.0, output_slope=1.0, lower=2.0, upper=1.0,
                       model="x")

    def test_step_slope_factor_value(self):
        assert default_step_slope_factor() == pytest.approx(
            math.log(9.0) / 0.8)


class TestLumpedRC:
    def test_single_node_rc_product(self):
        result = LumpedRCModel().evaluate(single_node_request(2e3, 3e-12))
        assert result.delay == pytest.approx(6e-9)

    def test_ladder_uses_total_r_times_total_c(self):
        result = LumpedRCModel().evaluate(ladder_request(4, 1e3, 1e-12))
        assert result.delay == pytest.approx(4e3 * 4e-12)

    def test_ignores_input_slope(self):
        fast = LumpedRCModel().evaluate(single_node_request(slope=0.0))
        slow = LumpedRCModel().evaluate(single_node_request(slope=1e-6))
        assert fast.delay == slow.delay

    def test_bounds_collapse_to_estimate(self):
        result = LumpedRCModel().evaluate(single_node_request())
        assert result.lower == result.upper == result.delay

    def test_details_present(self):
        result = LumpedRCModel().evaluate(single_node_request())
        keys = dict(result.details)
        assert "path_resistance" in keys and "total_capacitance" in keys


class TestRCTreeModel:
    def test_single_node_equals_lumped(self):
        request = single_node_request(1e3, 1e-12)
        lumped = LumpedRCModel().evaluate(request).delay
        tree = RCTreeModel().evaluate(request).delay
        assert tree == pytest.approx(lumped)

    def test_ladder_less_than_lumped(self):
        request = ladder_request(6)
        lumped = LumpedRCModel().evaluate(request).delay
        tree = RCTreeModel().evaluate(request).delay
        assert tree < 0.75 * lumped

    def test_bounds_bracket_estimate_on_distributed(self):
        result = RCTreeModel().evaluate(ladder_request(6))
        assert result.lower < result.upper

    def test_midpoint_variant(self):
        request = ladder_request(4)
        elmore = RCTreeModel(point_estimate="elmore").evaluate(request)
        midpoint = RCTreeModel(point_estimate="midpoint").evaluate(request)
        assert midpoint.delay == pytest.approx(
            0.5 * (midpoint.lower + midpoint.upper))
        assert elmore.delay == pytest.approx(dict(elmore.details)["elmore"])

    def test_bad_point_estimate(self):
        with pytest.raises(ValueError):
            RCTreeModel(point_estimate="median")

    def test_ignores_input_slope(self):
        fast = RCTreeModel().evaluate(ladder_request(slope=0.0))
        slow = RCTreeModel().evaluate(ladder_request(slope=1e-6))
        assert fast.delay == slow.delay


def flat_tables(delay0=1.0, gain=0.5, slope0=3.0):
    """Synthetic slope tables with a known, simple shape."""
    table = SlopeTable.from_samples(
        [(r, delay0 + gain * r, slope0 + r) for r in (0.01, 0.1, 1, 10, 100)])
    tables = SlopeTableSet(source="synthetic")
    for kind in (DeviceKind.NMOS_ENH, DeviceKind.PMOS):
        for transition in Transition:
            tables.add(kind, transition, table)
    return tables


class TestSlopeModel:
    def test_step_input_uses_table_floor(self):
        model = SlopeModel(tables=flat_tables())
        result = model.evaluate(single_node_request(1e3, 1e-12, slope=0.0))
        # ratio clamps to the lowest sample: delay0 + gain*0.01.
        assert result.delay == pytest.approx((1.0 + 0.5 * 0.01) * 1e-9,
                                             rel=1e-6)

    def test_delay_scales_with_ratio(self):
        model = SlopeModel(tables=flat_tables())
        tau = 1e-9
        result = model.evaluate(single_node_request(1e3, 1e-12,
                                                    slope=10 * tau))
        assert result.delay == pytest.approx((1.0 + 5.0) * tau, rel=1e-6)

    def test_output_slope_reported(self):
        model = SlopeModel(tables=flat_tables())
        result = model.evaluate(single_node_request(1e3, 1e-12, slope=1e-9))
        assert result.output_slope == pytest.approx((3.0 + 1.0) * 1e-9,
                                                    rel=1e-6)

    def test_ablation_switch_freezes_ratio(self):
        model = SlopeModel(tables=flat_tables(), propagate_slopes=False)
        slow = model.evaluate(single_node_request(slope=1e-3))
        fast = model.evaluate(single_node_request(slope=0.0))
        assert slow.delay == fast.delay

    def test_uses_elmore_tau_on_ladders(self):
        model = SlopeModel(tables=flat_tables(gain=0.0))
        request = ladder_request(5)
        elmore = RCTreeModel().evaluate(request).delay
        assert model.evaluate(request).delay == pytest.approx(elmore)

    def test_falls_back_to_technology_tables(self):
        result = SlopeModel().evaluate(single_node_request())
        assert result.delay > 0

    def test_missing_tables_raises(self):
        import dataclasses
        bare = dataclasses.replace(CMOS3, slope_tables=None)
        with pytest.raises(TechnologyError):
            SlopeModel().evaluate(single_node_request(tech=bare))

    def test_details_expose_ratio(self):
        model = SlopeModel(tables=flat_tables())
        result = model.evaluate(single_node_request(1e3, 1e-12, slope=2e-9))
        details = dict(result.details)
        assert details["slope_ratio"] == pytest.approx(2.0)
        assert details["tau"] == pytest.approx(1e-9)


class TestStandardModels:
    def test_three_fresh_instances(self):
        models = standard_models()
        assert [m.name for m in models] == ["lumped-rc", "rc-tree", "slope"]

    @settings(max_examples=30, deadline=None)
    @given(r=st.floats(min_value=100, max_value=1e5),
           c=st.floats(min_value=1e-14, max_value=1e-11),
           slope=st.floats(min_value=0.0, max_value=1e-7))
    def test_all_models_positive_and_consistent(self, r, c, slope):
        request = single_node_request(r, c, slope)
        for model in standard_models():
            result = model.evaluate(request)
            assert result.delay > 0
            assert result.output_slope > 0
            assert result.lower <= result.upper
