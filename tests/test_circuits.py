"""Tests for gate primitives and circuit generators: structure plus
switch-level functional verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Gates,
    adder_assignments,
    adder_input_names,
    adder_result,
    bootstrap_driver,
    decoder,
    decoder_output_names,
    full_adder,
    inverter_chain,
    mux_tree,
    nand_gate,
    nor_gate,
    pass_chain,
    precharged_bus,
    ripple_carry_adder,
    shift_register,
    xor_gate,
)
from repro.errors import NetlistError
from repro.netlist import Network, decompose_stages, validate_network
from repro.switchlevel import Logic, SwitchSimulator, exhaustive_truth_table
from repro.tech import CMOS3, NMOS4, DeviceKind

BOTH = pytest.mark.parametrize("tech", [CMOS3, NMOS4], ids=["cmos", "nmos"])


class TestGatesStructure:
    def test_cmos_inverter_two_devices(self):
        net = Network(CMOS3)
        Gates(net).inverter("a", "y")
        kinds = sorted(t.kind.value for t in net.transistors)
        assert kinds == ["e", "p"]

    def test_nmos_inverter_uses_depletion_load(self):
        net = Network(NMOS4)
        Gates(net).inverter("a", "y")
        kinds = sorted(t.kind.value for t in net.transistors)
        assert kinds == ["d", "e"]
        load = next(t for t in net.transistors
                    if t.kind is DeviceKind.NMOS_DEP)
        assert load.is_load

    def test_nand_series_stack_widened(self):
        net = Network(CMOS3)
        Gates(net).nand(["a", "b", "c"], "y")
        nmos = [t for t in net.transistors
                if t.kind is DeviceKind.NMOS_ENH]
        inv = Network(CMOS3)
        Gates(inv).inverter("a", "y")
        inv_nmos = next(t for t in inv.transistors
                        if t.kind is DeviceKind.NMOS_ENH)
        assert all(t.width == pytest.approx(3 * inv_nmos.width)
                   for t in nmos)

    def test_nand_needs_two_inputs(self):
        with pytest.raises(NetlistError):
            Gates(Network(CMOS3)).nand(["a"], "y")

    def test_transmission_gate_cmos_only(self):
        with pytest.raises(NetlistError):
            Gates(Network(NMOS4)).transmission_gate("s", "sn", "a", "b")

    def test_bootstrap_nmos_only(self):
        with pytest.raises(NetlistError):
            Gates(Network(CMOS3)).bootstrap_driver("a", "y")

    def test_depletion_load_nmos_only(self):
        with pytest.raises(NetlistError):
            Gates(Network(CMOS3)).depletion_load("y")

    def test_internal_names_unique(self):
        net = Network(CMOS3)
        gates = Gates(net)
        gates.xor("a", "b", "y")
        gates.xor("a", "b", "z")
        names = [n.name for n in net.nodes]
        assert len(names) == len(set(names))

    def test_fanout_inverters(self):
        net = Network(CMOS3)
        gates = Gates(net)
        gates.inverter("a", "y")
        outs = gates.fanout_inverters("y", 3)
        assert len(outs) == 3
        # Each CMOS fanout inverter hangs two gates on the node.
        assert len(net.transistors_gated_by("y")) == 6

    def test_bootstrap_has_floating_cap(self):
        net = Network(NMOS4)
        Gates(net).bootstrap_driver("a", "y")
        assert len(net.capacitors) == 1


class TestGeneratorsValidate:
    """Every generated circuit passes netlist validation cleanly."""

    @BOTH
    @pytest.mark.parametrize("factory", [
        lambda tech: inverter_chain(tech, 3, fanout=2),
        lambda tech: nand_gate(tech, 3),
        lambda tech: nor_gate(tech, 2),
        lambda tech: pass_chain(tech, 4),
        lambda tech: precharged_bus(tech, 2),
        lambda tech: xor_gate(tech),
        lambda tech: full_adder(tech),
        lambda tech: mux_tree(tech, 2),
        lambda tech: shift_register(tech, 2),
    ])
    def test_no_errors(self, tech, factory):
        net = factory(tech)
        errors = [d for d in validate_network(net)
                  if d.severity.value == "error"]
        assert errors == []

    def test_bootstrap_validates(self):
        errors = [d for d in validate_network(bootstrap_driver(NMOS4))
                  if d.severity.value == "error"]
        assert errors == []


class TestGeneratorParameters:
    def test_inverter_chain_size_validation(self):
        with pytest.raises(NetlistError):
            inverter_chain(CMOS3, 0)

    def test_pass_chain_size_validation(self):
        with pytest.raises(NetlistError):
            pass_chain(CMOS3, 0)

    def test_mux_tree_size_validation(self):
        with pytest.raises(NetlistError):
            mux_tree(CMOS3, 0)

    def test_decoder_limits(self):
        with pytest.raises(NetlistError):
            decoder(CMOS3, 0)
        with pytest.raises(NetlistError):
            decoder(CMOS3, 9)

    def test_adder_operand_range(self):
        with pytest.raises(NetlistError):
            adder_assignments(4, 16, 0)

    def test_adder_input_names(self):
        names = adder_input_names(2)
        assert names == ["cin", "a0", "b0", "a1", "b1"]

    def test_device_counts_scale(self):
        small = len(ripple_carry_adder(CMOS3, 2).transistors)
        large = len(ripple_carry_adder(CMOS3, 8).transistors)
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_load_cap_applied(self):
        net = inverter_chain(CMOS3, 1, load_cap=123e-15)
        assert net.node("out").capacitance >= 123e-15


class TestFunctional:
    @BOTH
    def test_nand_truth_table(self, tech):
        rows = exhaustive_truth_table(nand_gate(tech, 2), ["a0", "a1"],
                                      ["out"])
        for bits, outs in rows:
            expected = Logic.from_bool(not (bits[0] and bits[1]))
            assert outs["out"] is expected

    @BOTH
    def test_nor_truth_table(self, tech):
        rows = exhaustive_truth_table(nor_gate(tech, 2), ["a0", "a1"],
                                      ["out"])
        for bits, outs in rows:
            expected = Logic.from_bool(not (bits[0] or bits[1]))
            assert outs["out"] is expected

    @BOTH
    def test_full_adder_truth_table(self, tech):
        rows = exhaustive_truth_table(full_adder(tech), ["a", "b", "cin"],
                                      ["sum", "cout"])
        for bits, outs in rows:
            total = sum(bits)
            assert outs["sum"] is Logic.from_bool(bool(total & 1))
            assert outs["cout"] is Logic.from_bool(total >= 2)

    def test_decoder_one_hot(self):
        net = decoder(CMOS3, 2)
        sim = SwitchSimulator(net)
        for address in range(4):
            values = sim.run(a0=address & 1, a1=(address >> 1) & 1)
            active = [w for w in range(4)
                      if values[f"y{w}"] is Logic.ONE]
            assert active == [address]

    def test_decoder_output_names(self):
        assert decoder_output_names(2) == ["y0", "y1", "y2", "y3"]

    def test_bootstrap_logic_behaviour(self):
        sim = SwitchSimulator(bootstrap_driver(NMOS4))
        values = sim.run(**{"in": 1})
        assert values["out"] is Logic.ZERO
        values = sim.run(**{"in": 0})
        assert values["out"] is Logic.ONE

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15), cin=st.integers(0, 1))
    def test_four_bit_adder_nmos(self, a, b, cin):
        net = ripple_carry_adder(NMOS4, 4)
        sim = SwitchSimulator(net)
        values = sim.run(**adder_assignments(4, a, b, cin))
        assert adder_result(values, 4) == a + b + cin

    def test_adder_result_rejects_x(self):
        net = ripple_carry_adder(CMOS3, 2)
        sim = SwitchSimulator(net)
        sim.settle()  # no inputs set: everything X
        with pytest.raises(NetlistError):
            adder_result(sim.values(), 2)


class TestStageStructure:
    def test_inverter_chain_one_stage_per_inverter(self):
        net = inverter_chain(CMOS3, 5)
        assert len(decompose_stages(net)) == 5

    def test_full_adder_stage_count_reasonable(self):
        stages = decompose_stages(full_adder(CMOS3))
        # 9 NAND-ish gates: one stage each.
        assert 8 <= len(stages) <= 12
