"""Reproducer round trips (ISSUE 8 S4).

The shrinker's whole value rests on the emitted ``.sim``/``.vec`` pair
being a *faithful* reproduction: parsing it back and re-analyzing must
produce the identical discrepancy, bit for bit.  Generated values live
on integer grids and the dumpers print 12 significant digits, so the
round trip is exact — these tests enforce it end to end.
"""

import pytest

from repro.batch.vectors import dump_vector_file, load_vector_file
from repro.core.models import rc_tree_model
from repro.core.timing import TimingAnalyzer
from repro.netlist import sim_format
from repro.perf import PerfCounters
from repro.tech import CMOS3
from repro.verify import (
    ConformanceConfig,
    ConformanceRunner,
    check_case,
    generate_case,
    load_reproducer,
)


@pytest.fixture
def template_bug():
    rc_tree_model.set_template_delay_scale(1.02)
    yield
    rc_tree_model.set_template_delay_scale(None)


class TestGeneratedCaseRoundTrip:
    def test_sim_vec_round_trip_is_bit_exact(self, tmp_path):
        """Dump any generated case, reload it, analyze both: identical
        arrivals (times AND slopes) on every vector."""
        for index in range(8):
            case = generate_case(CMOS3, seed=11, index=index)
            sim_path = tmp_path / f"{case.name}.sim"
            vec_path = tmp_path / f"{case.name}.vec"
            sim_format.dump(case.network, str(sim_path))
            dump_vector_file(case.vectors, str(vec_path))

            network = sim_format.load(str(sim_path), CMOS3)
            vectors = load_vector_file(str(vec_path))
            assert [v.label for v in vectors] == [v.label
                                                 for v in case.vectors]
            for original, loaded in zip(case.vectors, vectors):
                want = TimingAnalyzer(case.network).analyze(original.inputs)
                got = TimingAnalyzer(network).analyze(loaded.inputs)
                assert set(got.arrivals) == set(want.arrivals), case.name
                for event, arrival in want.arrivals.items():
                    other = got.arrivals[event]
                    assert other.time == arrival.time, (case.name, event)
                    assert other.slope == arrival.slope, (case.name, event)


class TestReproducerRoundTrip:
    def _emit_failure(self, tmp_path):
        config = ConformanceConfig(tech=CMOS3, cases=1, seed=0,
                                   out_dir=str(tmp_path))
        report = ConformanceRunner(config).run()
        assert not report.ok
        failure = report.failures[0]
        assert failure.manifest_path is not None
        return failure

    def test_replay_reproduces_identical_discrepancy(self, tmp_path,
                                                     template_bug):
        """Parse the emitted pair back, re-run the implicated modes, and
        compare against the manifest: same kinds, same mode pairs, same
        labels/events — the identical discrepancy."""
        failure = self._emit_failure(tmp_path)
        case, modes, model_name, manifest = load_reproducer(
            failure.manifest_path, CMOS3)
        assert case.size == failure.shrunk.size
        found = check_case(case, modes, model_name, PerfCounters())
        want = {(d["kind"], d["mode_a"], d["mode_b"], d["label"],
                 d["event"]) for d in manifest["discrepancies"]}
        got = {d.key() for d in found}
        assert got == want

    def test_replay_clean_once_bug_fixed(self, tmp_path, template_bug):
        """After 'fixing the bug', the same reproducer replays clean —
        exactly how a reproducer is used during an actual debug cycle."""
        failure = self._emit_failure(tmp_path)
        rc_tree_model.set_template_delay_scale(None)
        case, modes, model_name, _ = load_reproducer(
            failure.manifest_path, CMOS3)
        assert check_case(case, modes, model_name, PerfCounters()) == []

    def test_replay_cli(self, tmp_path, capsys, template_bug):
        from repro.cli import main

        failure = self._emit_failure(tmp_path)
        capsys.readouterr()
        assert main(["verify", "--replay", failure.manifest_path]) == 1
        out = capsys.readouterr().out
        assert "discrepancy" in out
        rc_tree_model.set_template_delay_scale(None)
        assert main(["verify", "--replay", failure.manifest_path]) == 0

    def test_manifest_is_self_describing(self, tmp_path, template_bug):
        import json

        failure = self._emit_failure(tmp_path)
        manifest = json.load(open(failure.manifest_path))
        for key in ("case", "seed", "family", "tech", "model", "modes",
                    "sim", "vec", "discrepancies", "replay"):
            assert key in manifest, key
        assert manifest["tech"] == "cmos3"
        assert "verify --replay" in manifest["replay"]

    def test_load_reproducer_errors(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="cannot read"):
            load_reproducer(str(tmp_path / "absent.json"), CMOS3)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_reproducer(str(bad), CMOS3)
        incomplete = tmp_path / "incomplete.json"
        incomplete.write_text('{"case": "x"}')
        with pytest.raises(ReproError, match="missing"):
            load_reproducer(str(incomplete), CMOS3)


class TestClockedReproducer:
    def test_clocked_case_round_trips_with_schedule(self, tmp_path,
                                                    template_bug):
        """A clocked failing case keeps its schedule and clock pins
        through the manifest (the ``~`` two-edge vector tokens carry the
        phase timing exactly)."""
        index = None
        for i in range(30):
            if generate_case(CMOS3, seed=0, index=i).family == "clocked":
                index = i
                break
        assert index is not None
        config = ConformanceConfig(tech=CMOS3, cases=index + 1, seed=0,
                                   out_dir=str(tmp_path))
        report = ConformanceRunner(config).run()
        clocked = [f for f in report.failures
                   if f.case.family == "clocked"]
        assert clocked, "clocked case did not fail under the injected bug"
        failure = clocked[0]
        case, modes, model_name, manifest = load_reproducer(
            failure.manifest_path, CMOS3)
        assert manifest["schedule"] is not None
        if case.clocks:  # clocks survive unless shrunk away entirely
            assert case.schedule is not None
            phase = case.schedule.phase(next(iter(case.clocks.values())))
            assert phase.fall > phase.rise
        found = check_case(case, modes, model_name, PerfCounters())
        assert {d.key() for d in found} == {
            (d["kind"], d["mode_a"], d["mode_b"], d["label"], d["event"])
            for d in manifest["discrepancies"]}
