"""Unit tests for :mod:`repro.perf` and the deep-structure code paths
that used to rely on Python recursion (union-find ``find`` and
``StageGraph.has_feedback``)."""

import sys

from repro.circuits import inverter_chain, pass_chain
from repro.core.timing import TimingAnalyzer
from repro.core.timing.stage_graph import StageGraph
from repro.netlist.stages import decompose_stages
from repro.perf import STANDARD_COUNTERS, PerfCounters, merge_all
from repro.tech import CMOS3


class TestPerfCounters:
    def test_incr_and_get(self):
        perf = PerfCounters()
        assert perf.get("stage_visits") == 0
        perf.incr("stage_visits")
        perf.incr("stage_visits", 4)
        assert perf.get("stage_visits") == 5

    def test_timer_accumulates(self):
        perf = PerfCounters()
        with perf.timer("analysis"):
            pass
        with perf.timer("analysis"):
            pass
        assert perf.elapsed("analysis") >= 0.0
        assert perf.elapsed("missing") == 0.0

    def test_snapshot_is_independent(self):
        perf = PerfCounters()
        perf.incr("model_evals", 3)
        snap = perf.snapshot()
        perf.incr("model_evals", 2)
        assert snap.get("model_evals") == 3
        assert perf.get("model_evals") == 5

    def test_merge_and_merge_all(self):
        a = PerfCounters()
        a.incr("model_evals", 2)
        b = PerfCounters()
        b.incr("model_evals", 3)
        b.incr("stage_visits")
        a.merge(b)
        assert a.get("model_evals") == 5
        assert a.get("stage_visits") == 1
        total = merge_all({"first": a, "second": b})
        assert total.get("model_evals") == 8

    def test_reset(self):
        perf = PerfCounters()
        perf.incr("candidates", 7)
        perf.reset()
        assert perf.get("candidates") == 0

    def test_cache_hit_rate(self):
        perf = PerfCounters()
        assert perf.cache_hit_rate is None
        perf.incr("model_cache_hits", 3)
        perf.incr("model_cache_misses", 1)
        assert perf.cache_hit_rate == 0.75

    def test_format_table_mentions_standard_counters(self):
        perf = PerfCounters()
        for name in STANDARD_COUNTERS:
            perf.incr(name)
        table = perf.format_table("title")
        assert "title" in table
        assert "model_evals" in table

    def test_as_dict_round_trip(self):
        perf = PerfCounters()
        perf.incr("worklist_pushes", 9)
        data = perf.as_dict()
        assert data["counters"]["worklist_pushes"] == 9


class TestDeepStructures:
    """Long chains that would overflow the old recursive implementations."""

    def test_union_find_deep_chain(self):
        depth = sys.getrecursionlimit() + 200
        network = pass_chain(CMOS3, depth, driven=False)
        stages = decompose_stages(network)
        # The whole series chain collapses into one channel-connected stage.
        big = max(stages, key=lambda s: len(s.transistors))
        assert len(big.transistors) >= depth

    def test_has_feedback_deep_chain(self):
        depth = sys.getrecursionlimit() + 200
        network = inverter_chain(CMOS3, depth)
        graph = StageGraph.build(network)
        assert graph.has_feedback() is False

    def test_levels_deep_chain(self):
        depth = sys.getrecursionlimit() + 200
        network = inverter_chain(CMOS3, depth)
        analyzer = TimingAnalyzer(network)
        levels = analyzer.graph.levels()
        assert len(levels) == len(analyzer.graph.stages)
        assert max(levels.values()) >= depth - 1


class TestFormatTable:
    """Alignment and zero-row rules of PerfCounters.format_table."""

    def test_wide_values_stay_aligned(self):
        perf = PerfCounters()
        perf.incr("kernel_nodes", 12_345_678_901_234)  # 14 digits
        perf.incr("model_cache_hits", 3)
        perf.incr("model_cache_misses", 1)
        perf.add_time("analyze", 1.5)
        table = perf.format_table("wide")
        rows = [line for line in table.splitlines()[2:]]
        # every value row ends at the same column
        assert len({len(row) for row in rows}) == 1
        assert "12345678901234" in table

    def test_zero_counters_elided_consistently(self):
        perf = PerfCounters()
        perf.incr("stage_visits", 5)
        perf.incr("model_evals", 0)       # explicitly touched, still zero
        perf.incr("candidates", 3)
        perf.incr("candidates", -3)       # decayed back to zero
        table = perf.format_table("t")
        assert "stage_visits" in table
        assert "model_evals" not in table
        assert "candidates" not in table

    def test_hit_rate_label_fits_short_names(self):
        perf = PerfCounters()
        perf.incr("hits", 1)
        perf.incr("model_cache_hits", 1)
        perf.incr("model_cache_misses", 0)
        table = perf.format_table("t")
        rows = table.splitlines()[2:]
        assert len({len(row) for row in rows}) == 1
        assert "model cache hit rate" in table
