"""Cache-invalidation regression tests.

A :class:`TimingAnalyzer` keeps paths, RC trees, trigger indexes, and
memoized stage delays for its lifetime.  These tests mutate the network
in place between ``analyze()`` calls — resize a transistor, add a load
capacitance — and pin down both halves of the contract:

* a *stale-cache* run is detectably wrong (it still answers for the old
  circuit), and
* ``invalidate_caches()`` restores correctness bit-identically to a
  fresh analyzer built on the mutated network.
"""

import pytest

from repro.circuits import adder_input_names, inverter_chain, \
    ripple_carry_adder
from repro.core.timing import TimingAnalyzer
from repro.tech import CMOS3, Transition


def _assert_identical(result, reference):
    assert set(result.arrivals) == set(reference.arrivals)
    for event, arrival in result.arrivals.items():
        expected = reference.arrivals[event]
        assert arrival.time == expected.time, event
        assert arrival.slope == expected.slope, event
        assert arrival.cause == expected.cause, event


class TestResizeTransistor:
    def test_resize_returns_new_geometry(self):
        net = inverter_chain(CMOS3, 2)
        name = net.transistors[0].name
        old = net.transistor(name)
        resized = net.resize_transistor(name, width=old.width * 4)
        assert resized.width == pytest.approx(old.width * 4)
        assert resized.length == old.length
        assert net.transistor(name).width == resized.width
        # terminals and connectivity are untouched
        assert resized.channel == old.channel
        assert name in [t.name for t in net.transistors_gated_by(old.gate)]

    def test_stale_cache_is_wrong_and_invalidate_fixes_it(self):
        net = inverter_chain(CMOS3, 3)
        inputs = {"in": 0.0}
        analyzer = TimingAnalyzer(net)
        before = analyzer.analyze(inputs)

        # Shrink only the first inverter 4x: its resistance quadruples
        # while its load (the unchanged second stage's gates) stays put,
        # so the chain gets measurably slower.  (Shrinking *every* stage
        # would cancel out — R·C scaling invariance.)
        for device in net.transistors_gated_by("in"):
            net.resize_transistor(device.name, width=device.width / 4)

        stale = analyzer.analyze(inputs)
        fresh = TimingAnalyzer(net).analyze(inputs)
        out_stale = stale.arrival("out", Transition.RISE).time
        out_fresh = fresh.arrival("out", Transition.RISE).time
        out_before = before.arrival("out", Transition.RISE).time
        # stale run still answers for the old geometry...
        assert out_stale == pytest.approx(out_before)
        # ...which is detectably wrong for the resized circuit
        assert out_fresh > out_stale * 1.5

        analyzer.invalidate_caches()
        _assert_identical(analyzer.analyze(inputs), fresh)


class TestAddLoadCapacitance:
    def test_added_load_needs_invalidation(self):
        net = ripple_carry_adder(CMOS3, 2)
        inputs = {n: 0.0 for n in adder_input_names(2)}
        analyzer = TimingAnalyzer(net)
        before = analyzer.analyze(inputs)

        # Hang a large wire load on the carry output.
        net.add_capacitor("cout", "gnd", 500e-15)

        stale = analyzer.analyze(inputs)
        fresh = TimingAnalyzer(net).analyze(inputs)
        cout_stale = stale.arrival("cout", Transition.RISE).time
        cout_fresh = fresh.arrival("cout", Transition.RISE).time
        assert cout_stale == pytest.approx(
            before.arrival("cout", Transition.RISE).time)
        assert cout_fresh > cout_stale

        analyzer.invalidate_caches()
        _assert_identical(analyzer.analyze(inputs), fresh)

    def test_batch_sweep_after_invalidation(self):
        """The sweep engine inherits the same contract: mutate, stale
        sweep wrong, invalidate, correct again — without rebuilding the
        analyzer."""
        from repro.batch import RandomVectors, run_sweep

        net = ripple_carry_adder(CMOS3, 2)
        source = list(RandomVectors(input_names=adder_input_names(2),
                                    count=3, seed=3, span=1e-9))
        analyzer = TimingAnalyzer(net)
        run_sweep(net, source, analyzer=analyzer)

        net.add_capacitor("cout", "gnd", 500e-15)
        analyzer.invalidate_caches()
        corrected = run_sweep(net, source, analyzer=analyzer)
        for outcome in corrected.outcomes:
            fresh = TimingAnalyzer(net).analyze(outcome.vector.inputs)
            _assert_identical(outcome.result, fresh)


class TestInvalidationRebuildsStageGraph:
    def test_topology_mutation_is_picked_up(self):
        """invalidate_caches() also rebuilds the stage graph, so even a
        topology-changing mutation (a new inverter stage wired onto the
        output) is analyzed correctly by the same analyzer."""
        net = inverter_chain(CMOS3, 2)
        analyzer = TimingAnalyzer(net)
        analyzer.analyze({"in": 0.0})

        tech = net.tech
        from repro.tech import DeviceKind
        net.add_transistor(DeviceKind.NMOS_ENH, gate="out", source="gnd",
                           drain="out2", width=6e-6,
                           length=tech.default_length)
        net.add_transistor(DeviceKind.PMOS, gate="out", source="vdd",
                           drain="out2", width=12e-6,
                           length=tech.default_length)
        analyzer.invalidate_caches()
        result = analyzer.analyze({"in": 0.0})
        fresh = TimingAnalyzer(net).analyze({"in": 0.0})
        _assert_identical(result, fresh)
        assert result.has_arrival("out2", Transition.RISE)
