"""Tests for the .sim netlist format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.netlist import Network, sim_format
from repro.tech import CMOS3, NMOS4, DeviceKind


class TestParsing:
    def test_enhancement_transistor(self):
        net = sim_format.loads("e a gnd y 2 8\n", NMOS4)
        device = net.transistors[0]
        assert device.kind is DeviceKind.NMOS_ENH
        assert device.gate == "a"
        assert device.length == pytest.approx(2e-6)
        assert device.width == pytest.approx(8e-6)

    def test_depletion_and_pmos_letters(self):
        net = sim_format.loads("d y y vdd 8 2\n", NMOS4)
        assert net.transistors[0].kind is DeviceKind.NMOS_DEP
        net = sim_format.loads("p a vdd y 2 12\n", CMOS3)
        assert net.transistors[0].kind is DeviceKind.PMOS

    def test_n_alias_for_enhancement(self):
        net = sim_format.loads("n a gnd y\n", CMOS3)
        assert net.transistors[0].kind is DeviceKind.NMOS_ENH

    def test_default_geometry(self):
        net = sim_format.loads("e a gnd y\n", NMOS4)
        assert net.transistors[0].width == NMOS4.default_width

    def test_capacitance_in_femtofarads(self):
        net = sim_format.loads("C y gnd 50\n", CMOS3)
        assert net.node("y").capacitance == pytest.approx(50e-15)

    def test_floating_capacitor(self):
        net = sim_format.loads("C a b 10\n", CMOS3)
        assert len(net.capacitors) == 1
        assert net.capacitors[0].capacitance == pytest.approx(10e-15)

    def test_resistor(self):
        net = sim_format.loads("R a b 4.7k\n", CMOS3)
        assert net.resistors[0].resistance == pytest.approx(4700.0)

    def test_input_declaration(self):
        net = sim_format.loads("i a b\ne a gnd y\n", CMOS3)
        assert {n.name for n in net.inputs()} == {"a", "b"}

    def test_comments_and_blanks_skipped(self):
        text = "| a comment\n\n# another\ne a gnd y\n"
        net = sim_format.loads(text, CMOS3)
        assert len(net.transistors) == 1

    def test_supply_aliases_normalized(self):
        net = sim_format.loads("e a VSS y\n", CMOS3)
        assert net.transistors[0].source == "gnd"


class TestParseErrors:
    def test_unknown_record(self):
        with pytest.raises(ParseError) as info:
            sim_format.loads("q a b c\n", CMOS3)
        assert info.value.line == 1

    def test_wrong_field_count(self):
        with pytest.raises(ParseError):
            sim_format.loads("e a gnd\n", CMOS3)

    def test_bad_number(self):
        with pytest.raises(ParseError):
            sim_format.loads("C a gnd xyz\n", CMOS3)

    def test_line_number_in_message(self):
        with pytest.raises(ParseError) as info:
            sim_format.loads("e a gnd y\nbogus line\n", CMOS3)
        assert info.value.line == 2

    def test_wrong_kind_for_tech(self):
        with pytest.raises(ParseError):
            sim_format.loads("p a vdd y\n", NMOS4)


class TestRoundTrip:
    def build_sample(self):
        net = Network(NMOS4, name="sample")
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                           width=8e-6, length=2e-6, name="m1")
        net.add_transistor(DeviceKind.NMOS_DEP, "y", "y", "vdd",
                           width=2e-6, length=8e-6, name="m2")
        net.add_capacitor("y", "gnd", 50e-15)
        net.add_capacitor("y", "boot", 20e-15)
        net.add_resistor("y", "z", 2e3)
        net.mark_input("a")
        return net

    def test_dump_then_load(self):
        original = self.build_sample()
        text = sim_format.dumps(original)
        clone = sim_format.loads(text, NMOS4)
        assert len(clone.transistors) == len(original.transistors)
        assert len(clone.resistors) == len(original.resistors)
        assert len(clone.capacitors) == len(original.capacitors)
        assert {n.name for n in clone.inputs()} == {"a"}
        assert clone.node("y").capacitance == pytest.approx(
            original.node("y").capacitance)
        for mine, theirs in zip(original.transistors, clone.transistors):
            assert mine.kind is theirs.kind
            assert mine.width == pytest.approx(theirs.width)
            assert mine.length == pytest.approx(theirs.length)

    def test_file_round_trip(self, tmp_path):
        original = self.build_sample()
        path = tmp_path / "sample.sim"
        sim_format.dump(original, str(path))
        clone = sim_format.load(str(path), NMOS4)
        assert len(clone.transistors) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["e", "d"]),
                  st.integers(0, 5), st.integers(0, 5)),
        min_size=1, max_size=8))
    def test_random_networks_round_trip(self, recipe):
        net = Network(NMOS4)
        for i, (kind, gate_i, drain_i) in enumerate(recipe):
            gate = f"g{gate_i}"
            drain = f"d{drain_i}"
            if kind == "e":
                net.add_transistor(DeviceKind.NMOS_ENH, gate, "gnd",
                                   f"y{i}_{drain}")
            else:
                net.add_transistor(DeviceKind.NMOS_DEP, f"y{i}_{drain}",
                                   f"y{i}_{drain}", "vdd")
        text = sim_format.dumps(net)
        clone = sim_format.loads(text, NMOS4)
        assert len(clone.transistors) == len(net.transistors)
        # Idempotent after one round trip (ignoring the name header line).
        body = lambda t: t.splitlines()[1:]
        assert body(sim_format.dumps(clone)) == body(text)
