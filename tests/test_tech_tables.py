"""Tests for slope-table containers, interpolation and serialization."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TechnologyError
from repro.tech import (
    DeviceKind,
    SlopeTable,
    SlopeTableSet,
    Transition,
    analytic_default_tables,
    logarithmic_ratio_grid,
)


def simple_table():
    return SlopeTable(
        ratios=(0.1, 1.0, 10.0),
        delay_factors=(1.0, 1.5, 4.0),
        slope_factors=(2.0, 3.0, 10.0),
    )


class TestSlopeTableValidation:
    def test_needs_two_samples(self):
        with pytest.raises(TechnologyError):
            SlopeTable(ratios=(1.0,), delay_factors=(1.0,),
                       slope_factors=(1.0,))

    def test_length_mismatch(self):
        with pytest.raises(TechnologyError):
            SlopeTable(ratios=(0.1, 1.0), delay_factors=(1.0,),
                       slope_factors=(1.0, 2.0))

    def test_ratios_must_increase(self):
        with pytest.raises(TechnologyError):
            SlopeTable(ratios=(1.0, 0.5), delay_factors=(1.0, 2.0),
                       slope_factors=(1.0, 2.0))

    def test_ratios_must_be_positive(self):
        with pytest.raises(TechnologyError):
            SlopeTable(ratios=(0.0, 1.0), delay_factors=(1.0, 2.0),
                       slope_factors=(1.0, 2.0))

    def test_slope_factors_positive(self):
        with pytest.raises(TechnologyError):
            SlopeTable(ratios=(0.1, 1.0), delay_factors=(1.0, 2.0),
                       slope_factors=(0.0, 2.0))

    def test_negative_delay_factors_allowed(self):
        """Skewed thresholds make negative stage delays physical."""
        table = SlopeTable(ratios=(0.1, 1.0), delay_factors=(-0.2, 0.5),
                           slope_factors=(1.0, 2.0))
        assert table.delay_factor(0.1) == pytest.approx(-0.2)


class TestInterpolation:
    def test_exact_sample_points(self):
        table = simple_table()
        assert table.delay_factor(1.0) == pytest.approx(1.5)
        assert table.slope_factor(10.0) == pytest.approx(10.0)

    def test_clamps_below_range(self):
        table = simple_table()
        assert table.delay_factor(0.001) == pytest.approx(1.0)

    def test_zero_ratio_clamps(self):
        assert simple_table().delay_factor(0.0) == pytest.approx(1.0)

    def test_linear_tail_above_range(self):
        table = simple_table()
        # Continue the last segment's slope: (4.0-1.5)/(10-1) per ratio.
        slope = (4.0 - 1.5) / (10.0 - 1.0)
        assert table.delay_factor(20.0) == pytest.approx(4.0 + 10.0 * slope)

    def test_log_interpolation_midpoint(self):
        table = simple_table()
        # Geometric midpoint of 0.1 and 1.0 maps to arithmetic midpoint
        # of the factors under log-linear interpolation.
        mid = math.sqrt(0.1 * 1.0)
        assert table.delay_factor(mid) == pytest.approx(1.25)

    def test_negative_ratio_raises(self):
        with pytest.raises(TechnologyError):
            simple_table().delay_factor(-1.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_interpolation_within_sample_hull(self, ratio):
        table = simple_table()
        value = table.delay_factor(ratio)
        assert min(table.delay_factors) - 1e-9 <= value
        assert value <= max(table.delay_factors) + 1e-9

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.01, max_value=100.0))
    def test_monotone_table_stays_monotone(self, a, b):
        table = simple_table()
        lo, hi = sorted((a, b))
        assert table.delay_factor(lo) <= table.delay_factor(hi) + 1e-9


class TestSerialization:
    def test_round_trip(self):
        table = simple_table()
        clone = SlopeTable.from_dict(table.to_dict())
        assert clone == table

    def test_from_samples_sorts(self):
        table = SlopeTable.from_samples([(1.0, 1.5, 3.0), (0.1, 1.0, 2.0)])
        assert table.ratios == (0.1, 1.0)

    def test_set_round_trip(self):
        table_set = SlopeTableSet(source="test")
        table_set.add(DeviceKind.NMOS_ENH, Transition.FALL, simple_table())
        clone = SlopeTableSet.from_dict(table_set.to_dict())
        assert clone.source == "test"
        assert clone.get(DeviceKind.NMOS_ENH,
                         Transition.FALL) == simple_table()


class TestSlopeTableSet:
    def test_get_exact(self):
        table_set = SlopeTableSet()
        table_set.add(DeviceKind.PMOS, Transition.RISE, simple_table())
        assert table_set.get(DeviceKind.PMOS, Transition.RISE)

    def test_get_falls_back_to_opposite_direction(self):
        table_set = SlopeTableSet()
        table_set.add(DeviceKind.PMOS, Transition.RISE, simple_table())
        assert table_set.get(DeviceKind.PMOS, Transition.FALL)

    def test_get_missing_raises(self):
        with pytest.raises(TechnologyError):
            SlopeTableSet().get(DeviceKind.NMOS_ENH, Transition.FALL)

    def test_has(self):
        table_set = SlopeTableSet()
        table_set.add(DeviceKind.NMOS_ENH, Transition.RISE, simple_table())
        assert table_set.has(DeviceKind.NMOS_ENH, Transition.FALL)
        assert not table_set.has(DeviceKind.PMOS, Transition.RISE)

    def test_keys_sorted(self):
        table_set = SlopeTableSet()
        table_set.add(DeviceKind.PMOS, Transition.RISE, simple_table())
        table_set.add(DeviceKind.NMOS_ENH, Transition.FALL, simple_table())
        keys = table_set.keys()
        assert keys[0][0] is DeviceKind.NMOS_DEP or keys == sorted(
            keys, key=lambda k: (k[0].value, k[1].value))


class TestDefaults:
    def test_grid_is_logarithmic(self):
        grid = logarithmic_ratio_grid(0.01, 100.0, 5)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        for r in ratios:
            assert r == pytest.approx(ratios[0], rel=1e-9)

    def test_grid_validation(self):
        with pytest.raises(TechnologyError):
            logarithmic_ratio_grid(0.0, 1.0, 5)
        with pytest.raises(TechnologyError):
            logarithmic_ratio_grid(1.0, 1.0, 5)
        with pytest.raises(TechnologyError):
            logarithmic_ratio_grid(0.1, 1.0, 1)

    def test_analytic_defaults_cover_kinds(self):
        tables = analytic_default_tables(
            [DeviceKind.NMOS_ENH, DeviceKind.PMOS])
        for kind in (DeviceKind.NMOS_ENH, DeviceKind.PMOS):
            for transition in Transition:
                assert tables.has(kind, transition)

    def test_analytic_defaults_step_limit(self):
        tables = analytic_default_tables([DeviceKind.NMOS_ENH])
        table = tables.get(DeviceKind.NMOS_ENH, Transition.FALL)
        # At step input the delay factor approaches ln 2.
        assert table.delay_factor(0.0) == pytest.approx(math.log(2), rel=0.05)

    def test_analytic_defaults_grow(self):
        tables = analytic_default_tables([DeviceKind.NMOS_ENH])
        table = tables.get(DeviceKind.NMOS_ENH, Transition.FALL)
        assert table.delay_factor(40.0) > 3 * table.delay_factor(0.1)

    def test_depletion_flatter_than_enhancement(self):
        tables = analytic_default_tables(
            [DeviceKind.NMOS_ENH, DeviceKind.NMOS_DEP])
        enh = tables.get(DeviceKind.NMOS_ENH, Transition.FALL)
        dep = tables.get(DeviceKind.NMOS_DEP, Transition.RISE)
        assert dep.delay_factor(40.0) < enh.delay_factor(40.0)
