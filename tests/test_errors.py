"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    ConvergenceError,
    MeasurementError,
    NetlistError,
    ParseError,
    ReproError,
    SimulationError,
    TechnologyError,
    TimingError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        NetlistError, ParseError, ValidationError, TechnologyError,
        AnalysisError, ConvergenceError, SimulationError, TimingError,
        MeasurementError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_parse_is_netlist(self):
        assert issubclass(ParseError, NetlistError)

    def test_validation_is_netlist(self):
        assert issubclass(ValidationError, NetlistError)

    def test_convergence_is_analysis(self):
        assert issubclass(ConvergenceError, AnalysisError)

    def test_timing_is_analysis(self):
        assert issubclass(TimingError, AnalysisError)

    def test_catching_base_catches_everything(self):
        for exc_type in (ParseError, ConvergenceError, TimingError):
            with pytest.raises(ReproError):
                raise exc_type("boom")


class TestMessages:
    def test_parse_error_location(self):
        error = ParseError("bad token", filename="x.sim", line=42)
        assert "x.sim:42" in str(error)
        assert error.line == 42
        assert error.filename == "x.sim"

    def test_parse_error_without_location(self):
        error = ParseError("bad token")
        assert str(error) == "bad token"

    def test_convergence_error_time(self):
        error = ConvergenceError("stuck", time=1.5e-9)
        assert "1.5e-09" in str(error)
        assert error.time == 1.5e-9

    def test_convergence_error_without_time(self):
        error = ConvergenceError("stuck")
        assert str(error) == "stuck"
        assert error.time is None
