"""Failure-path regression tests for the delta-carryover state.

A propagation that raises mid-run must leave the analyzer in a state
where the *next* ``analyze_delta()`` is still bit-identical to a cold
``analyze()`` on a fresh analyzer.  The engine guarantees this by
invalidating ``_carryover`` whenever ``analyze()`` or ``analyze_delta()``
raises (see ``TimingAnalyzer.analyze``): a failed run's carryover
provenance is ambiguous, so the next delta run cold-starts.

These tests inject an exception *mid-propagation* — after some stages
have already been evaluated and committed into the run's arrival dict —
and then diff every arrival of the subsequent delta run against a fresh
analyzer, exactly (``==`` on times and slopes, not approx).
"""

from __future__ import annotations

from unittest import mock

import pytest

from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.timing import TimingAnalyzer
from repro.core.timing.analyzer import InputSpec

BITS = 4


def _vector(late_names, late=0.4e-9, slope=0.2e-9):
    inputs = {}
    for name in adder_input_names(BITS):
        time = late if name in late_names else 0.0
        inputs[name] = InputSpec(arrival_rise=time, arrival_fall=time,
                                 slope=slope)
    return inputs


def _assert_identical(result, reference):
    assert set(result.arrivals) == set(reference.arrivals)
    for event, arrival in result.arrivals.items():
        ref = reference.arrivals[event]
        assert arrival.time == ref.time, event
        assert arrival.slope == ref.slope, event


class _BoomState:
    __slots__ = ("calls", "armed", "healthy")

    def __init__(self, healthy):
        self.calls = 0
        self.armed = False
        self.healthy = healthy


def _mid_propagation_boom(healthy=3):
    """A patchable ``_evaluate_full`` that raises after *healthy* armed
    calls — by then the run has committed arrivals for several stages, so
    the failure happens with genuinely partial run state in flight."""
    real = TimingAnalyzer._evaluate_full
    state = _BoomState(healthy)

    def boom(analyzer, stage, arrivals, ranks):
        if state.armed:
            state.calls += 1
            if state.calls > state.healthy:
                raise RuntimeError("injected mid-propagation failure")
        return real(analyzer, stage, arrivals, ranks)

    return boom, state


@pytest.fixture
def network(cmos):
    return ripple_carry_adder(cmos, BITS)


def test_delta_after_failed_analyze_matches_cold(network):
    analyzer = TimingAnalyzer(network)
    analyzer.analyze(_vector({"a0"}))

    boom, state = _mid_propagation_boom()
    with mock.patch.object(TimingAnalyzer, "_evaluate_full", boom):
        state.armed = True
        with pytest.raises(RuntimeError):
            analyzer.analyze(_vector({"b1", "a2"}))
        state.armed = False

        assert state.calls > 1  # the failure really was mid-propagation

        follow_up = _vector({"a3"})
        result = analyzer.analyze_delta(follow_up)
        reference = TimingAnalyzer(network).analyze(follow_up)
    _assert_identical(result, reference)


def test_delta_after_failed_delta_matches_cold(network):
    analyzer = TimingAnalyzer(network)
    analyzer.analyze(_vector({"a0"}))

    boom, state = _mid_propagation_boom(healthy=1)
    with mock.patch.object(TimingAnalyzer, "_evaluate_full", boom):
        state.armed = True
        with pytest.raises(RuntimeError):
            # Changing cin dirties the whole carry chain, so the delta
            # cone forces enough full evaluations to trip the injection.
            analyzer.analyze_delta(_vector({"cin", "a1"}))
        state.armed = False

        follow_up = _vector({"b2"})
        result = analyzer.analyze_delta(follow_up)
        reference = TimingAnalyzer(network).analyze(follow_up)
    _assert_identical(result, reference)


def test_failed_run_invalidates_carryover(network):
    analyzer = TimingAnalyzer(network)
    analyzer.analyze(_vector({"a0"}))
    assert analyzer._carryover is not None

    boom, state = _mid_propagation_boom()
    with mock.patch.object(TimingAnalyzer, "_evaluate_full", boom):
        state.armed = True
        with pytest.raises(RuntimeError):
            analyzer.analyze(_vector({"b1"}))
    assert analyzer._carryover is None
    # The run-state guard was released by the finally: the analyzer is
    # immediately usable again.
    analyzer.analyze(_vector({"b1"}))
    assert analyzer._carryover is not None


def test_failed_run_keeps_lifetime_caches_warm(network):
    """Invalidation drops only carryover — the path/template/memo caches
    are input-independent and must survive a failed run."""
    analyzer = TimingAnalyzer(network)
    analyzer.analyze(_vector({"a0"}))
    cached_paths = len(analyzer._paths)
    cached_delays = len(analyzer._delay_cache)
    assert cached_paths and cached_delays

    boom, state = _mid_propagation_boom()
    with mock.patch.object(TimingAnalyzer, "_evaluate_full", boom):
        state.armed = True
        with pytest.raises(RuntimeError):
            analyzer.analyze(_vector({"b1", "a2"}))
    assert len(analyzer._paths) >= cached_paths
    assert len(analyzer._delay_cache) >= cached_delays
