"""Scenario-sharded sweeps: determinism, reproducibility, robustness.

The fault-injection tests use the worker module's environment hooks: a
crash file whose atomic removal kills exactly one worker mid-task, and a
hang file that stalls workers past the parent's chunk timeout.  Both
must end in the same answer the serial sweep gives, with the recovery
visible in :class:`~repro.perf.ParallelPerf`.
"""

import os

import pytest

from repro.batch import RandomVectors, format_sweep_summary, run_sweep
from repro.batch.vectors import ExplicitVectors, Vector
from repro.circuits import adder_input_names, ripple_carry_adder
from repro.errors import SweepError
from repro.parallel import (
    CRASH_FILE_ENV,
    HANG_FILE_ENV,
    AnalyzerSpec,
    ParallelConfig,
    run_vectors_sharded,
)
from repro.core.timing import TimingAnalyzer
from repro.tech import CMOS3

BITS = 4
VECTORS = 8
SEED = 11


@pytest.fixture(scope="module")
def net():
    return ripple_carry_adder(CMOS3, BITS)


def source():
    return RandomVectors(input_names=adder_input_names(BITS),
                         count=VECTORS, seed=SEED, span=1e-9, slope=0.2e-9)


@pytest.fixture(scope="module")
def serial_sweep(net):
    return run_sweep(net, source())


class TestDeterminism:
    def test_summary_bytes_identical_across_jobs(self, net, serial_sweep):
        reference = format_sweep_summary(serial_sweep)
        for jobs in (2, 4):
            sweep = run_sweep(net, source(), jobs=jobs)
            assert format_sweep_summary(sweep) == reference
            assert not sweep.parallel.fell_back

    def test_outcome_order_is_vector_order(self, net, serial_sweep):
        sweep = run_sweep(net, source(), jobs=2)
        assert ([o.label for o in sweep.outcomes]
                == [o.label for o in serial_sweep.outcomes])

    def test_arrivals_bit_identical(self, net, serial_sweep):
        sweep = run_sweep(net, source(), jobs=2)
        for ours, ref in zip(sweep.outcomes, serial_sweep.outcomes):
            assert set(ours.result.arrivals) == set(ref.result.arrivals)
            for event, arrival in ref.result.arrivals.items():
                mine = ours.result.arrivals[event]
                assert mine.time == arrival.time
                assert mine.slope == arrival.slope

    def test_seeded_reruns_reproduce(self, net):
        first = format_sweep_summary(run_sweep(net, source(), jobs=2))
        second = format_sweep_summary(run_sweep(net, source(), jobs=2))
        assert first == second

    def test_watch_respected(self, net):
        watch = [f"s{BITS - 1}.s0", "cout"]
        serial = run_sweep(net, source(), watch=["cout"])
        sharded = run_sweep(net, source(), watch=["cout"], jobs=2)
        assert (format_sweep_summary(serial)
                == format_sweep_summary(sharded))


class TestRobustness:
    def test_worker_crash_recovers_with_correct_results(
            self, net, serial_sweep, tmp_path, monkeypatch):
        crash = tmp_path / "crash-now"
        crash.write_text("")
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        sweep = run_sweep(net, source(), jobs=2)
        assert format_sweep_summary(sweep) == format_sweep_summary(
            serial_sweep)
        pp = sweep.parallel
        assert pp.fell_back, "crash left no trace in ParallelPerf"
        assert pp.retries >= 1
        assert any("died" in event for event in pp.fallback_events)
        assert not crash.exists(), "the crashing worker removes the file"

    def test_hang_times_out_into_serial_fallback(
            self, net, serial_sweep, tmp_path, monkeypatch):
        hang = tmp_path / "hang-now"
        hang.write_text("5.0")
        monkeypatch.setenv(HANG_FILE_ENV, str(hang))
        config = ParallelConfig(chunk_timeout=0.25, max_retries=0)
        sweep = run_sweep(net, source(), jobs=2, parallel_config=config)
        monkeypatch.delenv(HANG_FILE_ENV)
        assert format_sweep_summary(sweep) == format_sweep_summary(
            serial_sweep)
        pp = sweep.parallel
        assert pp.fell_back
        assert any("timeout" in event for event in pp.fallback_events)
        assert pp.serial_chunks > 0, "parent fallback not recorded"

    def test_analysis_error_propagates_not_swallowed(self, net):
        # A vector that covers no primary inputs is a genuine analysis
        # error: it must raise, never be 'recovered' into a wrong answer.
        bad = ExplicitVectors([Vector(label="bad", inputs={})])
        with pytest.raises(SweepError):
            run_sweep(net, bad, jobs=2)


class TestDeltaCrashPaths:
    """Crash paths specific to delta + sharded sweeps (ISSUE 8 S3): a
    worker dying mid-chunk loses its in-flight *carryover* state, so the
    retry/fallback path must rebuild from cold — never splice a half-warm
    delta chain into wrong numbers."""

    def test_worker_death_mid_delta_chunk_recovers(
            self, net, tmp_path, monkeypatch):
        serial = run_sweep(net, source(), delta=True, order="greedy")
        crash = tmp_path / "crash-now"
        crash.write_text("")
        monkeypatch.setenv(CRASH_FILE_ENV, str(crash))
        sweep = run_sweep(net, source(), delta=True, order="greedy",
                          jobs=2)
        assert format_sweep_summary(sweep) == format_sweep_summary(serial)
        pp = sweep.parallel
        assert pp.fell_back, "mid-chunk death left no trace"
        assert pp.retries >= 1
        assert any("died" in event for event in pp.fallback_events)
        assert not crash.exists(), "the crashing worker removes the file"

    def test_delta_chunk_hang_falls_back_to_serial(
            self, net, tmp_path, monkeypatch):
        serial = run_sweep(net, source(), delta=True)
        hang = tmp_path / "hang-now"
        hang.write_text("5.0")
        monkeypatch.setenv(HANG_FILE_ENV, str(hang))
        config = ParallelConfig(chunk_timeout=0.25, max_retries=0)
        sweep = run_sweep(net, source(), delta=True, jobs=2,
                          parallel_config=config)
        monkeypatch.delenv(HANG_FILE_ENV)
        assert format_sweep_summary(sweep) == format_sweep_summary(serial)
        assert sweep.parallel.fell_back
        assert sweep.parallel.serial_chunks > 0

    def test_analysis_error_in_delta_sweep_is_clean(self, net):
        # The empty vector is a genuine error; with delta+jobs it must
        # surface as the same SweepError, not a fallback to wrong data.
        good = {n: 0.0 for n in adder_input_names(BITS)}
        bad = ExplicitVectors([Vector(label="ok", inputs=good),
                               Vector(label="empty", inputs={})])
        with pytest.raises(SweepError, match="empty"):
            run_sweep(net, bad, jobs=2, delta=True)


class TestVectorValidation:
    def test_unknown_node_raises_sweep_error(self, net):
        vectors = ExplicitVectors([
            Vector(label="ok",
                   inputs={n: 0.0 for n in adder_input_names(BITS)}),
            Vector(label="typo",
                   inputs={**{n: 0.0 for n in adder_input_names(BITS)},
                           "ghost": 1e-9}),
        ])
        with pytest.raises(SweepError) as excinfo:
            run_sweep(net, vectors)
        message = str(excinfo.value)
        assert "typo" in message and "ghost" in message

    def test_validation_runs_before_any_dispatch(self, net):
        # Same bad source with jobs=2: the error must surface before any
        # worker pool spins up (cheap to verify: it raises identically).
        vectors = ExplicitVectors([
            Vector(label="typo", inputs={"ghost": 0.0})])
        with pytest.raises(SweepError, match="typo"):
            run_sweep(net, vectors, jobs=2)

    def test_missing_primary_input_names_the_vector(self, net):
        vectors = ExplicitVectors([
            Vector(label="partial", inputs={"a0": 0.0})])
        with pytest.raises(SweepError, match="partial"):
            run_sweep(net, vectors)


class TestShardRunner:
    def test_direct_runner_orders_and_reports(self, net):
        analyzer = TimingAnalyzer(net)
        spec = AnalyzerSpec.from_analyzer(analyzer)
        vectors = list(source())
        items = [(i, v.label, v.inputs) for i, v in enumerate(vectors)]
        outcomes, pperf = run_vectors_sharded(
            spec, items, ParallelConfig(jobs=2))
        assert [o[0] for o in outcomes] == list(range(len(items)))
        assert pperf.strategy == "scenario"
        assert pperf.chunk_count == 2
        assert pperf.load_imbalance is not None

    def test_jobs_one_runs_in_parent(self, net):
        spec = AnalyzerSpec.from_analyzer(TimingAnalyzer(net))
        vectors = list(source())[:3]
        items = [(i, v.label, v.inputs) for i, v in enumerate(vectors)]
        outcomes, pperf = run_vectors_sharded(
            spec, items, ParallelConfig(jobs=1))
        assert len(outcomes) == 3
        assert pperf.strategy == "serial"
        assert pperf.serial_chunks == 1
