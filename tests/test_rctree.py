"""Tests for the RC-tree structure, Elmore delay and exact responses."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.rctree import (
    RCTree,
    delay_bounds,
    elmore_delay,
    exact_delay,
    lumped_time_constant,
    step_response,
    time_constants,
)


class TestTreeConstruction:
    def test_chain_builder(self):
        tree = RCTree.chain([1e3, 2e3], [1e-12, 2e-12])
        assert tree.nodes == ["src", "n1", "n2"]
        assert tree.path_resistance("n2") == pytest.approx(3e3)
        assert tree.total_cap() == pytest.approx(3e-12)

    def test_chain_length_mismatch(self):
        with pytest.raises(AnalysisError):
            RCTree.chain([1e3], [1e-12, 2e-12])

    def test_add_edge_requires_parent(self):
        tree = RCTree("root")
        with pytest.raises(AnalysisError):
            tree.add_edge("ghost", "child", 1e3)

    def test_no_duplicate_nodes(self):
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)
        with pytest.raises(AnalysisError):
            tree.add_edge("root", "a", 2e3)

    def test_positive_resistance_required(self):
        tree = RCTree("root")
        with pytest.raises(AnalysisError):
            tree.add_edge("root", "a", 0.0)

    def test_cap_accumulates(self):
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)
        tree.add_cap("a", 1e-12)
        tree.add_cap("a", 2e-12)
        assert tree.cap("a") == pytest.approx(3e-12)

    def test_negative_cap_rejected(self):
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)
        with pytest.raises(AnalysisError):
            tree.add_cap("a", -1e-15)

    def test_unknown_node_rejected(self):
        tree = RCTree("root")
        with pytest.raises(AnalysisError):
            tree.add_cap("ghost", 1e-12)
        with pytest.raises(AnalysisError):
            tree.path_resistance("ghost")

    def test_leaf(self):
        tree = RCTree.chain([1.0, 1.0], [1.0, 1.0])
        assert tree.leaf() == "n2"
        with pytest.raises(AnalysisError):
            RCTree("lonely").leaf()


class TestSharedResistance:
    def test_branched_tree(self):
        #        root -1k- a -2k- b
        #                   \-4k- c
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)
        tree.add_edge("a", "b", 2e3)
        tree.add_edge("a", "c", 4e3)
        assert tree.shared_resistance("b", "c") == pytest.approx(1e3)
        assert tree.shared_resistance("b", "b") == pytest.approx(3e3)
        assert tree.shared_resistance("c", "a") == pytest.approx(1e3)

    def test_symmetry(self):
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)
        tree.add_edge("a", "b", 2e3)
        tree.add_edge("root", "c", 5e3)
        assert tree.shared_resistance("b", "c") == tree.shared_resistance(
            "c", "b") == 0.0


class TestElmore:
    def test_single_pole(self):
        tree = RCTree.chain([1e3], [1e-12])
        assert elmore_delay(tree, "n1") == pytest.approx(1e-9)

    def test_two_stage_hand_computed(self):
        # T_D(n2) = R1*(C1+C2) + R2*C2
        tree = RCTree.chain([1e3, 2e3], [1e-12, 3e-12])
        expected = 1e3 * 4e-12 + 2e3 * 3e-12
        assert elmore_delay(tree, "n2") == pytest.approx(expected)

    def test_elmore_at_intermediate_node(self):
        # T_D(n1) = R1*(C1+C2): downstream cap counts, downstream R not.
        tree = RCTree.chain([1e3, 2e3], [1e-12, 3e-12])
        assert elmore_delay(tree, "n1") == pytest.approx(1e3 * 4e-12)

    def test_constants_ordering(self):
        tree = RCTree.chain([1e3] * 6, [1e-12] * 6)
        tc = time_constants(tree, "n6")
        assert tc.t_r <= tc.t_d <= tc.t_p

    def test_root_constants(self):
        tree = RCTree.chain([1e3], [1e-12])
        tc = time_constants(tree, "src")
        assert tc.t_d == 0.0

    def test_lumped_always_at_least_elmore(self):
        tree = RCTree.chain([1e3] * 5, [1e-12] * 5)
        assert lumped_time_constant(tree, "n5") >= elmore_delay(tree, "n5")

    def test_uniform_ladder_closed_form(self):
        """Uniform N-ladder Elmore: R*C*N*(N+1)/2."""
        n, r, c = 7, 1e3, 1e-12
        tree = RCTree.chain([r] * n, [c] * n)
        assert elmore_delay(tree, f"n{n}") == pytest.approx(
            r * c * n * (n + 1) / 2)


class TestExactResponse:
    def test_single_pole_analytic(self):
        tree = RCTree.chain([1e3], [1e-12])
        response = step_response(tree)
        tau = 1e-9
        for t_mult in (0.5, 1.0, 2.0):
            expected = 1 - math.exp(-t_mult)
            assert response.voltage("n1", t_mult * tau) == pytest.approx(
                expected, rel=1e-9)

    def test_crossing_time_single_pole(self):
        tree = RCTree.chain([1e3], [1e-12])
        assert exact_delay(tree, "n1", 0.5) == pytest.approx(
            math.log(2) * 1e-9, rel=1e-6)

    def test_response_monotone(self):
        tree = RCTree.chain([1e3] * 4, [1e-12] * 4)
        response = step_response(tree)
        previous = -1.0
        for i in range(50):
            v = float(response.voltage("n4", i * 2e-10))
            assert v >= previous - 1e-12
            previous = v

    def test_threshold_validation(self):
        tree = RCTree.chain([1e3], [1e-12])
        with pytest.raises(AnalysisError):
            exact_delay(tree, "n1", 1.5)

    def test_empty_tree_rejected(self):
        with pytest.raises(AnalysisError):
            step_response(RCTree("root"))

    def test_zero_cap_nodes_tolerated(self):
        tree = RCTree("root")
        tree.add_edge("root", "a", 1e3)  # no cap on a
        tree.add_edge("a", "b", 1e3)
        tree.add_cap("b", 1e-12)
        assert exact_delay(tree, "b", 0.5) > 0


def random_tree(draw_edges):
    tree = RCTree("src")
    nodes = ["src"]
    for i, (parent_index, r, c) in enumerate(draw_edges):
        parent = nodes[parent_index % len(nodes)]
        name = f"n{i}"
        tree.add_edge(parent, name, r)
        tree.add_cap(name, c)
        nodes.append(name)
    return tree, nodes[1:]


edge_strategy = st.lists(
    st.tuples(st.integers(0, 100),
              st.floats(min_value=10.0, max_value=1e5),
              st.floats(min_value=1e-15, max_value=1e-11)),
    min_size=1, max_size=10)


class TestBoundsProperties:
    @settings(max_examples=80, deadline=None)
    @given(edges=edge_strategy,
           threshold=st.floats(min_value=0.05, max_value=0.95),
           pick=st.integers(0, 100))
    def test_bounds_bracket_exact(self, edges, threshold, pick):
        """The RPH bounds must bracket the exact eigen-solution response
        for any tree, any node, any threshold."""
        tree, nodes = random_tree(edges)
        node = nodes[pick % len(nodes)]
        bounds = delay_bounds(tree, node, threshold)
        exact = exact_delay(tree, node, threshold)
        slack = 1e-15 + 1e-6 * exact
        assert bounds.lower - slack <= exact <= bounds.upper + slack

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_strategy, pick=st.integers(0, 100))
    def test_bounds_monotone_in_threshold(self, edges, pick):
        tree, nodes = random_tree(edges)
        node = nodes[pick % len(nodes)]
        previous_lower = -1.0
        for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
            bounds = delay_bounds(tree, node, threshold)
            assert bounds.lower >= previous_lower - 1e-18
            previous_lower = bounds.lower

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_strategy, pick=st.integers(0, 100))
    def test_markov_bound_on_exact(self, edges, pick):
        """The Elmore delay is the area of the remaining excursion, so the
        Markov inequality bounds the 50% crossing by 2x the Elmore value
        for any monotone response."""
        tree, nodes = random_tree(edges)
        node = nodes[pick % len(nodes)]
        elmore = elmore_delay(tree, node)
        exact = exact_delay(tree, node, 0.5)
        assert exact <= elmore / (1 - 0.5) + 1e-15

    def test_bounds_validation(self):
        tree = RCTree.chain([1e3], [1e-12])
        with pytest.raises(AnalysisError):
            delay_bounds(tree, "n1", 0.0)
        with pytest.raises(AnalysisError):
            delay_bounds(tree, "n1", 1.0)

    def test_bounds_root_is_zero(self):
        tree = RCTree.chain([1e3], [1e-12])
        bounds = delay_bounds(tree, "src", 0.5)
        assert bounds.lower == bounds.upper == 0.0

    def test_spread_and_midpoint(self):
        tree = RCTree.chain([1e3] * 3, [1e-12] * 3)
        bounds = delay_bounds(tree, "n3", 0.5)
        assert bounds.spread == pytest.approx(bounds.upper - bounds.lower)
        assert bounds.midpoint() == pytest.approx(
            0.5 * (bounds.lower + bounds.upper))
