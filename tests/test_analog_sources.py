"""Tests for drive waveforms."""

import pytest

from repro.analog.sources import (
    DC,
    PWL,
    Pulse,
    Ramp,
    as_drive,
    edge,
    from_spec,
    step_down,
    step_up,
)
from repro.errors import SimulationError
from repro.netlist.spice_format import StimulusSpec


class TestDC:
    def test_constant(self):
        assert DC(3.3).voltage(0.0) == 3.3
        assert DC(3.3).voltage(1e9) == 3.3

    def test_no_breakpoints(self):
        assert DC(1.0).breakpoints() == ()


class TestRamp:
    def test_before_during_after(self):
        r = Ramp(0.0, 5.0, t_start=1.0, duration=2.0)
        assert r.voltage(0.5) == 0.0
        assert r.voltage(2.0) == pytest.approx(2.5)
        assert r.voltage(5.0) == 5.0

    def test_zero_duration_step(self):
        r = Ramp(0.0, 5.0, t_start=1.0, duration=0.0)
        assert r.voltage(0.999) == 0.0
        assert r.voltage(1.001) == 5.0

    def test_breakpoints(self):
        assert Ramp(0, 5, 1.0, 2.0).breakpoints() == (1.0, 3.0)
        assert Ramp(0, 5, 1.0, 0.0).breakpoints() == (1.0,)

    def test_falling(self):
        r = Ramp(5.0, 0.0, t_start=0.0, duration=4.0)
        assert r.voltage(2.0) == pytest.approx(2.5)


class TestPulse:
    @pytest.fixture
    def pulse(self):
        return Pulse(v1=0.0, v2=5.0, delay=1.0, rise=1.0, fall=1.0,
                     width=2.0, period=10.0)

    def test_phases(self, pulse):
        assert pulse.voltage(0.5) == 0.0  # before delay
        assert pulse.voltage(1.5) == pytest.approx(2.5)  # rising
        assert pulse.voltage(3.0) == 5.0  # high
        assert pulse.voltage(4.5) == pytest.approx(2.5)  # falling
        assert pulse.voltage(6.0) == 0.0  # low again

    def test_periodic_repeat(self, pulse):
        assert pulse.voltage(13.0) == pytest.approx(pulse.voltage(3.0))

    def test_single_shot(self):
        p = Pulse(v1=0.0, v2=5.0, delay=1.0, rise=0.0, fall=0.0,
                  width=2.0, period=0.0)
        assert p.voltage(100.0) == 0.0

    def test_zero_rise_is_step(self):
        p = Pulse(v1=0.0, v2=5.0, delay=1.0, width=2.0)
        assert p.voltage(1.0) == 5.0
        assert p.voltage(0.999) == 0.0

    def test_breakpoints_cover_corners(self, pulse):
        points = pulse.breakpoints()
        for expected in (1.0, 2.0, 4.0, 5.0, 11.0):
            assert any(abs(p - expected) < 1e-12 for p in points)


class TestPWL:
    def test_interpolation(self):
        w = PWL(points=((0.0, 0.0), (1.0, 5.0), (3.0, 1.0)))
        assert w.voltage(0.5) == pytest.approx(2.5)
        assert w.voltage(2.0) == pytest.approx(3.0)

    def test_clamping(self):
        w = PWL(points=((1.0, 2.0), (2.0, 4.0)))
        assert w.voltage(0.0) == 2.0
        assert w.voltage(10.0) == 4.0

    def test_times_must_increase(self):
        with pytest.raises(SimulationError):
            PWL(points=((1.0, 0.0), (1.0, 5.0)))

    def test_needs_points(self):
        with pytest.raises(SimulationError):
            PWL(points=())

    def test_breakpoints(self):
        w = PWL(points=((0.0, 0.0), (1.0, 5.0)))
        assert w.breakpoints() == (0.0, 1.0)


class TestCoercion:
    def test_as_drive_passthrough(self):
        d = DC(1.0)
        assert as_drive(d) is d

    def test_as_drive_number(self):
        assert as_drive(2.5).voltage(0) == 2.5
        assert as_drive(3).voltage(0) == 3.0

    def test_as_drive_rejects_junk(self):
        with pytest.raises(SimulationError):
            as_drive("high")


class TestFromSpec:
    def test_dc(self):
        d = from_spec(StimulusSpec(kind="dc", values=(5.0,)))
        assert d.voltage(0) == 5.0

    def test_pulse_with_defaults(self):
        d = from_spec(StimulusSpec(kind="pulse", values=(0.0, 5.0, 1e-9)))
        assert isinstance(d, Pulse)
        assert d.delay == pytest.approx(1e-9)

    def test_pulse_needs_two_values(self):
        with pytest.raises(SimulationError):
            from_spec(StimulusSpec(kind="pulse", values=(1.0,)))

    def test_pwl(self):
        d = from_spec(StimulusSpec(kind="pwl",
                                   values=(0.0, 0.0, 1e-9, 5.0)))
        assert isinstance(d, PWL)

    def test_pwl_odd_values(self):
        with pytest.raises(SimulationError):
            from_spec(StimulusSpec(kind="pwl", values=(0.0, 0.0, 1e-9)))

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            from_spec(StimulusSpec(kind="sin", values=(0.0, 5.0)))


class TestHelpers:
    def test_step_up_down(self):
        assert step_up(5.0, at=1.0).voltage(2.0) == 5.0
        assert step_down(5.0, at=1.0).voltage(2.0) == 0.0

    def test_edge(self):
        e = edge(5.0, rising=True, at=1.0, transition_time=2.0)
        assert e.voltage(2.0) == pytest.approx(2.5)
        e = edge(5.0, rising=False, at=0.0, transition_time=2.0)
        assert e.voltage(1.0) == pytest.approx(2.5)
