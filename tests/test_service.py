"""Tests for the timing service: daemon, pool, protocol, client.

The daemon runs **in-process** on a background-thread event loop (the
``service`` fixture), so these tests exercise the real HTTP path —
sockets, the dispatcher, the executor — without subprocess overhead.
The full out-of-process envelope (SIGTERM drain, --trace file, banner
parsing) is ``python -m repro.service.smoke`` / ``make service-smoke``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from unittest import mock

import pytest

from repro.batch.vectors import Vector
from repro.core.timing import TimingAnalyzer
from repro.core.timing.analyzer import InputSpec
from repro.errors import ServiceError
from repro.netlist import sim_format
from repro.service import (
    AnalyzerPool,
    ServiceClient,
    ServiceConfig,
    TimingService,
    parse_analyze_request,
)
from repro.service.protocol import encode_inputs
from repro.tech import CMOS3, Transition

NAND_SIM = """\
i a b
n a mid y 2 8
n b gnd mid 2 8
p a vdd y 2 8
p b vdd y 2 8
"""

INVERTER_SIM = """\
i in
n in gnd out 2 6
p in vdd out 2 12
C out gnd 50
"""


def _vec(a=0.0, b=0.0, slope=0.2e-9):
    return {"a": InputSpec(a, a, slope), "b": InputSpec(b, b, slope)}


class _ServiceThread:
    """An in-process daemon on its own event loop; context manager."""

    def __init__(self, **config_overrides):
        self.config = ServiceConfig(port=0, quiet=True, **config_overrides)
        self.service = TimingService(self.config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_until_complete(self.service.wait_closed())
        self.loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(15), "service did not start"
        return self

    def __exit__(self, *exc_info):
        if not self._thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=15)
        assert not self._thread.is_alive(), "service did not drain"

    @property
    def client(self) -> ServiceClient:
        host, port = self.service.address
        return ServiceClient(host, port, timeout=30.0)


@pytest.fixture
def service():
    with _ServiceThread() as thread:
        yield thread


class TestProtocol:
    def _payload(self, **overrides):
        payload = {
            "netlist": NAND_SIM,
            "vectors": [{"label": "v0",
                         "inputs": {"a": "0.0", "b": "1e-10"}}],
        }
        payload.update(overrides)
        return payload

    def test_minimal_request_defaults(self):
        request = parse_analyze_request(self._payload())
        assert request.tech == "cmos3"
        assert request.model == "slope"
        assert request.characterize is True
        assert len(request.vectors) == 1
        assert request.vectors[0].inputs["b"].arrival_rise == 1e-10

    def test_two_edge_token_with_slope(self):
        request = parse_analyze_request(self._payload(vectors=[
            {"inputs": {"a": "1e-09~2e-09/5e-10", "b": "-"}}]))
        spec = request.vectors[0].inputs["a"]
        assert spec.arrival_rise == 1e-9
        assert spec.arrival_fall == 2e-9
        assert spec.slope == 5e-10
        static = request.vectors[0].inputs["b"]
        assert static.arrival_rise is None and static.arrival_fall is None

    @pytest.mark.parametrize("mutation, needle", [
        ({"netlist": ""}, "netlist"),
        ({"tech": "gaas"}, "unknown tech"),
        ({"model": "spicy"}, "unknown model"),
        ({"kernel": "fortran"}, "unknown kernel"),
        ({"slope_quantum": -0.1}, "slope_quantum"),
        ({"characterize": "yes"}, "characterize"),
        ({"vectors": []}, "vectors"),
        ({"vectors": [{"inputs": {}}]}, "inputs"),
        ({"vectors": [{"inputs": {"a": "nonsense"}}]}, "inputs['a']"),
        ({"bogus_field": 1}, "unknown request field"),
    ])
    def test_validation_errors(self, mutation, needle):
        with pytest.raises(ServiceError) as info:
            parse_analyze_request(self._payload(**mutation))
        assert needle in str(info.value)

    def test_pool_key_ignores_vectors(self):
        first = parse_analyze_request(self._payload())
        second = parse_analyze_request(self._payload(vectors=[
            {"inputs": {"a": "5e-10", "b": "0.0"}}]))
        assert first.pool_key() == second.pool_key()

    def test_pool_key_tracks_config(self):
        base = parse_analyze_request(self._payload())
        for mutation in ({"model": "rc-tree"}, {"kernel": "python"},
                         {"slope_quantum": 0.05}, {"characterize": False},
                         {"netlist": INVERTER_SIM.replace("in", "a")}):
            other = parse_analyze_request(self._payload(**mutation))
            assert other.pool_key() != base.pool_key(), mutation

    def test_encode_inputs_round_trips_exactly(self):
        inputs = {"a": InputSpec(1.2345678912345e-9, None, 3.3e-10),
                  "b": InputSpec(None, None),
                  "c": InputSpec(0.1e-9, 0.25e-9, 0.0)}
        encoded = encode_inputs(inputs)
        request = parse_analyze_request({
            "netlist": NAND_SIM,
            "vectors": [{"inputs": encoded}]})
        assert request.vectors[0].inputs == inputs


class TestAnalyzerPool:
    def _request(self, netlist=NAND_SIM, **overrides):
        payload = {"netlist": netlist,
                   "vectors": [{"inputs": {"a": "0", "b": "0"}}]}
        payload.update(overrides)
        return parse_analyze_request(payload)

    def test_hit_and_miss_accounting(self):
        pool = AnalyzerPool(capacity=2)
        request = self._request(characterize=False)
        first = pool.get(request)
        second = pool.get(request)
        assert first is second
        assert (pool.hits, pool.misses) == (1, 1)
        assert pool.hit_rate == 0.5

    def test_lru_eviction(self):
        pool = AnalyzerPool(capacity=2)
        nand = self._request(characterize=False)
        inv = self._request(netlist=INVERTER_SIM, characterize=False)
        third = self._request(characterize=False, model="rc-tree")
        a = pool.get(nand)
        pool.get(inv)
        pool.get(nand)       # refresh nand: inv is now LRU
        pool.get(third)      # evicts inv
        assert pool.evictions == 1
        assert pool.peek(inv.pool_key()) is None
        assert pool.peek(nand.pool_key()) is a

    def test_evicted_entry_is_rebuilt(self):
        pool = AnalyzerPool(capacity=1)
        nand = self._request(characterize=False)
        inv = self._request(netlist=INVERTER_SIM, characterize=False)
        first = pool.get(nand)
        pool.get(inv)
        rebuilt = pool.get(nand)
        assert rebuilt is not first
        assert pool.misses == 3

    def test_bad_netlist_does_not_pollute_pool(self):
        pool = AnalyzerPool(capacity=2)
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            pool.get(self._request(netlist="z bogus record\n",
                                   characterize=False))
        assert len(pool) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalyzerPool(capacity=0)


class TestServiceEndToEnd:
    def test_bit_identical_to_fresh_analyzer(self, service):
        vectors = [("v0", _vec(a=0.0, b=1e-10)),
                   ("v1", _vec(a=3e-10, b=0.0)),
                   ("v2", _vec(a=0.0, b=0.0))]
        served = service.client.analyze(NAND_SIM, vectors,
                                        characterize=False)
        network = sim_format.loads(NAND_SIM, CMOS3, name="ref")
        for (label, inputs), analyzed in zip(vectors, served):
            assert analyzed.label == label
            reference = TimingAnalyzer(network).analyze(inputs)
            expected = {}
            for event, arrival in reference.arrivals.items():
                edge = ("rise" if event.transition is Transition.RISE
                        else "fall")
                expected[(event.node, edge)] = (arrival.time, arrival.slope)
            assert analyzed.arrivals == expected  # exact, not approx

    def test_repeat_requests_hit_pool(self, service):
        client = service.client
        client.analyze(NAND_SIM, [("v0", _vec())], characterize=False)
        client.analyze(NAND_SIM, [("v1", _vec(a=2e-10))],
                       characterize=False)
        metrics = client.metrics()
        assert metrics["pool"]["misses"] == 1
        assert metrics["pool"]["hits"] >= 1
        assert metrics["pool"]["size"] == 1

    def test_distinct_netlists_get_distinct_entries(self, service):
        client = service.client
        client.analyze(NAND_SIM, [("v0", _vec())], characterize=False)
        client.analyze(INVERTER_SIM,
                       [("v0", {"in": InputSpec(0.0, 0.0, 0.2e-9)})],
                       characterize=False)
        assert client.metrics()["pool"]["size"] == 2

    def test_metrics_surface_engine_perf(self, service):
        client = service.client
        client.analyze(NAND_SIM, [("v0", _vec())], characterize=False)
        metrics = client.metrics()
        perf = metrics["perf"]["counters"]
        assert perf.get("model_evals", 0) > 0
        assert "service_completed" in metrics["service"]
        assert metrics["service"]["service_vectors"] == 1

    def test_unknown_input_is_a_client_error(self, service):
        with pytest.raises(ServiceError) as info:
            service.client.analyze(
                NAND_SIM, [("v0", {"ghost": InputSpec(0.0, 0.0)})],
                characterize=False)
        assert info.value.status == 400
        assert "ghost" in str(info.value)

    def test_bad_netlist_is_a_client_error(self, service):
        with pytest.raises(ServiceError) as info:
            service.client.analyze("z bogus\n", [("v0", _vec())],
                                   characterize=False)
        assert info.value.status == 400

    def test_bad_request_does_not_fail_coalesced_neighbour(self, service):
        # Prime the pool, then race a good and a bad request; whatever
        # batching happens, the good one must come back complete.
        client = service.client
        client.analyze(NAND_SIM, [("warm", _vec())], characterize=False)
        outcomes = {}

        def good():
            outcomes["good"] = client.analyze(
                NAND_SIM, [("ok", _vec(a=1e-10))], characterize=False)

        def bad():
            try:
                client.analyze(
                    NAND_SIM, [("boom", {"ghost": InputSpec(0.0, 0.0)})],
                    characterize=False)
            except ServiceError as exc:
                outcomes["bad"] = exc

        threads = [threading.Thread(target=good),
                   threading.Thread(target=bad)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert outcomes["good"][0].label == "ok"
        assert outcomes["good"][0].arrivals
        assert outcomes["bad"].status == 400

    def test_healthz_and_unknown_route(self, service):
        client = service.client
        assert client.healthz()["status"] == "ok"
        status, payload = client._request("GET", "/nope")
        assert status == 404
        status, payload = client._request("GET", "/analyze")
        assert status == 405
        status, payload = client._request("POST", "/analyze")
        assert status == 400  # empty body is not JSON? (b"" -> error)

    def test_malformed_json_body_is_400(self, service):
        import http.client as http_client
        host, port = service.service.address
        connection = http_client.HTTPConnection(host, port, timeout=10)
        connection.request("POST", "/analyze", body=b"{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        assert response.status == 400
        connection.close()


class TestBackpressureAndTimeouts:
    def test_queue_full_rejects_429(self):
        # queue_limit=1 and a slow engine: the first request occupies the
        # dispatcher, the second sits in the queue, the third bounces.
        with _ServiceThread(queue_limit=1, timeout=60.0) as thread:
            client = thread.client
            client.analyze(NAND_SIM, [("warm", _vec())],
                           characterize=False)

            real = TimingAnalyzer.analyze_many
            release = threading.Event()

            def slow(self, scenarios, delta=False):
                release.wait(20)
                return real(self, scenarios, delta=delta)

            statuses = {}

            def request(name, wait_seconds):
                c = thread.client
                try:
                    c.analyze(NAND_SIM, [(name, _vec(a=2e-10))],
                              characterize=False)
                    statuses[name] = 200
                except ServiceError as exc:
                    statuses[name] = exc.status

            with mock.patch.object(TimingAnalyzer, "analyze_many", slow):
                first = threading.Thread(target=request, args=("slow", 0))
                first.start()
                time.sleep(0.3)  # let it dequeue and block in the engine
                second = threading.Thread(target=request, args=("queued", 0))
                second.start()
                time.sleep(0.3)  # it must now be sitting in the queue
                request("rejected", 0)
                release.set()
                first.join(30)
                second.join(30)
            assert statuses["rejected"] == 429
            assert statuses["slow"] == 200
            assert statuses["queued"] == 200
            metrics = thread.client.metrics()
            assert metrics["service"]["service_rejected_queue_full"] == 1

    def test_slow_analysis_times_out_504(self):
        with _ServiceThread(timeout=0.3) as thread:
            client = thread.client
            client.analyze(NAND_SIM, [("warm", _vec())],
                           characterize=False)

            real = TimingAnalyzer.analyze_many

            def slow(self, scenarios, delta=False):
                time.sleep(1.2)
                return real(self, scenarios, delta=delta)

            with mock.patch.object(TimingAnalyzer, "analyze_many", slow):
                with pytest.raises(ServiceError) as info:
                    client.analyze(NAND_SIM, [("v0", _vec(a=1e-10))],
                                   characterize=False)
            assert info.value.status == 504
            metrics = thread.client.metrics()
            assert metrics["service"]["service_timeouts"] == 1
            # The abandoned batch still occupies the engine thread; once
            # it finishes, the daemon serves again as if nothing happened.
            time.sleep(1.3)
            served = client.analyze(NAND_SIM, [("after", _vec())],
                                    characterize=False)
            assert served[0].arrivals

    def test_draining_service_rejects_new_work_503(self):
        # Drain while a job is in flight: the drain window stays open
        # long enough to observe the 503, the in-flight job completes,
        # then the server closes by itself.
        thread = _ServiceThread(timeout=60.0)
        with thread:
            client = thread.client
            client.analyze(NAND_SIM, [("warm", _vec())],
                           characterize=False)

            real = TimingAnalyzer.analyze_many
            release = threading.Event()

            def slow(self, scenarios, delta=False):
                release.wait(20)
                return real(self, scenarios, delta=delta)

            in_flight = {}

            def request():
                try:
                    in_flight["result"] = thread.client.analyze(
                        NAND_SIM, [("inflight", _vec(a=1e-10))],
                        characterize=False)
                except ServiceError as exc:
                    in_flight["error"] = exc

            with mock.patch.object(TimingAnalyzer, "analyze_many", slow):
                worker = threading.Thread(target=request)
                worker.start()
                time.sleep(0.3)  # the job is now blocked in the engine
                status, payload = client._request("POST", "/shutdown", {})
                assert status == 200 and payload["status"] == "draining"
                status, payload = client._request("POST", "/analyze", {
                    "netlist": NAND_SIM,
                    "vectors": [{"inputs": {"a": "0", "b": "0"}}]})
                assert status == 503
                assert client._request("GET", "/healthz")[1] == {
                    "status": "draining"}
                release.set()
                worker.join(30)
            # The in-flight job drained to completion, not an error.
            assert "error" not in in_flight
            assert in_flight["result"][0].label == "inflight"
            thread._thread.join(timeout=15)
            assert not thread._thread.is_alive()  # closed by itself


class TestCoalescing:
    def test_concurrent_same_netlist_requests_coalesce(self):
        # Hold the dispatcher hostage with a slow first batch so the next
        # requests pile up in the queue, then verify they ran as one
        # coalesced delta batch and all came back bit-identical.
        with _ServiceThread(queue_limit=32, timeout=60.0) as thread:
            client = thread.client
            client.analyze(NAND_SIM, [("warm", _vec())],
                           characterize=False)

            real = TimingAnalyzer.analyze_many
            release = threading.Event()
            calls = []

            def slow_once(self, scenarios, delta=False):
                scenarios = list(scenarios)
                calls.append(len(scenarios))
                if len(calls) == 1:
                    release.wait(20)
                return real(self, scenarios, delta=delta)

            outcomes = [None] * 4

            def request(index):
                c = thread.client
                outcomes[index] = c.analyze(
                    NAND_SIM, [(f"r{index}", _vec(a=index * 1e-10))],
                    characterize=False)

            with mock.patch.object(TimingAnalyzer, "analyze_many",
                                   slow_once):
                blocker = threading.Thread(target=request, args=(0,))
                blocker.start()
                time.sleep(0.3)
                rest = [threading.Thread(target=request, args=(i,))
                        for i in (1, 2, 3)]
                for t in rest:
                    t.start()
                time.sleep(0.3)
                release.set()
                blocker.join(30)
                for t in rest:
                    t.join(30)

            # Batch sizes: 1 (blocker), then the 3 queued jobs together.
            assert calls[0] == 1
            assert sum(calls[1:]) == 3
            assert max(calls[1:]) > 1  # some coalescing really happened
            metrics = thread.client.metrics()
            assert metrics["service"]["service_coalesced_requests"] >= 1

            network = sim_format.loads(NAND_SIM, CMOS3, name="ref")
            for index, served in enumerate(outcomes):
                reference = TimingAnalyzer(network).analyze(
                    _vec(a=index * 1e-10))
                expected = {}
                for event, arrival in reference.arrivals.items():
                    edge = ("rise"
                            if event.transition is Transition.RISE
                            else "fall")
                    expected[(event.node, edge)] = (arrival.time,
                                                    arrival.slope)
                assert served[0].arrivals == expected


class TestServeCLI:
    def test_serve_flag_validation(self, capsys):
        from repro.cli import main
        for argv in (["serve", "--pool-size", "0"],
                     ["serve", "--queue-limit", "0"],
                     ["serve", "--timeout", "0"]):
            code = main(argv)
            err = capsys.readouterr().err
            assert code == 2
            assert "error:" in err
