"""Tests for the characterization engine (fits against the analog
simulator — the slow part of the suite, kept to a coarse grid)."""

import pytest

from repro.core.models import SlopeModel, characterize_technology
from repro.core.models.characterize import (
    characterize_fixture,
    clear_cache,
    fixtures_for,
    table_summary,
)
from repro.errors import TechnologyError
from repro.tech import CMOS3, NMOS4, DeviceKind, Transition
from tests.conftest import TEST_RATIOS


class TestFixtures:
    def test_cmos_fixture_set(self):
        keys = {(f.kind, f.transition) for f in fixtures_for(CMOS3)}
        assert (DeviceKind.NMOS_ENH, Transition.FALL) in keys
        assert (DeviceKind.PMOS, Transition.RISE) in keys
        assert (DeviceKind.NMOS_ENH, Transition.RISE) in keys
        assert (DeviceKind.PMOS, Transition.FALL) in keys

    def test_nmos_fixture_set(self):
        keys = {(f.kind, f.transition) for f in fixtures_for(NMOS4)}
        assert (DeviceKind.NMOS_ENH, Transition.FALL) in keys
        assert (DeviceKind.NMOS_DEP, Transition.RISE) in keys

    def test_fixture_builds_are_valid(self):
        for tech in (CMOS3, NMOS4):
            for fixture in fixtures_for(tech):
                net, load = fixture.build(tech)
                assert net.has_node("in") and net.has_node("out")
                assert load > 0

    def test_unsupported_technology(self):
        import dataclasses
        from repro.tech.parameters import Technology
        bare = Technology(name="bare", vdd=5.0, devices={
            DeviceKind.NMOS_ENH: CMOS3.params(DeviceKind.NMOS_ENH)})
        with pytest.raises(TechnologyError):
            fixtures_for(bare)


class TestSingleFixture:
    def test_pulldown_characterization(self, cmos_char):
        # Run one fixture directly with a tiny grid to check the record.
        fixture = next(f for f in fixtures_for(CMOS3)
                       if (f.kind, f.transition) == (DeviceKind.NMOS_ENH,
                                                     Transition.FALL))
        result = characterize_fixture(CMOS3, fixture, ratios=[0.1, 1.0, 8.0])
        assert result.static_resistance > 0
        assert result.tau == pytest.approx(
            result.static_resistance * result.total_cap)
        assert len(result.points) == 3
        table = result.table()
        # Step-normalized: delay factor near 1 at the fastest ratio.
        assert table.delay_factors[0] == pytest.approx(1.0, abs=0.15)
        # Slow inputs: bigger delay factor.
        assert table.delay_factors[-1] > 1.5


class TestCharacterizedTechnology:
    def test_tables_cover_fixture_keys(self, cmos_char):
        for fixture in fixtures_for(CMOS3):
            assert cmos_char.slope_tables.has(fixture.kind,
                                              fixture.transition)

    def test_source_tagged(self, cmos_char):
        assert cmos_char.slope_tables.source == "characterized:cmos3"

    def test_static_resistances_updated(self, cmos_char):
        """Fitted values replace the analytic defaults but stay within an
        order of magnitude of them (same physics)."""
        fitted = cmos_char.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                                      6e-6, 2e-6)
        analytic = CMOS3.resistance(DeviceKind.NMOS_ENH, Transition.FALL,
                                    6e-6, 2e-6)
        assert 0.2 < fitted / analytic < 5.0

    def test_original_technology_untouched(self, cmos_char):
        assert CMOS3.slope_tables.source == "analytic-default"

    def test_cache_returns_same_object(self, cmos_char):
        again = characterize_technology(CMOS3, ratios=TEST_RATIOS)
        assert again is cmos_char

    def test_cache_distinguishes_grids(self, cmos_char):
        other = characterize_technology(CMOS3, ratios=[0.1, 1.0])
        assert other is not cmos_char

    def test_nmos_depletion_rise_slope_sensitive(self, nmos_char):
        """The nMOS rising output is release-timed: the node cannot rise
        until the pulldown's slowly falling gate lets go, so the delay
        factor grows strongly with the slope ratio — *more* strongly than
        a driven pulldown's (the pulldown releases only near the end of
        the input ramp)."""
        dep = nmos_char.slope_tables.get(DeviceKind.NMOS_DEP,
                                         Transition.RISE)
        assert dep.delay_factors[0] == pytest.approx(1.0, abs=0.15)
        assert dep.delay_factors[-1] > 3.0 * dep.delay_factors[0]
        for a, b in zip(dep.delay_factors, dep.delay_factors[1:]):
            assert b > a - 0.05

    def test_summary_renders(self, cmos_char):
        text = table_summary(cmos_char)
        assert "characterized:cmos3" in text
        assert "NMOS_ENH" in text

    def test_summary_without_tables(self):
        import dataclasses
        bare = dataclasses.replace(CMOS3, slope_tables=None)
        assert "no slope tables" in table_summary(bare)


class TestSlopeModelAccuracy:
    """The fitted tables must make the slope model accurate on its own
    characterization fixture at an *unseen* slope ratio."""

    def test_interpolated_ratio_accurate(self, cmos_char):
        from repro.analog import delay_between, simulate, sources
        from repro.core.timing import InputSpec, TimingAnalyzer
        from repro.circuits import inverter_chain

        net = inverter_chain(cmos_char, 1, load_cap=100e-15)
        # Pick an input slope between grid points.
        t_in = 1.7e-9
        result = simulate(
            net, {"in": sources.edge(5.0, rising=True, at=3e-9,
                                     transition_time=t_in)},
            t_stop=30e-9, steps=2000)
        reference = delay_between(result.waveform("in"),
                                  result.waveform("out"), 5.0,
                                  Transition.RISE, Transition.FALL)
        analysis = TimingAnalyzer(net, model=SlopeModel()).analyze(
            {"in": InputSpec(arrival_rise=0.0, arrival_fall=None,
                             slope=t_in)})
        estimate = analysis.arrival("out", Transition.FALL).time
        assert estimate == pytest.approx(reference, rel=0.12)
