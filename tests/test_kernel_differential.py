"""Differential tests for the vectorized PRH kernel and tree templates.

The scalar O(N^2) reference (:func:`repro.rctree.time_constants`) is the
ground truth; the vectorized kernel's two backends (level-swept numpy,
O(N) plain Python) must reproduce it to float accuracy on every tree
shape, and the analyzer's ``kernel="numpy"`` path must produce the same
arrivals as ``kernel="python"`` end to end — including when the
structural-sharing layer (:mod:`repro.core.timing.stage_iso`)
instantiates templates for isomorphic stages by name substitution.
"""

import math
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import adder_input_names, ripple_carry_adder
from repro.core.models import characterize_technology
from repro.core.timing import TimingAnalyzer
from repro.errors import AnalysisError
from repro.rctree import RCTree, TimeConstants, TreeTemplate, time_constants
from repro.rctree.kernel import set_forced_backend
from repro.tech import CMOS3

RTOL = 1e-9


@pytest.fixture
def forced_backend():
    """Yield a setter and always restore auto dispatch afterwards."""
    try:
        yield set_forced_backend
    finally:
        set_forced_backend(None)


def assert_constants_close(got: TimeConstants, want: TimeConstants) -> None:
    for name in ("t_p", "t_d", "t_r"):
        a, b = getattr(got, name), getattr(want, name)
        assert math.isclose(a, b, rel_tol=RTOL, abs_tol=1e-30), (
            f"{name}: kernel {a!r} != scalar {b!r}")


def check_tree_both_backends(tree: RCTree, backend_setter) -> None:
    """Template constants == scalar reference, on both kernel backends."""
    for backend in ("python", "numpy"):
        backend_setter(backend)
        template = TreeTemplate.from_rctree(tree)
        for node in tree.nodes:
            assert_constants_close(template.constants_for(node),
                                   time_constants(tree, node))


def random_tree(draw_edges) -> RCTree:
    tree = RCTree("src")
    nodes = ["src"]
    for i, (parent_index, r, c) in enumerate(draw_edges):
        parent = nodes[parent_index % len(nodes)]
        name = f"n{i}"
        tree.add_edge(parent, name, r)
        tree.add_cap(name, c)
        nodes.append(name)
    return tree


edge_strategy = st.lists(
    st.tuples(st.integers(0, 1000),
              st.floats(min_value=10.0, max_value=1e5),
              st.floats(min_value=1e-15, max_value=1e-11)),
    min_size=1, max_size=60)


class TestKernelVsScalar:
    # The fixture only restores auto dispatch on exit; the checker
    # itself sets the backend fresh for every example, so reuse across
    # generated inputs is intended.
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(edges=edge_strategy)
    def test_random_trees(self, forced_backend, edges):
        check_tree_both_backends(random_tree(edges), forced_backend)

    def test_single_node(self, forced_backend):
        tree = RCTree("out")
        tree.add_cap("out", 3e-12)
        for backend in ("python", "numpy"):
            forced_backend(backend)
            template = TreeTemplate.from_rctree(tree)
            k = template.constants_for("out")
            assert k.t_d == 0.0 and k.t_r == 0.0 and k.t_p == 0.0
            assert template.total_cap() == pytest.approx(3e-12)

    def test_deep_chain(self, forced_backend):
        # Deeper than SMALL_TREE_CUTOFF so auto dispatch would go numpy;
        # force both anyway.
        tree = RCTree.chain([1e3] * 96, [1e-13] * 96)
        check_tree_both_backends(tree, forced_backend)

    def test_star(self, forced_backend):
        tree = RCTree("hub")
        for i in range(96):
            tree.add_edge("hub", f"leaf{i}", 500.0 + i)
            tree.add_cap(f"leaf{i}", 1e-13 * (i + 1))
        check_tree_both_backends(tree, forced_backend)

    def test_backends_agree_exactly_shaped(self, forced_backend):
        """Path resistance must match the scalar tree on both backends."""
        tree = random_tree([(0, 100.0, 1e-12), (1, 200.0, 2e-12),
                            (1, 300.0, 1e-12), (0, 400.0, 5e-13)])
        for backend in ("python", "numpy"):
            forced_backend(backend)
            template = TreeTemplate.from_rctree(tree)
            for node in tree.non_root_nodes:
                assert template.path_resistance(node) == pytest.approx(
                    tree.path_resistance(node), rel=RTOL)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_forced_backend("fortran")


class TestTemplatePickling:
    def test_roundtrip_preserves_constants(self):
        tree = RCTree.chain([1e3, 2e3, 3e3], [1e-12, 2e-12, 3e-12])
        template = TreeTemplate.from_rctree(tree)
        want = template.constants_for(tree.leaf())  # populate the memo
        clone = pickle.loads(pickle.dumps(template))
        assert clone.names == template.names
        assert clone.parent == template.parent
        assert_constants_close(clone.constants_for(tree.leaf()), want)

    def test_translated_shares_bitwise_constants(self):
        tree = RCTree.chain([1e3, 2e3], [1e-12, 2e-12])
        template = TreeTemplate.from_rctree(tree)
        twin = TreeTemplate.translated(
            template, {n: n + "_b" for n in template.names}, {})
        assert twin.names == tuple(n + "_b" for n in template.names)
        # Exactly the same constants object: zero recomputation, and the
        # shared values are bit-identical by construction.
        assert twin.constants() is template.constants()
        assert twin.parent is template.parent
        assert twin.r is not template.r  # restamp safety


class TestAnalyzerDifferential:
    @pytest.fixture(scope="class")
    def rca8(self):
        tech = characterize_technology(CMOS3)
        network = ripple_carry_adder(tech, 8)
        inputs = {name: 0.0 for name in adder_input_names(8)}
        return network, inputs

    def test_rca8_numpy_matches_python(self, rca8):
        network, inputs = rca8
        results = {kern: TimingAnalyzer(network, kernel=kern).analyze(inputs)
                   for kern in ("numpy", "python")}
        numpy_arrivals = results["numpy"].arrivals
        python_arrivals = results["python"].arrivals
        assert set(numpy_arrivals) == set(python_arrivals)
        for node, arrival in numpy_arrivals.items():
            reference = python_arrivals[node]
            assert math.isclose(arrival.time, reference.time,
                                rel_tol=RTOL, abs_tol=1e-15), node
            assert math.isclose(arrival.slope, reference.slope,
                                rel_tol=RTOL, abs_tol=1e-15), node

    def test_numpy_path_builds_no_dict_trees(self, rca8):
        network, inputs = rca8
        analyzer = TimingAnalyzer(network, kernel="numpy")
        result = analyzer.analyze(inputs)
        counters = result.perf.counters
        assert counters.get("tree_builds", 0) == 0
        assert counters["tree_template_misses"] > 0
        assert counters["kernel_batches"] > 0
        assert counters["kernel_nodes"] >= counters["kernel_batches"]

    def test_structural_sharing_counts(self, rca8):
        """Isomorphic full-adder stages enumerate/compile once and
        instantiate everywhere else."""
        network, inputs = rca8
        analyzer = TimingAnalyzer(network, kernel="numpy")
        result = analyzer.analyze(inputs)
        counters = result.perf.counters
        assert counters["path_translations"] > counters["path_enumerations"]
        assert counters["tree_template_shared"] > 0
        assert (counters["tree_template_misses"]
                < counters["tree_template_shared"])

    def test_invalidate_caches_drops_templates(self, rca8):
        network, inputs = rca8
        analyzer = TimingAnalyzer(network, kernel="numpy")
        analyzer.analyze(inputs)
        assert analyzer.export_templates()
        analyzer.invalidate_caches()
        assert not analyzer.export_templates()
        # And a re-run after invalidation still agrees with itself.
        again = analyzer.analyze(inputs)
        assert again.arrivals


class TestTimeConstantsSlack:
    def test_accepts_rounding_at_td_scale(self):
        # T_R a hair above T_D (within 1e-9 relative) must not raise:
        # the vectorized kernel's reassociated sums can land there.
        t_d = 1e-6
        TimeConstants(t_p=2e-6, t_d=t_d, t_r=t_d * (1 + 1e-10))

    def test_rejects_genuine_violation(self):
        with pytest.raises(AnalysisError):
            TimeConstants(t_p=1e-6, t_d=1e-6, t_r=2e-6)
