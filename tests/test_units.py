"""Tests for engineering-notation parsing and formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.units import format_value, parse_value


class TestParseValue:
    def test_plain_integer(self):
        assert parse_value("42") == 42.0

    def test_plain_float(self):
        assert parse_value("3.14") == pytest.approx(3.14)

    def test_scientific_notation(self):
        assert parse_value("1e-9") == pytest.approx(1e-9)

    def test_scientific_with_sign(self):
        assert parse_value("2.5e+3") == pytest.approx(2500.0)

    def test_negative_number(self):
        assert parse_value("-4.7") == pytest.approx(-4.7)

    @pytest.mark.parametrize("text,expected", [
        ("1t", 1e12),
        ("1g", 1e9),
        ("2meg", 2e6),
        ("4.7k", 4700.0),
        ("3m", 3e-3),
        ("10u", 10e-6),
        ("100n", 100e-9),
        ("0.05p", 0.05e-12),
        ("2f", 2e-15),
        ("5a", 5e-18),
    ])
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_suffix_case_insensitive(self):
        assert parse_value("4.7K") == pytest.approx(4700.0)
        assert parse_value("2MEG") == pytest.approx(2e6)

    def test_meg_beats_m(self):
        assert parse_value("1meg") == pytest.approx(1e6)
        assert parse_value("1m") == pytest.approx(1e-3)

    def test_mil(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    def test_unit_letters_after_suffix(self):
        assert parse_value("10pF") == pytest.approx(10e-12)
        assert parse_value("4.7kohm") == pytest.approx(4700.0)

    def test_bare_unit_letters(self):
        assert parse_value("5v") == pytest.approx(5.0)

    def test_whitespace_stripped(self):
        assert parse_value("  2.2n ") == pytest.approx(2.2e-9)

    def test_empty_raises(self):
        with pytest.raises(ParseError):
            parse_value("")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_value("abc")

    def test_mixed_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_value("1.2.3k")

    def test_suffix_with_digits_raises(self):
        with pytest.raises(ParseError):
            parse_value("1k2")


class TestFormatValue:
    def test_zero(self):
        assert format_value(0.0, "F") == "0F"

    @pytest.mark.parametrize("value,expected", [
        (2.2e-12, "2.2pF"),
        (4700.0, "4.7kF"),
        (1e6, "1megF"),  # "M" means milli in SPICE, so mega is spelled out
        (3e-9, "3nF"),
        (5.0, "5F"),
    ])
    def test_engineering_prefixes(self, value, expected):
        assert format_value(value, "F") == expected

    def test_negative(self):
        assert format_value(-2.5e-9, "s") == "-2.5ns"

    def test_no_unit(self):
        assert format_value(1500.0) == "1.5k"

    def test_digits_control(self):
        assert format_value(1.23456e-9, "s", digits=2) == "1.2ns"

    def test_sub_atto_falls_back(self):
        text = format_value(1e-21, "s")
        assert "e-" in text


class TestRoundTrip:
    @given(st.floats(min_value=1e-17, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_format_then_parse(self, value):
        text = format_value(value, digits=12)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=-1e9, max_value=-1e-12,
                     allow_nan=False, allow_infinity=False))
    def test_negative_round_trip(self, value):
        text = format_value(value, digits=12)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e15, max_value=1e15))
    def test_parse_repr_of_float(self, value):
        assert parse_value(repr(value)) == pytest.approx(value, abs=1e-300)
