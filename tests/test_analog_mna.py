"""Tests for the nodal-analysis assembly layer (AnalogProblem internals)."""

import numpy as np
import pytest

from repro.analog import AnalogProblem, sources
from repro.errors import SimulationError
from repro.netlist import GND, VDD, Network
from repro.tech import CMOS3, DeviceKind


def divider_network():
    net = Network(CMOS3)
    net.add_resistor("vdd", "mid", 1e3)
    net.add_resistor("mid", "gnd", 1e3)
    return net


class TestIndexing:
    def test_rails_are_driven(self):
        problem = AnalogProblem(divider_network(), {})
        assert problem.index_of(VDD) is None
        assert problem.index_of(GND) is None
        assert problem.index_of("mid") is not None

    def test_driven_inputs_excluded_from_unknowns(self):
        net = divider_network()
        net.add_node("a")
        net.mark_input("a")
        problem = AnalogProblem(net, {"a": 1.0})
        assert problem.index_of("a") is None
        assert "a" not in problem.unknowns

    def test_undriven_input_rejected(self):
        net = divider_network()
        net.add_node("a")
        net.mark_input("a")
        with pytest.raises(SimulationError):
            AnalogProblem(net, {})

    def test_drive_on_rail_rejected(self):
        with pytest.raises(SimulationError):
            AnalogProblem(divider_network(), {"vdd": 5.0})

    def test_voltage_lookup(self):
        net = divider_network()
        problem = AnalogProblem(net, {})
        x = np.array([1.23])
        assert problem.voltage("mid", x, 0.0) == pytest.approx(1.23)
        assert problem.voltage(VDD, x, 0.0) == pytest.approx(5.0)
        assert problem.voltage(GND, x, 0.0) == 0.0


class TestAssembly:
    def test_divider_solution(self):
        problem = AnalogProblem(divider_network(), {})
        x = np.zeros(1)
        matrix, rhs = problem.assemble(x, 0.0, cap_terms=None)
        solution = np.linalg.solve(matrix, rhs)
        assert solution[0] == pytest.approx(2.5, rel=1e-6)

    def test_matrix_symmetric_for_linear_network(self):
        net = Network(CMOS3)
        net.add_resistor("a", "b", 1e3)
        net.add_resistor("b", "c", 2e3)
        net.add_resistor("c", "gnd", 3e3)
        problem = AnalogProblem(net, {})
        matrix, _ = problem.assemble(np.zeros(3), 0.0, cap_terms=None)
        assert np.allclose(matrix, matrix.T)

    def test_gmin_on_diagonal(self):
        net = Network(CMOS3)
        net.add_node("floaty")
        net.add_capacitor("floaty", "gnd", 1e-15)
        problem = AnalogProblem(net, {}, gmin=1e-9)
        matrix, _ = problem.assemble(np.zeros(1), 0.0, cap_terms=None)
        assert matrix[0, 0] == pytest.approx(1e-9)

    def test_cap_terms_length_checked(self):
        net = Network(CMOS3)
        net.add_capacitor("a", "gnd", 1e-15)
        net.add_resistor("a", "gnd", 1e3)
        problem = AnalogProblem(net, {})
        with pytest.raises(SimulationError):
            problem.assemble(np.zeros(1), 0.0, cap_terms=[])

    def test_cap_companion_stamped(self):
        net = Network(CMOS3)
        net.add_resistor("vdd", "a", 1e3)
        net.add_capacitor("a", "gnd", 1e-12)
        problem = AnalogProblem(net, {})
        g_eq, i_eq = 1e-3, 2e-3
        matrix, rhs = problem.assemble(np.zeros(1), 0.0,
                                       cap_terms=[(g_eq, i_eq)])
        # Diagonal: resistor + companion + gmin.
        assert matrix[0, 0] == pytest.approx(1e-3 + g_eq, rel=1e-6)
        # RHS: source term through the resistor + companion current.
        assert rhs[0] == pytest.approx(5.0 * 1e-3 + i_eq, rel=1e-6)


class TestDeviceStamps:
    def test_kcl_balance_at_op(self):
        """At a converged operating point the assembled equations are
        satisfied: G x = b."""
        from repro.analog import solve_dc

        net = Network(CMOS3)
        net.add_transistor(DeviceKind.NMOS_ENH, "a", "gnd", "y",
                           width=6e-6, length=2e-6)
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y",
                           width=12e-6, length=2e-6)
        net.mark_input("a")
        problem = AnalogProblem(net, {"a": 2.4})
        op = solve_dc(problem, t=0.0)
        x = np.array([op[name] for name in problem.unknowns])
        matrix, rhs = problem.assemble(x, 0.0, cap_terms=None)
        residual = matrix @ x - rhs
        assert np.max(np.abs(residual)) < 1e-6

    def test_pmos_bulk_at_vdd(self):
        net = Network(CMOS3)
        net.add_transistor(DeviceKind.PMOS, "a", "vdd", "y")
        net.mark_input("a")
        problem = AnalogProblem(net, {"a": 0.0})
        (device,) = problem._devices
        assert device.bulk == VDD

    def test_breakpoints_collected(self):
        net = divider_network()
        net.add_node("a")
        net.mark_input("a")
        problem = AnalogProblem(net, {
            "a": sources.Ramp(0.0, 5.0, t_start=1e-9, duration=2e-9)})
        points = problem.breakpoints()
        for expected in (1e-9, 3e-9):
            assert any(abs(p - expected) < 1e-15 for p in points)
